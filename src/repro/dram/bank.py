"""Per-bank row-buffer state machine."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class RowBufferState(Enum):
    """Outcome category of a bank access, used for statistics and scheduling."""

    HIT = "hit"
    MISS = "miss"
    CLOSED = "closed"


@dataclass
class Bank:
    """State of a single DRAM bank.

    ``open_row`` is the row currently latched in the row buffer (``None`` when
    the bank is precharged), and ``ready_at_ps`` is the earliest simulated time
    at which the bank can begin serving another access.
    """

    rank: int
    index: int
    open_row: Optional[int] = None
    ready_at_ps: int = 0
    hits: int = 0
    misses: int = 0
    closed_accesses: int = 0

    def classify(self, row: int) -> RowBufferState:
        """Classify an access to ``row`` against the current row-buffer state."""
        if self.open_row is None:
            return RowBufferState.CLOSED
        if self.open_row == row:
            return RowBufferState.HIT
        return RowBufferState.MISS

    def record_access(self, row: int, state: RowBufferState, ready_at_ps: int) -> None:
        """Commit an access: update the open row, readiness and counters."""
        if ready_at_ps < 0:
            raise ValueError("ready_at_ps must be non-negative")
        self.open_row = row
        self.ready_at_ps = ready_at_ps
        if state is RowBufferState.HIT:
            self.hits += 1
        elif state is RowBufferState.MISS:
            self.misses += 1
        else:
            self.closed_accesses += 1

    def precharge(self) -> None:
        """Close the open row (used by refresh-like maintenance and tests)."""
        self.open_row = None

    @property
    def total_accesses(self) -> int:
        return self.hits + self.misses + self.closed_accesses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit the open row (0.0 when idle)."""
        total = self.total_accesses
        return self.hits / total if total else 0.0
