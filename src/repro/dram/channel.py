"""A DRAM channel: banks, ranks, a shared data bus and service-time computation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dram.address import DecodedAddress
from repro.dram.bank import Bank, RowBufferState
from repro.dram.rank import Rank
from repro.dram.timing import DramTimingPs
from repro.sim.config import DramConfig


@dataclass(frozen=True)
class ChannelServiceResult:
    """Outcome of serving one transaction on a channel."""

    data_start_ps: int
    completion_ps: int
    state: RowBufferState


class Channel:
    """One DRAM channel with its own banks and data bus.

    The data bus is the shared bandwidth bottleneck: every transaction
    occupies it for the duration of its burst.  Bank preparation (precharge +
    activation) happens in parallel with other banks' bursts, which is how
    bank-level parallelism shows up in aggregate bandwidth.
    """

    def __init__(self, index: int, config: DramConfig, timing: DramTimingPs) -> None:
        self.index = index
        self.config = config
        self.timing = timing
        self.bus_free_at_ps = 0
        self.banks: Dict[Tuple[int, int], Bank] = {}
        self.ranks: Dict[int, Rank] = {}
        for rank in range(config.ranks_per_channel):
            self.ranks[rank] = Rank(rank)
            for bank in range(config.banks_per_rank):
                self.banks[(rank, bank)] = Bank(rank=rank, index=bank)
        self.bytes_served = 0
        self.busy_time_ps = 0

    def set_timing(self, timing: DramTimingPs) -> None:
        """Switch the channel to a new resolved timing (DVFS)."""
        self.timing = timing

    def is_row_hit(self, decoded: DecodedAddress) -> bool:
        """Would an access to this address hit the currently open row?"""
        bank = self.banks[decoded.bank_key]
        return bank.classify(decoded.row) is RowBufferState.HIT

    def row_buffer_hit_rate(self) -> float:
        """Aggregate row-buffer hit rate over all banks of the channel."""
        hits = sum(bank.hits for bank in self.banks.values())
        total = sum(bank.total_accesses for bank in self.banks.values())
        return hits / total if total else 0.0

    def service(
        self, decoded: DecodedAddress, size_bytes: int, is_write: bool, now_ps: int
    ) -> ChannelServiceResult:
        """Serve one transaction and return its timing.

        The caller (the memory controller) is responsible for only issuing one
        transaction at a time per channel scheduling slot; the channel itself
        enforces bus and bank availability.
        """
        if size_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {size_bytes}")
        data_start_ps, completion_ps, state = self.service_prepared(
            decoded.rank, decoded.bank, decoded.row, size_bytes, is_write, now_ps
        )
        return ChannelServiceResult(
            data_start_ps=data_start_ps, completion_ps=completion_ps, state=state
        )

    def service_prepared(
        self,
        rank_index: int,
        bank_index: int,
        row: int,
        size_bytes: int,
        is_write: bool,
        now_ps: int,
    ) -> Tuple[int, int, RowBufferState]:
        """The service-time computation on pre-decoded coordinates.

        Single source of truth for channel timing: :meth:`service` delegates
        here, and the batched memory controller calls it directly with the
        coordinates it decoded once at enqueue, skipping the per-issue address
        decode and the result-object allocation.  Returns ``(data_start_ps,
        completion_ps, state)``.
        """
        bank = self.banks[(rank_index, bank_index)]
        rank = self.ranks[rank_index]
        timing = self.timing
        state = bank.classify(row)

        bank_available_ps = bank.ready_at_ps
        if bank_available_ps < now_ps:
            bank_available_ps = now_ps
        if state is RowBufferState.HIT:
            data_ready_ps = bank_available_ps + timing.row_hit_ps
        else:
            # A precharge (row miss only) plus an activation is required; the
            # activation must respect the rank's tRRD/tFAW window.
            precharge_ps = timing.t_rp_ps if state is RowBufferState.MISS else 0
            activation_ps = rank.earliest_activation_ps(
                bank_available_ps + precharge_ps, timing
            )
            rank.record_activation(activation_ps)
            data_ready_ps = activation_ps + timing.t_rcd_ps + timing.cl_ps

        burst_ps = timing.burst_ps(size_bytes, self.config.bus_bytes_per_cycle)
        data_start_ps = data_ready_ps
        if data_start_ps < self.bus_free_at_ps:
            data_start_ps = self.bus_free_at_ps
        completion_ps = data_start_ps + burst_ps

        bank_recovery_ps = timing.t_wr_ps if is_write else timing.t_rtp_ps
        bank.record_access(row, state, completion_ps + bank_recovery_ps)
        self.bus_free_at_ps = completion_ps
        self.bytes_served += size_bytes
        self.busy_time_ps += burst_ps
        return data_start_ps, completion_ps, state

    def next_free_ps(self) -> int:
        """Earliest time the data bus becomes available again."""
        return self.bus_free_at_ps
