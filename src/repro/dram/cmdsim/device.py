"""The command-level DRAM device: a drop-in alternative to ``DramDevice``."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import RowBufferState
from repro.dram.cmdsim.channel import CommandChannel
from repro.dram.cmdsim.commands import CommandType
from repro.dram.cmdsim.refresh import RefreshParams
from repro.dram.device import ServiceResult
from repro.dram.timing import DramTimingPs
from repro.sim.config import DramConfig


class CommandLevelDram:
    """A multi-channel LPDDR4 device simulated at command granularity.

    Interface-compatible with :class:`~repro.dram.device.DramDevice`: the
    memory controller, the power model and the experiment runner work with
    either backend unchanged.
    """

    def __init__(
        self,
        config: DramConfig,
        sim_scale: float = 1.0,
        refresh: Optional[RefreshParams] = None,
        keep_command_log: bool = False,
    ) -> None:
        if not 0 < sim_scale <= 1.0:
            raise ValueError("sim_scale must be in (0, 1]")
        self.config = config
        self.sim_scale = sim_scale
        self.mapper = AddressMapper(config)
        self.timing = DramTimingPs.from_config(config.timing, config.io_freq_mhz)
        self.refresh_params = refresh or RefreshParams()
        self.channels: List[CommandChannel] = [
            CommandChannel(
                index,
                self._scaled_config(),
                self.timing,
                refresh=self.refresh_params,
                keep_command_log=keep_command_log,
            )
            for index in range(config.channels)
        ]
        self.total_bytes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_closed = 0

    def _scaled_config(self) -> DramConfig:
        """Bus-width scaling, identical in meaning to the transaction-level model."""
        if self.sim_scale == 1.0:
            return self.config
        scaled_bus = max(1, int(round(self.config.bus_bytes_per_cycle * self.sim_scale)))
        return replace(self.config, bus_bytes_per_cycle=scaled_bus)

    # ------------------------------------------------------------------ #
    # DramDevice-compatible interface
    # ------------------------------------------------------------------ #
    def set_frequency(self, io_freq_mhz: float) -> None:
        """Re-clock the device (DVFS), keeping bank state intact."""
        if io_freq_mhz <= 0:
            raise ValueError("DRAM frequency must be positive")
        self.config = self.config.with_frequency(io_freq_mhz)
        self.timing = DramTimingPs.from_config(self.config.timing, io_freq_mhz)
        for channel in self.channels:
            channel.set_timing(self.timing)

    def decode(self, address: int) -> DecodedAddress:
        return self.mapper.decode(address)

    def is_row_hit(self, address: int) -> bool:
        decoded = self.mapper.decode(address)
        return self.channels[decoded.channel].is_row_hit(decoded)

    def channel_of(self, address: int) -> int:
        return self.mapper.decode(address).channel

    def next_free_ps(self, channel: int) -> int:
        return self.channels[channel].next_free_ps()

    def service(
        self, address: int, size_bytes: int, is_write: bool, now_ps: int
    ) -> ServiceResult:
        """Serve one transaction through the command-level channel."""
        decoded = self.mapper.decode(address)
        channel = self.channels[decoded.channel]
        result = channel.service(decoded, size_bytes, is_write, now_ps)
        self.total_bytes += size_bytes
        if is_write:
            self.write_bytes += size_bytes
        else:
            self.read_bytes += size_bytes
        if result.state is RowBufferState.HIT:
            self.row_hits += 1
        elif result.state is RowBufferState.MISS:
            self.row_misses += 1
        else:
            self.row_closed += 1
        return ServiceResult(
            data_start_ps=result.data_start_ps,
            completion_ps=result.completion_ps,
            row_hit=result.state is RowBufferState.HIT,
            channel=decoded.channel,
        )

    @property
    def total_accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_closed

    @property
    def row_hit_rate(self) -> float:
        total = self.total_accesses
        return self.row_hits / total if total else 0.0

    def average_bandwidth_bytes_per_s(self, elapsed_ps: int) -> float:
        if elapsed_ps <= 0:
            raise ValueError("elapsed_ps must be positive")
        return self.total_bytes / (elapsed_ps / 1e12)

    def peak_bandwidth_bytes_per_s(self) -> float:
        return self.config.peak_bandwidth_bytes_per_s() * self.sim_scale

    # ------------------------------------------------------------------ #
    # Command-level statistics
    # ------------------------------------------------------------------ #
    def command_counts(self) -> Dict[CommandType, int]:
        """Total commands issued, aggregated over all channels."""
        totals: Dict[CommandType, int] = {kind: 0 for kind in CommandType}
        for channel in self.channels:
            for kind, count in channel.command_counts.items():
                totals[kind] += count
        return totals

    def refreshes_issued(self) -> int:
        return sum(channel.refresh.refreshes_issued for channel in self.channels)
