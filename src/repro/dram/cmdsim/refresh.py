"""Periodic refresh scheduling for the command-level DRAM model.

LPDDR4 devices must refresh every row within the retention window; the
controller issues an all-bank REFRESH roughly every tREFI, and the rank is
unavailable for tRFC while it runs.  The transaction-level backend ignores
refresh (its effect on a 33 ms window is a small constant overhead); the
command-level backend models it so latency-sensitive cores occasionally see
the extra tail latency a refresh adds, as they do on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.clock import NS


@dataclass(frozen=True)
class RefreshParams:
    """All-bank refresh cadence and duration."""

    t_refi_ns: float = 3904.0
    t_rfc_ns: float = 180.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.t_refi_ns <= 0:
            raise ValueError("t_refi_ns must be positive")
        if self.t_rfc_ns <= 0:
            raise ValueError("t_rfc_ns must be positive")
        if self.t_rfc_ns >= self.t_refi_ns:
            raise ValueError("t_rfc_ns must be shorter than t_refi_ns")

    @property
    def t_refi_ps(self) -> int:
        return round(self.t_refi_ns * NS)

    @property
    def t_rfc_ps(self) -> int:
        return round(self.t_rfc_ns * NS)


class RefreshScheduler:
    """Tracks when each rank owes its next all-bank refresh."""

    def __init__(self, ranks: int, params: RefreshParams | None = None) -> None:
        if ranks <= 0:
            raise ValueError("ranks must be positive")
        self.params = params or RefreshParams()
        self._next_due_ps: Dict[int, int] = {
            rank: self.params.t_refi_ps for rank in range(ranks)
        }
        self.refreshes_issued = 0

    def due(self, rank: int, now_ps: int) -> bool:
        """Whether the rank owes a refresh at or before ``now_ps``."""
        if not self.params.enabled:
            return False
        return now_ps >= self._next_due_ps[rank]

    def next_due_ps(self, rank: int) -> int:
        return self._next_due_ps[rank]

    def perform(self, rank: int, start_ps: int) -> int:
        """Record an all-bank refresh starting at ``start_ps``; returns its end.

        Back-to-back catch-up refreshes are collapsed: the next due time moves
        forward by at least one full tREFI from the refresh that just ran, as
        controllers postpone rather than accumulate unbounded refresh debt.
        """
        end_ps = start_ps + self.params.t_rfc_ps
        self._next_due_ps[rank] = max(
            self._next_due_ps[rank] + self.params.t_refi_ps,
            start_ps + self.params.t_refi_ps,
        )
        self.refreshes_issued += 1
        return end_ps
