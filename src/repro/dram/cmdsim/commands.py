"""DRAM command types and the command record used by the command-level model."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CommandType(Enum):
    """The LPDDR4 command classes the command-level model issues."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"


@dataclass(frozen=True)
class Command:
    """One issued DRAM command.

    ``issue_ps`` is the time the command hits the command bus; ``row`` is only
    meaningful for activations and ``data_start_ps``/``data_end_ps`` only for
    column commands (reads and writes).
    """

    kind: CommandType
    channel: int
    rank: int
    bank: int
    issue_ps: int
    row: int = -1
    data_start_ps: int = -1
    data_end_ps: int = -1

    def __post_init__(self) -> None:
        if self.issue_ps < 0:
            raise ValueError("issue_ps must be non-negative")
        if self.channel < 0 or self.rank < 0 or self.bank < 0:
            raise ValueError("channel, rank and bank must be non-negative")

    @property
    def is_column(self) -> bool:
        """Whether this command transfers data on the bus."""
        return self.kind in (CommandType.READ, CommandType.WRITE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"ch{self.channel}/r{self.rank}/b{self.bank}"
        if self.kind is CommandType.ACTIVATE:
            return f"Command({self.kind.value} {where} row={self.row} @{self.issue_ps})"
        return f"Command({self.kind.value} {where} @{self.issue_ps})"
