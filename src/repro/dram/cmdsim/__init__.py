"""Command-level DRAM model (DRAMSim2-style backend).

The paper drives its evaluation with DRAMSim2, a cycle-accurate command-level
simulator.  The default backend of this reproduction
(:class:`repro.dram.device.DramDevice`) is transaction-level: it folds the
ACT/PRE/RD/WR command sequence of each transaction into a single service-time
computation.  This subpackage provides the command-level alternative: every
transaction is expanded into explicit DRAM commands whose issue times are
checked against the LPDDR4 timing constraints (tRP, tRCD, CL, tRTP, tWR,
tWTR, tRRD, tFAW), and periodic refresh (tREFI/tRFC) steals time exactly as
it does on real devices.

:class:`CommandLevelDram` is interface-compatible with
:class:`~repro.dram.device.DramDevice`, so the memory controller and the
system builder can swap backends with the ``dram_model`` argument.  The
cross-check benchmark verifies that both backends agree on bandwidth ordering
and row-hit behaviour.
"""

from repro.dram.cmdsim.commands import Command, CommandType
from repro.dram.cmdsim.bank_fsm import BankFsm, TimingViolation
from repro.dram.cmdsim.refresh import RefreshParams, RefreshScheduler
from repro.dram.cmdsim.channel import CommandChannel
from repro.dram.cmdsim.device import CommandLevelDram

__all__ = [
    "BankFsm",
    "Command",
    "CommandChannel",
    "CommandLevelDram",
    "CommandType",
    "RefreshParams",
    "RefreshScheduler",
    "TimingViolation",
]
