"""A command-level DRAM channel.

Where the transaction-level :class:`~repro.dram.channel.Channel` computes a
single service time per transaction, this channel expands each transaction
into its DRAM command sequence (optional PRECHARGE, optional ACTIVATE, then
READ or WRITE) and places every command at its earliest legal issue time with
respect to the per-bank FSM, the rank's tRRD/tFAW activation window, the
write-to-read turnaround (tWTR) and the shared data bus.  Periodic all-bank
refresh is injected per rank.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dram.address import DecodedAddress
from repro.dram.bank import RowBufferState
from repro.dram.channel import ChannelServiceResult
from repro.dram.cmdsim.bank_fsm import BankFsm
from repro.dram.cmdsim.commands import Command, CommandType
from repro.dram.cmdsim.refresh import RefreshParams, RefreshScheduler
from repro.dram.rank import Rank
from repro.dram.timing import DramTimingPs
from repro.sim.config import DramConfig


class CommandChannel:
    """One DRAM channel scheduled at command granularity."""

    def __init__(
        self,
        index: int,
        config: DramConfig,
        timing: DramTimingPs,
        refresh: Optional[RefreshParams] = None,
        keep_command_log: bool = False,
    ) -> None:
        self.index = index
        self.config = config
        self.timing = timing
        self.keep_command_log = keep_command_log
        self.bus_free_at_ps = 0
        self.last_write_data_end_ps = 0
        self.banks: Dict[Tuple[int, int], BankFsm] = {}
        self.ranks: Dict[int, Rank] = {}
        for rank in range(config.ranks_per_channel):
            self.ranks[rank] = Rank(rank)
            for bank in range(config.banks_per_rank):
                self.banks[(rank, bank)] = BankFsm(rank=rank, index=bank)
        self.refresh = RefreshScheduler(config.ranks_per_channel, refresh)
        self.command_counts: Dict[CommandType, int] = {kind: 0 for kind in CommandType}
        self.command_log: List[Command] = []
        self.bytes_served = 0
        self.busy_time_ps = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def set_timing(self, timing: DramTimingPs) -> None:
        """Switch the channel to a new resolved timing (DVFS)."""
        self.timing = timing

    def is_row_hit(self, decoded: DecodedAddress) -> bool:
        return self.banks[decoded.bank_key].classify(decoded.row) is RowBufferState.HIT

    def row_buffer_hit_rate(self) -> float:
        hits = sum(fsm.bank.hits for fsm in self.banks.values())
        total = sum(fsm.bank.total_accesses for fsm in self.banks.values())
        return hits / total if total else 0.0

    def _record(self, command: Command) -> None:
        self.command_counts[command.kind] += 1
        if self.keep_command_log:
            self.command_log.append(command)

    def _maybe_refresh(self, rank_index: int, now_ps: int) -> int:
        """Run an all-bank refresh if one is due; returns the blocking end time."""
        if not self.refresh.due(rank_index, now_ps):
            return now_ps
        rank_banks = [
            fsm for (rank, _bank), fsm in self.banks.items() if rank == rank_index
        ]
        # Every bank must be precharge-able before the refresh may start.
        start_ps = now_ps
        for fsm in rank_banks:
            start_ps = max(start_ps, fsm.earliest_precharge_ps(now_ps))
        end_ps = self.refresh.perform(rank_index, start_ps)
        for fsm in rank_banks:
            fsm.force_precharge_for_refresh(end_ps)
        self._record(
            Command(
                kind=CommandType.REFRESH,
                channel=self.index,
                rank=rank_index,
                bank=0,
                issue_ps=start_ps,
            )
        )
        return end_ps

    # ------------------------------------------------------------------ #
    # Transaction service
    # ------------------------------------------------------------------ #
    def service(
        self, decoded: DecodedAddress, size_bytes: int, is_write: bool, now_ps: int
    ) -> ChannelServiceResult:
        """Expand one transaction into commands and return its data timing."""
        if size_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {size_bytes}")
        fsm = self.banks[decoded.bank_key]
        rank = self.ranks[decoded.rank]
        earliest_ps = self._maybe_refresh(decoded.rank, now_ps)
        state = fsm.classify(decoded.row)

        if state is RowBufferState.MISS:
            pre_at = fsm.earliest_precharge_ps(earliest_ps)
            fsm.apply_precharge(pre_at, self.timing)
            self._record(
                Command(
                    kind=CommandType.PRECHARGE,
                    channel=self.index,
                    rank=decoded.rank,
                    bank=decoded.bank,
                    issue_ps=pre_at,
                )
            )
            earliest_ps = pre_at

        if state is not RowBufferState.HIT:
            act_at = rank.earliest_activation_ps(
                fsm.earliest_activate_ps(earliest_ps), self.timing
            )
            fsm.apply_activate(decoded.row, act_at, self.timing)
            rank.record_activation(act_at)
            self._record(
                Command(
                    kind=CommandType.ACTIVATE,
                    channel=self.index,
                    rank=decoded.rank,
                    bank=decoded.bank,
                    issue_ps=act_at,
                    row=decoded.row,
                )
            )
            earliest_ps = act_at

        column_at = fsm.earliest_column_ps(earliest_ps)
        if not is_write:
            # Write-to-read turnaround on the shared bus/rank.
            column_at = max(column_at, self.last_write_data_end_ps + self.timing.t_wtr_ps)

        burst_ps = self.timing.burst_ps(size_bytes, self.config.bus_bytes_per_cycle)
        data_ready_ps = column_at + self.timing.cl_ps
        data_start_ps = max(data_ready_ps, self.bus_free_at_ps)
        completion_ps = data_start_ps + burst_ps

        if is_write:
            fsm.apply_write(column_at, completion_ps, self.timing)
            self.last_write_data_end_ps = completion_ps
            kind = CommandType.WRITE
        else:
            fsm.apply_read(column_at, self.timing)
            kind = CommandType.READ
        self._record(
            Command(
                kind=kind,
                channel=self.index,
                rank=decoded.rank,
                bank=decoded.bank,
                issue_ps=column_at,
                row=decoded.row,
                data_start_ps=data_start_ps,
                data_end_ps=completion_ps,
            )
        )

        fsm.record_statistics(decoded.row, state, completion_ps)
        self.bus_free_at_ps = completion_ps
        self.bytes_served += size_bytes
        self.busy_time_ps += burst_ps
        return ChannelServiceResult(
            data_start_ps=data_start_ps, completion_ps=completion_ps, state=state
        )

    def next_free_ps(self) -> int:
        """Earliest time the data bus becomes available again."""
        return self.bus_free_at_ps
