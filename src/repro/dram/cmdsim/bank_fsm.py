"""Per-bank finite-state machine with LPDDR4 timing legality checks.

The FSM wraps the row-buffer :class:`~repro.dram.bank.Bank` (which keeps the
open row and the hit/miss statistics) and adds the three timing anchors a
command scheduler has to respect per bank:

* ``act_ready_ps`` — earliest legal row activation (set by the precharge
  that closed the bank, plus tRP);
* ``rw_ready_ps`` — earliest legal column command (set by the activation,
  plus tRCD);
* ``pre_ready_ps`` — earliest legal precharge (set by reads via tRTP and by
  writes via write recovery tWR after the data burst).

All methods either *query* the earliest legal time for a command or *apply*
a command at a given time; applying a command earlier than its legal time
raises :class:`TimingViolation`, which is how the property-based tests verify
the scheduler never produces an illegal command stream.
"""

from __future__ import annotations

from repro.dram.bank import Bank, RowBufferState
from repro.dram.timing import DramTimingPs


class TimingViolation(ValueError):
    """A DRAM command was applied before its earliest legal issue time."""


class BankFsm:
    """Timing-checked state machine of a single DRAM bank."""

    def __init__(self, rank: int, index: int) -> None:
        self.bank = Bank(rank=rank, index=index)
        self.act_ready_ps = 0
        self.rw_ready_ps = 0
        self.pre_ready_ps = 0

    # ------------------------------------------------------------------ #
    # State queries
    # ------------------------------------------------------------------ #
    @property
    def open_row(self) -> int | None:
        return self.bank.open_row

    @property
    def is_open(self) -> bool:
        return self.bank.open_row is not None

    def classify(self, row: int) -> RowBufferState:
        return self.bank.classify(row)

    def earliest_activate_ps(self, now_ps: int) -> int:
        """Earliest legal ACTIVATE (the bank must also be closed by then)."""
        return max(now_ps, self.act_ready_ps)

    def earliest_precharge_ps(self, now_ps: int) -> int:
        return max(now_ps, self.pre_ready_ps)

    def earliest_column_ps(self, now_ps: int) -> int:
        """Earliest legal READ/WRITE column command to the open row."""
        return max(now_ps, self.rw_ready_ps)

    # ------------------------------------------------------------------ #
    # Command application
    # ------------------------------------------------------------------ #
    def apply_precharge(self, at_ps: int, timing: DramTimingPs) -> None:
        """Close the open row at ``at_ps``."""
        if at_ps < self.pre_ready_ps:
            raise TimingViolation(
                f"PRECHARGE at {at_ps} ps violates pre_ready {self.pre_ready_ps} ps"
            )
        self.bank.precharge()
        self.act_ready_ps = max(self.act_ready_ps, at_ps + timing.t_rp_ps)

    def apply_activate(self, row: int, at_ps: int, timing: DramTimingPs) -> None:
        """Open ``row`` at ``at_ps``."""
        if self.is_open:
            raise TimingViolation("ACTIVATE issued while a row is already open")
        if at_ps < self.act_ready_ps:
            raise TimingViolation(
                f"ACTIVATE at {at_ps} ps violates act_ready {self.act_ready_ps} ps"
            )
        if row < 0:
            raise ValueError("row must be non-negative")
        self.bank.open_row = row
        self.rw_ready_ps = max(self.rw_ready_ps, at_ps + timing.t_rcd_ps)

    def apply_read(self, at_ps: int, timing: DramTimingPs) -> None:
        """Issue a READ column command at ``at_ps`` (row must be open)."""
        if not self.is_open:
            raise TimingViolation("READ issued to a closed bank")
        if at_ps < self.rw_ready_ps:
            raise TimingViolation(
                f"READ at {at_ps} ps violates rw_ready {self.rw_ready_ps} ps"
            )
        self.pre_ready_ps = max(self.pre_ready_ps, at_ps + timing.t_rtp_ps)

    def apply_write(self, at_ps: int, data_end_ps: int, timing: DramTimingPs) -> None:
        """Issue a WRITE column command whose data burst ends at ``data_end_ps``."""
        if not self.is_open:
            raise TimingViolation("WRITE issued to a closed bank")
        if at_ps < self.rw_ready_ps:
            raise TimingViolation(
                f"WRITE at {at_ps} ps violates rw_ready {self.rw_ready_ps} ps"
            )
        if data_end_ps < at_ps:
            raise ValueError("data_end_ps cannot precede the column command")
        self.pre_ready_ps = max(self.pre_ready_ps, data_end_ps + timing.t_wr_ps)

    def record_statistics(self, row: int, state: RowBufferState, ready_at_ps: int) -> None:
        """Forward hit/miss accounting to the wrapped row-buffer bank."""
        self.bank.record_access(row, state, ready_at_ps)

    def force_precharge_for_refresh(self, refresh_end_ps: int) -> None:
        """Close the bank and block activations until a refresh completes."""
        self.bank.precharge()
        self.act_ready_ps = max(self.act_ready_ps, refresh_end_ps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BankFsm(r{self.bank.rank}/b{self.bank.index} row={self.bank.open_row} "
            f"act>={self.act_ready_ps} rw>={self.rw_ready_ps} pre>={self.pre_ready_ps})"
        )
