"""Physical-address decomposition into channel / rank / bank / row / column.

The mapping interleaves channels at a fixed block granularity (so that
streaming traffic exploits channel-level parallelism), then places the column
bits lowest within a channel, followed by bank, rank and row bits.  With this
layout a sequential DMA stream fills an entire row in one bank before moving
to the next bank of the same rank, which is the behaviour the row-buffer-hit
optimisation of the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.config import DramConfig


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address resolved to its DRAM coordinates."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> tuple:
        """(rank, bank) pair identifying a bank within its channel."""
        return (self.rank, self.bank)


class AddressMapper:
    """Maps byte addresses onto DRAM coordinates for a given organisation."""

    def __init__(
        self, config: DramConfig, channel_interleave_bytes: Optional[int] = None
    ) -> None:
        if channel_interleave_bytes is None:
            # Interleave at row granularity by default: a sequential stream
            # then keeps several consecutive transactions inside one row (for
            # row-buffer hits) while still spreading across channels.
            channel_interleave_bytes = config.row_size_bytes
        if channel_interleave_bytes <= 0 or (
            channel_interleave_bytes & (channel_interleave_bytes - 1)
        ):
            raise ValueError("channel_interleave_bytes must be a positive power of two")
        if channel_interleave_bytes > config.row_size_bytes:
            raise ValueError(
                "channel interleave granularity cannot exceed the row size"
            )
        self.config = config
        self.channel_interleave_bytes = channel_interleave_bytes
        self._banks_per_channel = config.ranks_per_channel * config.banks_per_rank
        self._rows_per_bank = max(
            1,
            config.capacity_bytes
            // (config.channels * self._banks_per_channel * config.row_size_bytes),
        )

    @property
    def rows_per_bank(self) -> int:
        return self._rows_per_bank

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates.

        Addresses beyond the configured capacity wrap around, which keeps
        synthetic traffic generators simple without affecting contention
        behaviour.
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        address %= self.config.capacity_bytes

        block = address // self.channel_interleave_bytes
        offset = address % self.channel_interleave_bytes
        channel = block % self.config.channels
        channel_local = (block // self.config.channels) * self.channel_interleave_bytes + offset

        column = channel_local % self.config.row_size_bytes
        row_block = channel_local // self.config.row_size_bytes
        bank_index = row_block % self._banks_per_channel
        row = (row_block // self._banks_per_channel) % self._rows_per_bank

        rank = bank_index // self.config.banks_per_rank
        bank = bank_index % self.config.banks_per_rank
        return DecodedAddress(
            channel=channel, rank=rank, bank=bank, row=row, column=column
        )
