"""Per-rank activation-rate limiting (tRRD and tFAW windows)."""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.dram.timing import DramTimingPs


class Rank:
    """Tracks row activations within a rank to enforce tRRD and tFAW.

    LPDDR4 limits how quickly rows may be activated: consecutive activates in
    the same rank must be at least tRRD apart, and any four activates must fit
    in a window no shorter than tFAW.  The memory controller asks the rank for
    the earliest legal activation time before serving a row miss or a closed
    bank.
    """

    FAW_WINDOW = 4

    def __init__(self, index: int) -> None:
        self.index = index
        self._activations: Deque[int] = deque(maxlen=self.FAW_WINDOW)
        self.total_activations = 0

    def earliest_activation_ps(self, now_ps: int, timing: DramTimingPs) -> int:
        """Earliest time at or after ``now_ps`` at which a row may be activated."""
        earliest = now_ps
        if self._activations:
            earliest = max(earliest, self._activations[-1] + timing.t_rrd_ps)
        if len(self._activations) == self.FAW_WINDOW:
            earliest = max(earliest, self._activations[0] + timing.t_faw_ps)
        return earliest

    def record_activation(self, time_ps: int) -> None:
        """Record that a row activation was issued at ``time_ps``."""
        if self._activations and time_ps < self._activations[-1]:
            raise ValueError(
                "activations must be recorded in non-decreasing time order"
            )
        self._activations.append(time_ps)
        self.total_activations += 1
