"""Transaction-level LPDDR4 DRAM model.

The model tracks per-bank row-buffer state, per-rank activation windows
(tRRD/tFAW), and a shared data bus per channel, using the Table-1 timing
parameters of the paper.  It substitutes for the cycle-accurate DRAMSim2
simulator the authors used: service latency per transaction is computed from
the row-hit / row-miss / row-closed case instead of being replayed command by
command, which preserves the bandwidth and latency effects the paper's
experiments measure (row-buffer locality, bank parallelism, finite bus
bandwidth) at a cost proportional to the number of transactions.
"""

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import Bank, RowBufferState
from repro.dram.channel import Channel
from repro.dram.device import DramDevice, ServiceResult
from repro.dram.rank import Rank
from repro.dram.timing import DramTimingPs

__all__ = [
    "AddressMapper",
    "Bank",
    "Channel",
    "DecodedAddress",
    "DramDevice",
    "DramTimingPs",
    "Rank",
    "RowBufferState",
    "ServiceResult",
]
