"""Conversion of the Table-1 DRAM cycle timings into picoseconds.

The memory controller and the DRAM device both work in picoseconds, so the
cycle-denominated LPDDR4 parameters are converted once per (timing, frequency)
pair and cached in a :class:`DramTimingPs` instance.  Rebuilding the instance
at a different frequency is how DVFS sweeps (Fig. 7) are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import Clock
from repro.sim.config import DramTimingConfig


@dataclass(frozen=True)
class DramTimingPs:
    """DRAM timing parameters resolved to picoseconds at a given frequency."""

    freq_mhz: float
    clock_period_ps: int
    cl_ps: int
    t_rcd_ps: int
    t_rp_ps: int
    t_wtr_ps: int
    t_rtp_ps: int
    t_wr_ps: int
    t_rrd_ps: int
    t_faw_ps: int
    row_hit_ps: int
    row_closed_ps: int
    row_miss_ps: int

    @classmethod
    def from_config(cls, timing: DramTimingConfig, freq_mhz: float) -> "DramTimingPs":
        """Resolve cycle-denominated timing at the given I/O frequency."""
        clock = Clock(freq_mhz)
        period = clock.period_ps
        return cls(
            freq_mhz=freq_mhz,
            clock_period_ps=period,
            cl_ps=timing.cl * period,
            t_rcd_ps=timing.t_rcd * period,
            t_rp_ps=timing.t_rp * period,
            t_wtr_ps=timing.t_wtr * period,
            t_rtp_ps=timing.t_rtp * period,
            t_wr_ps=timing.t_wr * period,
            t_rrd_ps=timing.t_rrd * period,
            t_faw_ps=timing.t_faw * period,
            row_hit_ps=timing.row_hit_cycles() * period,
            row_closed_ps=timing.row_closed_cycles() * period,
            row_miss_ps=timing.row_miss_cycles() * period,
        )

    def burst_ps(self, size_bytes: int, bus_bytes_per_cycle: int) -> int:
        """Data-bus occupancy in picoseconds for a transfer of this size."""
        if size_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {size_bytes}")
        if bus_bytes_per_cycle <= 0:
            raise ValueError("bus_bytes_per_cycle must be positive")
        cycles = -(-size_bytes // bus_bytes_per_cycle)  # ceiling division
        return cycles * self.clock_period_ps
