"""The DRAM device: channels, address mapping, bandwidth accounting and DVFS."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import RowBufferState
from repro.dram.channel import Channel
from repro.dram.timing import DramTimingPs
from repro.sim.config import DramConfig


@dataclass(frozen=True)
class ServiceResult:
    """Timing of a serviced transaction as seen by the memory controller."""

    data_start_ps: int
    completion_ps: int
    row_hit: bool
    channel: int


class DramDevice:
    """A multi-channel LPDDR4 device at transaction granularity."""

    def __init__(self, config: DramConfig, sim_scale: float = 1.0) -> None:
        if not 0 < sim_scale <= 1.0:
            raise ValueError("sim_scale must be in (0, 1]")
        self.config = config
        self.sim_scale = sim_scale
        self.mapper = AddressMapper(config)
        self.timing = DramTimingPs.from_config(config.timing, config.io_freq_mhz)
        self.channels: List[Channel] = [
            Channel(index, self._scaled_config(), self.timing)
            for index in range(config.channels)
        ]
        self.total_bytes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_closed = 0

    def _scaled_config(self) -> DramConfig:
        """Config whose bus width is scaled down by ``sim_scale``.

        Scaling the bus (rather than the traffic) keeps a single knob that
        shrinks both sides of the contention equation identically, so
        experiments preserve their qualitative shape while running faster.
        The scale is applied as a wider burst time per byte.
        """
        if self.sim_scale == 1.0:
            return self.config
        scaled_bus = max(1, int(round(self.config.bus_bytes_per_cycle * self.sim_scale)))
        return replace(self.config, bus_bytes_per_cycle=scaled_bus)

    def set_frequency(self, io_freq_mhz: float) -> None:
        """Re-clock the device (DVFS), keeping bank state intact."""
        if io_freq_mhz <= 0:
            raise ValueError("DRAM frequency must be positive")
        self.config = self.config.with_frequency(io_freq_mhz)
        self.timing = DramTimingPs.from_config(self.config.timing, io_freq_mhz)
        for channel in self.channels:
            channel.set_timing(self.timing)

    def decode(self, address: int) -> DecodedAddress:
        return self.mapper.decode(address)

    def is_row_hit(self, address: int) -> bool:
        """Would a transaction to this address hit an open row right now?"""
        decoded = self.mapper.decode(address)
        return self.channels[decoded.channel].is_row_hit(decoded)

    def channel_of(self, address: int) -> int:
        return self.mapper.decode(address).channel

    def next_free_ps(self, channel: int) -> int:
        return self.channels[channel].next_free_ps()

    def service(
        self, address: int, size_bytes: int, is_write: bool, now_ps: int
    ) -> ServiceResult:
        """Serve one transaction and update bandwidth / row-buffer statistics."""
        decoded = self.mapper.decode(address)
        channel = self.channels[decoded.channel]
        result = channel.service(decoded, size_bytes, is_write, now_ps)
        self.total_bytes += size_bytes
        if is_write:
            self.write_bytes += size_bytes
        else:
            self.read_bytes += size_bytes
        if result.state is RowBufferState.HIT:
            self.row_hits += 1
        elif result.state is RowBufferState.MISS:
            self.row_misses += 1
        else:
            self.row_closed += 1
        return ServiceResult(
            data_start_ps=result.data_start_ps,
            completion_ps=result.completion_ps,
            row_hit=result.state is RowBufferState.HIT,
            channel=decoded.channel,
        )

    def service_prepared(
        self,
        channel_index: int,
        rank: int,
        bank: int,
        row: int,
        size_bytes: int,
        is_write: bool,
        now_ps: int,
    ) -> Tuple[int, bool]:
        """Decoded fast path of :meth:`service` for the batched controller.

        The batched memory controller decodes each address once at enqueue and
        keeps the coordinates in its columnar store, so per-issue it can skip
        the mapper and the :class:`ServiceResult` allocation.  Statistics
        update exactly as in :meth:`service`; returns ``(completion_ps,
        row_hit)``.
        """
        _, completion_ps, state = self.channels[channel_index].service_prepared(
            rank, bank, row, size_bytes, is_write, now_ps
        )
        self.total_bytes += size_bytes
        if is_write:
            self.write_bytes += size_bytes
        else:
            self.read_bytes += size_bytes
        if state is RowBufferState.HIT:
            self.row_hits += 1
            return completion_ps, True
        if state is RowBufferState.MISS:
            self.row_misses += 1
        else:
            self.row_closed += 1
        return completion_ps, False

    @property
    def total_accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_closed

    @property
    def row_hit_rate(self) -> float:
        total = self.total_accesses
        return self.row_hits / total if total else 0.0

    def average_bandwidth_bytes_per_s(self, elapsed_ps: int) -> float:
        """Average delivered bandwidth over an elapsed simulated duration."""
        if elapsed_ps <= 0:
            raise ValueError("elapsed_ps must be positive")
        return self.total_bytes / (elapsed_ps / 1e12)

    def peak_bandwidth_bytes_per_s(self) -> float:
        return self.config.peak_bandwidth_bytes_per_s() * self.sim_scale
