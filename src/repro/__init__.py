"""SARA: Self-Aware Resource Allocation for heterogeneous MPSoCs — reproduction.

This package reproduces the DAC 2018 paper by Song, Alavoine and Lin.  The
public API is intentionally small:

* :class:`repro.Scenario` / :func:`repro.get_scenario` — declarative,
  serializable experiment setups: platform + workload + policy + sweep axes
  as plain data, with a bundled catalog and open registries for workloads,
  traffic models, address streams and policies (see docs/scenarios.md).
* :func:`repro.build_system` / :class:`repro.System` — assemble a simulated
  heterogeneous MPSoC (cores, NoC, memory controller, LPDDR4 DRAM) from a
  scenario, under a chosen scheduling policy.
* :func:`repro.run_experiment`, :func:`repro.compare_policies`,
  :func:`repro.frequency_sweep` — the experiment runners behind every table
  and figure of the paper's evaluation.
* :class:`repro.RunSpec`, :func:`repro.run_sweep`,
  :class:`repro.WorkerPool`, :func:`repro.sweep_compare_policies`,
  :func:`repro.sweep_frequencies` — the sweep orchestrator: the same
  experiments fanned out in cost-balanced batches across a persistent warm
  worker pool, with an on-disk result cache and per-phase timing
  (see docs/running_experiments.md).
* :class:`repro.Campaign` / :func:`repro.get_campaign` /
  :class:`repro.CampaignScheduler` — declarative experiment campaigns:
  named sub-grids (``fig5`` … ``fig9``) scheduled through one shared pool
  and reported per figure (see docs/campaigns.md).
* :mod:`repro.core` — the SARA contribution itself: NPI performance meters,
  the NPI-to-priority look-up table and the adaptation framework.

See README.md for a quickstart and EXPERIMENTS.md for the paper-versus-
measured comparison.
"""

from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignScheduler,
    SubGrid,
    available_campaigns,
    campaign_from_file,
    campaign_report_md,
    get_campaign,
)
from repro.core import (
    BandwidthMeter,
    BufferOccupancyMeter,
    FrameProgressMeter,
    LatencyMeter,
    PerformanceMeter,
    PriorityAdapter,
    PriorityLookupTable,
    ProcessingTimeMeter,
    SaraFramework,
)
from repro.sim.config import (
    DramConfig,
    DramTimingConfig,
    MemoryControllerConfig,
    NocConfig,
    SimulationConfig,
)
from repro.runner import (
    ResultCache,
    RunSpec,
    SweepStats,
    WorkerPool,
    run_sweep,
    sweep_compare_policies,
    sweep_frequencies,
    sweep_scenario,
)
from repro.scenario import (
    Scenario,
    ScenarioError,
    available_scenarios,
    critical_cores_for,
    get_scenario,
    load_plugins,
    register_scenario,
    resolve_scenario,
    scenario_config,
    scenario_from_file,
)
from repro.system import (
    ExperimentResult,
    System,
    build_system,
    compare_policies,
    frequency_sweep,
    run_experiment,
    table1_settings,
    table2_core_types,
)
from repro.traffic.camcorder import CamcorderWorkload, DmaSpec, camcorder_workload
from repro.version import __version__

__all__ = [
    "BandwidthMeter",
    "BufferOccupancyMeter",
    "CamcorderWorkload",
    "Campaign",
    "CampaignError",
    "CampaignScheduler",
    "DmaSpec",
    "DramConfig",
    "DramTimingConfig",
    "ExperimentResult",
    "FrameProgressMeter",
    "LatencyMeter",
    "MemoryControllerConfig",
    "NocConfig",
    "PerformanceMeter",
    "PriorityAdapter",
    "PriorityLookupTable",
    "ProcessingTimeMeter",
    "ResultCache",
    "RunSpec",
    "SaraFramework",
    "Scenario",
    "ScenarioError",
    "SimulationConfig",
    "SubGrid",
    "SweepStats",
    "System",
    "WorkerPool",
    "__version__",
    "available_campaigns",
    "available_scenarios",
    "build_system",
    "camcorder_workload",
    "campaign_from_file",
    "campaign_report_md",
    "compare_policies",
    "critical_cores_for",
    "frequency_sweep",
    "get_campaign",
    "get_scenario",
    "load_plugins",
    "register_scenario",
    "resolve_scenario",
    "run_experiment",
    "run_sweep",
    "scenario_config",
    "scenario_from_file",
    "sweep_compare_policies",
    "sweep_frequencies",
    "sweep_scenario",
    "table1_settings",
    "table2_core_types",
]
