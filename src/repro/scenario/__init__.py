"""Declarative scenarios: serializable platform/workload specs and registries.

A :class:`Scenario` bundles everything one experiment needs — platform
(simulation config + interconnect link widths), workload (resolved by name
through :data:`WORKLOADS`), default policy, critical cores and sweep axes —
as plain, versioned, JSON/TOML-serializable data.  The bundled catalog
(``repro scenarios list``) carries the paper's two camcorder cases plus new
workload families; :func:`register_scenario` and the plugin hook
(:func:`load_plugins`, ``--plugin-module``) extend every registry at runtime,
including inside spawn sweep workers.
"""

from repro.scenario.builders import CONSTANT_RATE_PREFETCH
from repro.scenario.catalog import (
    BUILTIN_SCENARIO_DIR,
    available_scenarios,
    builtin_scenario_paths,
    critical_cores_for,
    describe_scenario,
    get_scenario,
    is_path_ref,
    register_scenario,
    scenario_config,
    unregister_scenario,
)
from repro.scenario.errors import RegistryError, ScenarioError
from repro.scenario.plugins import load_plugins
from repro.scenario.registry import ADDRESS_STREAMS, TRAFFIC_MODELS, WORKLOADS, Registry
from repro.scenario.spec import (
    DEFAULT_AXIS_SET,
    SCENARIO_SCHEMA_VERSION,
    PlatformSpec,
    Scenario,
    WorkloadSpec,
    expand_axis_points,
    resolve_scenario,
    scenario_from_file,
    settings_label,
)
from repro.scenario.workloads import (
    build_workload,
    dma_spec_from_dict,
    dma_spec_to_dict,
    place_regions,
)

__all__ = [
    "ADDRESS_STREAMS",
    "BUILTIN_SCENARIO_DIR",
    "CONSTANT_RATE_PREFETCH",
    "DEFAULT_AXIS_SET",
    "PlatformSpec",
    "Registry",
    "RegistryError",
    "SCENARIO_SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "TRAFFIC_MODELS",
    "WORKLOADS",
    "WorkloadSpec",
    "available_scenarios",
    "build_workload",
    "builtin_scenario_paths",
    "critical_cores_for",
    "describe_scenario",
    "dma_spec_from_dict",
    "dma_spec_to_dict",
    "expand_axis_points",
    "get_scenario",
    "is_path_ref",
    "load_plugins",
    "place_regions",
    "register_scenario",
    "resolve_scenario",
    "scenario_config",
    "scenario_from_file",
    "settings_label",
    "unregister_scenario",
]
