"""Declarative scenarios: serializable platform/workload specs and registries.

A :class:`Scenario` bundles everything one experiment needs — platform
(simulation config + interconnect link widths), workload (resolved by name
through :data:`WORKLOADS`), default policy, critical cores and sweep axes —
as plain, versioned, JSON/TOML-serializable data.  The bundled catalog
(``repro scenarios list``) carries the paper's two camcorder cases plus new
workload families; :func:`register_scenario` and the plugin hook
(:func:`load_plugins`, ``--plugin-module``) extend every registry at runtime,
including inside spawn sweep workers.
"""

from repro.scenario.builders import CONSTANT_RATE_PREFETCH
from repro.scenario.catalog import (
    BUILTIN_SCENARIO_DIR,
    available_scenarios,
    builtin_scenario_paths,
    critical_cores_for,
    describe_scenario,
    get_scenario,
    register_scenario,
    scenario_config,
    unregister_scenario,
)
from repro.scenario.errors import RegistryError, ScenarioError
from repro.scenario.plugins import load_plugins
from repro.scenario.registry import ADDRESS_STREAMS, TRAFFIC_MODELS, WORKLOADS, Registry
from repro.scenario.spec import (
    SCENARIO_SCHEMA_VERSION,
    PlatformSpec,
    Scenario,
    WorkloadSpec,
    resolve_scenario,
    scenario_from_file,
)
from repro.scenario.workloads import (
    build_workload,
    dma_spec_from_dict,
    dma_spec_to_dict,
    place_regions,
)

__all__ = [
    "ADDRESS_STREAMS",
    "BUILTIN_SCENARIO_DIR",
    "CONSTANT_RATE_PREFETCH",
    "PlatformSpec",
    "Registry",
    "RegistryError",
    "SCENARIO_SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "TRAFFIC_MODELS",
    "WORKLOADS",
    "WorkloadSpec",
    "available_scenarios",
    "build_workload",
    "builtin_scenario_paths",
    "critical_cores_for",
    "describe_scenario",
    "dma_spec_from_dict",
    "dma_spec_to_dict",
    "get_scenario",
    "load_plugins",
    "place_regions",
    "register_scenario",
    "resolve_scenario",
    "scenario_config",
    "scenario_from_file",
    "unregister_scenario",
]
