"""Workload factories registered with the scenario workload registry.

The paper's camcorder workload is one entry; the others open new workload
families the same declarative machinery serves:

* ``camcorder`` — the paper's Fig. 2 use case (cases A and B).
* ``inline`` — a fully declarative workload: every DMA is spelled out as a
  mapping inside the scenario file, no Python required.
* ``ar_glasses`` — a 90 fps augmented-reality burst workload: stereo camera
  feeds, heavy GPU rendering, latency-critical hand tracking, WiFi offload.
* ``manycore_streaming`` — N identical streaming engines plus one random
  CPU agent, the many-core scaling stress of the ROADMAP's north star.
* ``latency_bandwidth_stress`` — adversarial mix of tight-latency agents and
  saturating bandwidth hogs, built to separate QoS policies from baselines.

Factories receive the scenario's ``workload.params`` mapping and return a
:class:`~repro.traffic.camcorder.CamcorderWorkload` (the generic container:
a frame period plus a tuple of :class:`DmaSpec`).  Unknown parameters are
rejected with the factory's known keys so scenario typos fail loudly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.memctrl.transaction import QueueClass
from repro.scenario.errors import ScenarioError
from repro.scenario.registry import WORKLOADS
from repro.sim.clock import MS
from repro.traffic.camcorder import (
    FRAME_PERIOD_30FPS_PS,
    CamcorderWorkload,
    DmaSpec,
    camcorder_workload,
)

MB = 1_000_000

#: Region size used when factories auto-place DMAs in disjoint buffers.
DEFAULT_REGION_BYTES = 64 * 1024 * 1024


def _check_params(params: Mapping[str, Any], known: Sequence[str], factory: str) -> None:
    unknown = sorted(set(params) - set(known))
    if unknown:
        raise ScenarioError(
            f"workload.params: unknown key(s) {unknown} for workload '{factory}' "
            f"(known: {sorted(known)})"
        )


def place_regions(
    specs: Sequence[DmaSpec], region_bytes: int = DEFAULT_REGION_BYTES
) -> List[DmaSpec]:
    """Give every DMA its own disjoint address region.

    Cores then interfere only through shared bandwidth, not through shared
    rows — the same discipline the camcorder workload applies.
    """
    return [
        replace(spec, region_base=index * region_bytes, region_bytes=region_bytes)
        for index, spec in enumerate(specs)
    ]


# --------------------------------------------------------------------------- #
# DmaSpec <-> plain data (used by the "inline" workload and `scenarios show`)
# --------------------------------------------------------------------------- #
def dma_spec_to_dict(spec: DmaSpec) -> Dict[str, Any]:
    """Serialise a :class:`DmaSpec` to plain data (enum becomes its value)."""
    data = dict(spec.__dict__)
    data["queue_class"] = spec.queue_class.value
    return data


def dma_spec_from_dict(data: Mapping[str, Any], path: str = "dma") -> DmaSpec:
    """Rebuild a :class:`DmaSpec` from plain data with actionable errors."""
    if not isinstance(data, Mapping):
        raise ScenarioError(f"{path}: expected a mapping, got {type(data).__name__}")
    known = set(DmaSpec.__dataclass_fields__)
    unknown = sorted(set(data) - known)
    if unknown:
        raise ScenarioError(f"{path}: unknown key(s) {unknown} (known: {sorted(known)})")
    kwargs = dict(data)
    for required in ("name", "core", "queue_class", "cluster", "is_write",
                     "traffic", "bytes_per_s", "transaction_bytes", "meter"):
        if required not in kwargs:
            raise ScenarioError(f"{path}: required key '{required}' is missing")
    try:
        kwargs["queue_class"] = QueueClass(kwargs["queue_class"])
    except ValueError:
        raise ScenarioError(
            f"{path}.queue_class: unknown queue class {kwargs['queue_class']!r} "
            f"(known: {[q.value for q in QueueClass]})"
        ) from None
    try:
        return DmaSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{path}: {exc}") from None


# --------------------------------------------------------------------------- #
# Factories
# --------------------------------------------------------------------------- #
@WORKLOADS.register("camcorder")
def _camcorder(params: Mapping[str, Any]) -> CamcorderWorkload:
    _check_params(params, ["case", "traffic_scale", "frame_period_ps"], "camcorder")
    return camcorder_workload(
        case=params.get("case", "A"),
        traffic_scale=params.get("traffic_scale", 1.0),
        frame_period_ps=params.get("frame_period_ps", FRAME_PERIOD_30FPS_PS),
    )


@WORKLOADS.register("inline")
def _inline(params: Mapping[str, Any]) -> CamcorderWorkload:
    _check_params(
        params,
        ["label", "frame_period_ps", "traffic_scale", "dmas", "auto_regions"],
        "inline",
    )
    dmas = params.get("dmas")
    if not isinstance(dmas, list) or not dmas:
        raise ScenarioError("workload.params.dmas: must be a non-empty list of DMA mappings")
    specs = [
        dma_spec_from_dict(entry, path=f"workload.params.dmas[{index}]")
        for index, entry in enumerate(dmas)
    ]
    scale = params.get("traffic_scale", 1.0)
    if scale != 1.0:
        specs = [spec.scaled(scale) for spec in specs]
    if params.get("auto_regions", True):
        specs = place_regions(specs)
    return CamcorderWorkload(
        case=str(params.get("label", "inline")),
        frame_period_ps=int(params.get("frame_period_ps", FRAME_PERIOD_30FPS_PS)),
        traffic_scale=scale,
        dmas=tuple(specs),
    )


@WORKLOADS.register("ar_glasses")
def _ar_glasses(params: Mapping[str, Any]) -> CamcorderWorkload:
    """A 90 fps AR-glasses burst workload.

    Two camera sensors stream in, the image processor fuses them, the GPU
    renders the overlay at frame rate, the display scans out continuously,
    the DSP runs latency-critical hand tracking, and WiFi offloads compressed
    frames to a paired phone.  Frames are a third as long as the camcorder's
    (11 ms), so the burst-drain phases the QoS policies fight over come three
    times as often.
    """
    _check_params(params, ["traffic_scale", "frame_period_ps"], "ar_glasses")
    scale = params.get("traffic_scale", 1.0)
    period = int(params.get("frame_period_ps", 11 * MS))
    specs = [
        DmaSpec(
            name="camera.left", core="camera", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=True, traffic="constant",
            bytes_per_s=900 * MB, transaction_bytes=2048, meter="occupancy",
        ),
        DmaSpec(
            name="camera.right", core="camera", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=True, traffic="constant",
            bytes_per_s=900 * MB, transaction_bytes=2048, meter="occupancy",
        ),
        DmaSpec(
            name="image_processor.read", core="image_processor",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=False,
            traffic="frame_burst", bytes_per_s=1800 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="image_processor.write", core="image_processor",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=True,
            traffic="frame_burst", bytes_per_s=1200 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="gpu.read", core="gpu", queue_class=QueueClass.GPU,
            cluster="compute", is_write=False, traffic="frame_burst",
            bytes_per_s=2200 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="gpu.write", core="gpu", queue_class=QueueClass.GPU,
            cluster="compute", is_write=True, traffic="frame_burst",
            bytes_per_s=1600 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="display.read", core="display", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=False, traffic="constant",
            bytes_per_s=1800 * MB, transaction_bytes=2048, meter="occupancy",
        ),
        DmaSpec(
            name="dsp.tracking", core="dsp", queue_class=QueueClass.DSP,
            cluster="compute", is_write=False, traffic="poisson",
            bytes_per_s=120 * MB, transaction_bytes=256, meter="latency",
            latency_limit_ns=1200.0, max_outstanding=4,
        ),
        DmaSpec(
            name="wifi.offload", core="wifi", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=True, traffic="frame_burst",
            bytes_per_s=450 * MB, transaction_bytes=2048, meter="processing_time",
            window_ps=2 * period,
        ),
        DmaSpec(
            name="audio.read", core="audio", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=False, traffic="poisson",
            bytes_per_s=4 * MB, transaction_bytes=256, meter="latency",
            latency_limit_ns=10_000.0, max_outstanding=2,
        ),
    ]
    specs = place_regions([spec.scaled(scale) for spec in specs])
    return CamcorderWorkload(
        case="ar_glasses", frame_period_ps=period, traffic_scale=scale, dmas=tuple(specs)
    )


@WORKLOADS.register("manycore_streaming")
def _manycore_streaming(params: Mapping[str, Any]) -> CamcorderWorkload:
    """N identical streaming engines plus one random-access CPU agent.

    Stream cores use generic names ("stream0" …), exercising the builder's
    fallback core class; the workload scales to arbitrary core counts, which
    is what the many-core axis of bundled ``manycore_streaming`` sweeps.
    """
    _check_params(
        params,
        ["streams", "bytes_per_s_per_stream", "traffic_scale", "frame_period_ps"],
        "manycore_streaming",
    )
    streams = int(params.get("streams", 8))
    if streams < 1:
        raise ScenarioError("workload.params.streams: must be at least 1")
    per_stream = float(params.get("bytes_per_s_per_stream", 600 * MB))
    scale = params.get("traffic_scale", 1.0)
    period = int(params.get("frame_period_ps", FRAME_PERIOD_30FPS_PS))
    specs: List[DmaSpec] = []
    for index in range(streams):
        # Alternate clusters so the narrow cluster links, not only DRAM,
        # carry contention; every stream holds a bandwidth target.
        cluster = ("media", "compute")[index % 2]
        queue = (QueueClass.MEDIA, QueueClass.GPU)[index % 2]
        specs.append(
            DmaSpec(
                name=f"stream{index}.read", core=f"stream{index}", queue_class=queue,
                cluster=cluster, is_write=bool(index % 2), traffic="constant",
                bytes_per_s=per_stream, transaction_bytes=2048, meter="bandwidth",
            )
        )
    specs.append(
        DmaSpec(
            name="cpu.read", core="cpu", queue_class=QueueClass.CPU,
            cluster="compute", is_write=False, traffic="poisson",
            bytes_per_s=800 * MB, transaction_bytes=2048, meter="bandwidth",
            target_bytes_per_s=400 * MB, address_pattern="random",
        )
    )
    specs = place_regions([spec.scaled(scale) for spec in specs])
    return CamcorderWorkload(
        case="manycore_streaming",
        frame_period_ps=period,
        traffic_scale=scale,
        dmas=tuple(specs),
    )


@WORKLOADS.register("latency_bandwidth_stress")
def _latency_bandwidth_stress(params: Mapping[str, Any]) -> CamcorderWorkload:
    """Tight-latency agents against saturating bandwidth hogs.

    The hogs alone exceed the DRAM's peak bandwidth, so any policy that is
    blind to QoS starves the latency agents — the sharpest separator between
    the paper's priority policies and the FCFS/FR-FCFS baselines.
    """
    _check_params(params, ["traffic_scale", "frame_period_ps", "hogs"], "latency_bandwidth_stress")
    scale = params.get("traffic_scale", 1.0)
    period = int(params.get("frame_period_ps", FRAME_PERIOD_30FPS_PS))
    hogs = int(params.get("hogs", 3))
    if hogs < 1:
        raise ScenarioError("workload.params.hogs: must be at least 1")
    specs: List[DmaSpec] = [
        DmaSpec(
            name="dsp.read", core="dsp", queue_class=QueueClass.DSP,
            cluster="compute", is_write=False, traffic="poisson",
            bytes_per_s=100 * MB, transaction_bytes=256, meter="latency",
            latency_limit_ns=1500.0, max_outstanding=4,
        ),
        DmaSpec(
            name="audio.read", core="audio", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=False, traffic="poisson",
            bytes_per_s=6 * MB, transaction_bytes=256, meter="latency",
            latency_limit_ns=10_000.0, max_outstanding=2,
        ),
        DmaSpec(
            name="modem.write", core="modem", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=True, traffic="frame_burst",
            bytes_per_s=250 * MB, transaction_bytes=2048, meter="processing_time",
            window_ps=5 * MS,
        ),
    ]
    for index in range(hogs):
        specs.append(
            DmaSpec(
                name=f"gpu.hog{index}", core="gpu", queue_class=QueueClass.GPU,
                cluster="compute", is_write=bool(index % 2), traffic="frame_burst",
                bytes_per_s=2500 * MB, transaction_bytes=2048, meter="frame_progress",
            )
        )
    specs.append(
        DmaSpec(
            name="cpu.read", core="cpu", queue_class=QueueClass.CPU,
            cluster="compute", is_write=False, traffic="poisson",
            bytes_per_s=1500 * MB, transaction_bytes=2048, meter="bandwidth",
            target_bytes_per_s=500 * MB, address_pattern="random",
        )
    )
    specs = place_regions([spec.scaled(scale) for spec in specs])
    return CamcorderWorkload(
        case="latency_bandwidth_stress",
        frame_period_ps=period,
        traffic_scale=scale,
        dmas=tuple(specs),
    )


def build_workload(kind: str, params: Optional[Mapping[str, Any]] = None) -> CamcorderWorkload:
    """Convenience wrapper: resolve ``kind`` in the registry and build."""
    return WORKLOADS.get(kind)(dict(params or {}))
