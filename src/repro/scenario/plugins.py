"""Plugin import hook: make runtime registrations survive spawn workers.

Registries (scheduling policies, workloads, traffic models, address streams,
scenarios) live in process memory, so anything registered at runtime used to
vanish inside ``spawn`` sweep workers — the ROADMAP's ``jobs=1`` caveat for
custom policies.  The fix is declarative too: a run spec carries the *names*
of the modules whose import performs the registrations, and every worker
imports them before executing its spec.  The CLI's ``--plugin-module`` and
:attr:`repro.runner.RunSpec.plugin_modules` both route through here.
"""

from __future__ import annotations

import importlib
import sys
from types import ModuleType
from typing import Iterable, List


def load_plugins(modules: Iterable[str]) -> List[ModuleType]:
    """Import every named plugin module (idempotent, order-preserving).

    Already-imported modules are returned straight from :data:`sys.modules`
    without touching the import machinery, so calling this once per spec on a
    sweep's hot path costs a few dictionary lookups, not an import-system
    round trip per call.  A failing import is re-raised with the module name
    and a reminder that the module must be importable in worker processes too
    (i.e. reachable from ``sys.path``, not defined inline in a notebook cell).
    """
    loaded: List[ModuleType] = []
    for name in modules:
        module = sys.modules.get(name)
        if module is not None:
            loaded.append(module)
            continue
        try:
            loaded.append(importlib.import_module(name))
        except ImportError as exc:
            raise ImportError(
                f"cannot import plugin module '{name}': {exc}. Plugin modules "
                "must be importable by name in every worker process; install "
                "the package or add its directory to PYTHONPATH."
            ) from exc
    return loaded
