"""String-keyed registries backing the declarative scenario layer.

A scenario file refers to everything by name: its workload kind, each DMA's
traffic model and address-stream pattern, and the scheduling policy.  The
first three resolve through the :class:`Registry` instances below; scheduling
policies keep their existing registry in :mod:`repro.memctrl.policies`.

Registries are open: plugin modules (imported via ``--plugin-module`` on the
CLI, or :func:`repro.scenario.load_plugins` from code) register additional
entries at import time, which is what makes custom workloads and traffic
models usable from plain scenario files — including inside ``spawn`` sweep
workers, which import the same plugin modules before running their specs.

This module is intentionally import-light (no other ``repro`` imports) so
that any layer can depend on it without cycles.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.scenario.errors import RegistryError

T = TypeVar("T")


class Registry(Generic[T]):
    """A named mapping from string keys to factories (or any values).

    ``register`` may be used directly or as a decorator::

        @TRAFFIC_MODELS.register("frame_burst")
        def _build(spec, *, frame_period_ps, seed): ...

    Lookups of unknown keys raise :class:`RegistryError` listing every known
    key (and a "did you mean" suggestion), so a typo in a scenario file
    produces an actionable message rather than a bare ``KeyError``.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(
        self, name: str, value: Optional[T] = None, replace: bool = False
    ) -> Callable[[T], T]:
        """Register ``value`` under ``name`` (decorator form when value is omitted)."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} names must be non-empty strings, got {name!r}")

        def _add(entry: T) -> T:
            if name in self._entries and not replace:
                raise RegistryError(
                    f"{self.kind} '{name}' is already registered "
                    f"(pass replace=True to override)"
                )
            self._entries[name] = entry
            return entry

        if value is not None:
            _add(value)
            return lambda entry: entry
        return _add

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests cleaning up after themselves)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> T:
        """Look up an entry, raising an actionable error for unknown keys."""
        try:
            return self._entries[name]
        except KeyError:
            hint = ""
            close = difflib.get_close_matches(name, self._entries, n=1)
            if close:
                hint = f" — did you mean '{close[0]}'?"
            raise RegistryError(
                f"unknown {self.kind} '{name}' (known: {', '.join(self.names()) or 'none'})"
                f"{hint}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: Workload factories: ``factory(params: dict) -> CamcorderWorkload``-shaped
#: objects (any object carrying ``case``, ``frame_period_ps`` and ``dmas``).
WORKLOADS: Registry = Registry("workload")

#: Traffic-model builders: ``build(spec, *, frame_period_ps, seed) -> TrafficGenerator``.
TRAFFIC_MODELS: Registry = Registry("traffic model")

#: Address-stream builders: ``build(spec, *, seed) -> AddressStream``.
ADDRESS_STREAMS: Registry = Registry("address stream")
