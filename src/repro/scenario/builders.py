"""Registry-backed builders for traffic models and address streams.

These replace the hard-wired ``if spec.traffic == ...`` dispatch the system
builder used to carry: each traffic class and address pattern is one registry
entry, so plugins can add new ones (e.g. an on/off bursty model) without
touching the builder.  Builders receive the :class:`~repro.traffic.camcorder.DmaSpec`
they are building for plus the keyword context the system builder supplies.
"""

from __future__ import annotations

from repro.scenario.registry import ADDRESS_STREAMS, TRAFFIC_MODELS
from repro.sim.random import derive_rng
from repro.traffic.addresses import (
    AddressStream,
    RandomAddressStream,
    SequentialAddressStream,
    StridedAddressStream,
)
from repro.traffic.bursty import FrameBurstGenerator
from repro.traffic.camcorder import DmaSpec
from repro.traffic.constant import ConstantRateGenerator
from repro.traffic.generator import TrafficGenerator
from repro.traffic.poisson import PoissonGenerator

#: Constant-rate DMAs (display refill, camera drain, radio buffers) prefetch
#: slightly ahead of the externally imposed rate, as real buffer-refill
#: engines do.  Without this headroom the achieved rate can never exceed the
#: target and measurement jitter alone would report spurious QoS misses.
CONSTANT_RATE_PREFETCH = 1.05


@TRAFFIC_MODELS.register("frame_burst")
def _build_frame_burst(spec: DmaSpec, *, frame_period_ps: int, seed: int) -> TrafficGenerator:
    period = spec.window_ps or frame_period_ps
    bytes_per_frame = max(spec.transaction_bytes, round(spec.bytes_per_s * period / 1e12))
    # Round the burst up to a whole number of transactions so that the
    # DMA can actually reach 100 % frame progress; otherwise the trailing
    # partial transaction would leave the meter fractionally short of its
    # target at every frame boundary.
    remainder = bytes_per_frame % spec.transaction_bytes
    if remainder:
        bytes_per_frame += spec.transaction_bytes - remainder
    return FrameBurstGenerator(
        bytes_per_frame=bytes_per_frame,
        frame_period_ps=period,
        start_offset_ps=spec.start_offset_ps,
    )


@TRAFFIC_MODELS.register("constant")
def _build_constant(spec: DmaSpec, *, frame_period_ps: int, seed: int) -> TrafficGenerator:
    return ConstantRateGenerator(
        bytes_per_s=spec.bytes_per_s * CONSTANT_RATE_PREFETCH,
        chunk_bytes=spec.transaction_bytes,
        start_offset_ps=spec.start_offset_ps,
    )


@TRAFFIC_MODELS.register("poisson")
def _build_poisson(spec: DmaSpec, *, frame_period_ps: int, seed: int) -> TrafficGenerator:
    return PoissonGenerator(
        rng=derive_rng(seed, f"traffic.{spec.name}"),
        bytes_per_s=spec.bytes_per_s,
        chunk_bytes=spec.transaction_bytes,
        start_offset_ps=spec.start_offset_ps,
    )


@ADDRESS_STREAMS.register("sequential")
def _build_sequential(spec: DmaSpec, *, seed: int) -> AddressStream:
    return SequentialAddressStream(base=spec.region_base, region_bytes=spec.region_bytes)


@ADDRESS_STREAMS.register("random")
def _build_random(spec: DmaSpec, *, seed: int) -> AddressStream:
    return RandomAddressStream(
        rng=derive_rng(seed, f"addresses.{spec.name}"),
        base=spec.region_base,
        region_bytes=spec.region_bytes,
        align_bytes=spec.transaction_bytes,
    )


@ADDRESS_STREAMS.register("strided")
def _build_strided(spec: DmaSpec, *, seed: int) -> AddressStream:
    stride = spec.stride_bytes or spec.transaction_bytes * 2
    return StridedAddressStream(
        base=spec.region_base, region_bytes=spec.region_bytes, stride_bytes=stride
    )
