"""The declarative, versioned scenario specification.

A :class:`Scenario` is the unit of experimentation: one platform (the frozen
simulation config plus interconnect link widths), one workload (resolved by
name through the workload registry), a default scheduling policy, the list of
critical cores the corresponding figures plot, and optional sweep axes.

Scenarios are plain data: ``from_dict(to_dict(s)) == s`` holds exactly, the
dictionary form is JSON- and TOML-compatible, and the sweep orchestrator's
cache key is the SHA-256 of the serialized scenario — so two runs described
by the same scenario file always share one cache entry, whichever process,
machine or CI job produced it.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.scenario.errors import RegistryError, ScenarioError
from repro.scenario.registry import WORKLOADS
from repro.sim.config import SimulationConfig

PathLike = Union[str, Path]

#: Version of the scenario schema.  Bump when the spec's shape changes in a
#: way old files cannot express; the loader rejects newer versions with an
#: actionable message instead of misreading them.
SCENARIO_SCHEMA_VERSION = 1

#: DRAM backends the system builder can construct.
KNOWN_DRAM_MODELS = ("transaction", "command")

#: Name under which a flat ``sweep`` mapping is exposed by
#: :meth:`Scenario.sweep_axis_sets`, so code that iterates axis sets does not
#: need to special-case the flat form.
DEFAULT_AXIS_SET = "grid"


def _plain(value: Any, path: str) -> Any:
    """Canonicalise a parameter value to JSON-compatible plain data.

    Tuples become lists (so equality survives a JSON round trip) and any
    type JSON cannot express is rejected up front with its dotted path.
    """
    if isinstance(value, (list, tuple)):
        return [_plain(item, f"{path}[{i}]") for i, item in enumerate(value)]
    if isinstance(value, Mapping):
        for key in value:
            if not isinstance(key, str):
                raise ScenarioError(f"{path}: mapping keys must be strings, got {key!r}")
        return {key: _plain(item, f"{path}.{key}") for key, item in value.items()}
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    raise ScenarioError(
        f"{path}: values must be JSON-compatible (null, bool, number, string, "
        f"list or mapping), got {type(value).__name__}"
    )


def _require_mapping(data: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ScenarioError(f"{path}: expected a mapping, got {type(data).__name__}")
    return data


def _reject_unknown_keys(data: Mapping[str, Any], known: Sequence[str], path: str) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ScenarioError(f"{path}: unknown key(s) {unknown} (known: {sorted(known)})")


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload reference: a registry kind plus its free-form parameters.

    ``kind`` names a factory in :data:`repro.scenario.registry.WORKLOADS`
    ("camcorder", "inline", …, or anything a plugin registered); ``params``
    is passed to the factory verbatim.  Parameters are canonicalised to
    plain JSON-compatible data on construction so that serialisation is
    lossless.
    """

    kind: str = "camcorder"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ScenarioError(f"workload.kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(self, "params", _plain(dict(self.params), "workload.params"))

    def build(self, traffic_scale: Optional[float] = None) -> Any:
        """Resolve the workload factory and build the workload object."""
        factory = WORKLOADS.get(self.kind)
        params = dict(self.params)
        if traffic_scale is not None:
            params["traffic_scale"] = traffic_scale
        return factory(params)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str = "workload") -> "WorkloadSpec":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ["kind", "params"], path)
        params = data.get("params", {})
        _require_mapping(params, f"{path}.params")
        return cls(kind=data.get("kind", "camcorder"), params=dict(params))


@dataclass(frozen=True)
class PlatformSpec:
    """The hardware half of a scenario: simulation config plus link widths."""

    sim: SimulationConfig = field(default_factory=SimulationConfig)
    cluster_links_bytes_per_ns: Mapping[str, float] = field(default_factory=dict)
    default_cluster_link_bytes_per_ns: float = 8.0
    root_link_bytes_per_ns: float = 32.0
    dram_model: str = "transaction"

    def __post_init__(self) -> None:
        links = dict(self.cluster_links_bytes_per_ns)
        for cluster, bandwidth in links.items():
            if not isinstance(bandwidth, (int, float)) or bandwidth <= 0:
                raise ScenarioError(
                    f"platform.cluster_links_bytes_per_ns.{cluster}: "
                    f"must be a positive number, got {bandwidth!r}"
                )
        object.__setattr__(self, "cluster_links_bytes_per_ns", links)
        if self.default_cluster_link_bytes_per_ns <= 0:
            raise ScenarioError(
                "platform.default_cluster_link_bytes_per_ns: must be positive"
            )
        if self.root_link_bytes_per_ns <= 0:
            raise ScenarioError("platform.root_link_bytes_per_ns: must be positive")
        if self.dram_model not in KNOWN_DRAM_MODELS:
            raise ScenarioError(
                f"platform.dram_model: unknown DRAM model '{self.dram_model}' "
                f"(known: {', '.join(KNOWN_DRAM_MODELS)})"
            )

    def cluster_link_bytes_per_ns(self, cluster: str) -> float:
        """Link bandwidth for a cluster (falling back to the default width)."""
        return self.cluster_links_bytes_per_ns.get(
            cluster, self.default_cluster_link_bytes_per_ns
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sim": self.sim.to_dict(),
            "cluster_links_bytes_per_ns": dict(self.cluster_links_bytes_per_ns),
            "default_cluster_link_bytes_per_ns": self.default_cluster_link_bytes_per_ns,
            "root_link_bytes_per_ns": self.root_link_bytes_per_ns,
            "dram_model": self.dram_model,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str = "platform") -> "PlatformSpec":
        data = _require_mapping(data, path)
        known = [f.name for f in fields(cls)]
        _reject_unknown_keys(data, known, path)
        kwargs: Dict[str, Any] = {k: data[k] for k in known if k in data}
        if "sim" in kwargs:
            try:
                kwargs["sim"] = SimulationConfig.from_dict(kwargs["sim"], f"{path}.sim")
            except ValueError as exc:
                raise ScenarioError(str(exc)) from None
        if "cluster_links_bytes_per_ns" in kwargs:
            _require_mapping(
                kwargs["cluster_links_bytes_per_ns"], f"{path}.cluster_links_bytes_per_ns"
            )
            kwargs["cluster_links_bytes_per_ns"] = dict(kwargs["cluster_links_bytes_per_ns"])
        return cls(**kwargs)


@dataclass(frozen=True)
class Scenario:
    """One named, fully declarative experiment setup."""

    name: str
    description: str = ""
    schema_version: int = SCENARIO_SCHEMA_VERSION
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    policy: str = "priority_qos"
    adaptation_enabled: Optional[bool] = None
    critical_cores: Tuple[str, ...] = ()
    sweep: Mapping[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"scenario.name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.policy, str) or not self.policy:
            raise ScenarioError(f"scenario.policy must be a non-empty string, got {self.policy!r}")
        if self.schema_version != SCENARIO_SCHEMA_VERSION:
            raise ScenarioError(
                f"scenario.schema_version: file declares version {self.schema_version}, "
                f"this build reads version {SCENARIO_SCHEMA_VERSION}"
            )
        object.__setattr__(
            self, "critical_cores", tuple(str(core) for core in self.critical_cores)
        )
        # The sweep comes in two shapes: the flat form maps axis -> values,
        # the named form maps set name -> {axis -> values} so one scenario
        # can declare several sub-grids (per-figure axis sets).  The two
        # cannot be mixed — a value that is a mapping means the whole sweep
        # is named.
        sweep: Dict[str, Any] = {}
        named: Optional[bool] = None
        for axis, values in dict(self.sweep).items():
            if isinstance(values, Mapping):
                if named is False:
                    raise ScenarioError(
                        f"scenario.sweep.{axis}: cannot mix named axis sets "
                        "with flat axes in one sweep"
                    )
                named = True
                axes: Dict[str, List[Any]] = {}
                for set_axis, set_values in values.items():
                    if not isinstance(set_values, (list, tuple)):
                        raise ScenarioError(
                            f"scenario.sweep.{axis}.{set_axis}: axis values must "
                            f"be a list, got {type(set_values).__name__}"
                        )
                    axes[set_axis] = _plain(
                        list(set_values), f"scenario.sweep.{axis}.{set_axis}"
                    )
                if not axes:
                    raise ScenarioError(
                        f"scenario.sweep.{axis}: named axis set must declare at "
                        "least one axis"
                    )
                sweep[axis] = axes
            elif isinstance(values, (list, tuple)):
                if named is True:
                    raise ScenarioError(
                        f"scenario.sweep.{axis}: cannot mix flat axes with "
                        "named axis sets in one sweep"
                    )
                named = False
                sweep[axis] = _plain(list(values), f"scenario.sweep.{axis}")
            else:
                raise ScenarioError(
                    f"scenario.sweep.{axis}: axis values must be a list (flat "
                    f"form) or a mapping of axes (named form), got "
                    f"{type(values).__name__}"
                )
        object.__setattr__(self, "sweep", sweep)

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def simulation_config(self) -> SimulationConfig:
        """The frozen simulation configuration this scenario describes."""
        return self.platform.sim

    def build_workload(self, traffic_scale: Optional[float] = None) -> Any:
        """Build the workload object via the workload registry."""
        try:
            return self.workload.build(traffic_scale=traffic_scale)
        except RegistryError as exc:
            raise ScenarioError(f"scenario '{self.name}': {exc}") from None

    def with_overrides(self, **changes: Any) -> "Scenario":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data form (``from_dict`` inverts it exactly)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "platform": self.platform.to_dict(),
            "workload": self.workload.to_dict(),
            "policy": self.policy,
            "adaptation_enabled": self.adaptation_enabled,
            "critical_cores": list(self.critical_cores),
            "sweep": {
                key: (
                    {axis: list(values) for axis, values in entry.items()}
                    if isinstance(entry, Mapping)
                    else list(entry)
                )
                for key, entry in self.sweep.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Validate and rebuild a scenario from its dictionary form.

        Every validation error is a :class:`ScenarioError` whose message
        starts with the dotted path of the offending entry.
        """
        data = _require_mapping(data, "scenario")
        known = [f.name for f in fields(cls)]
        _reject_unknown_keys(data, known, "scenario")
        if "name" not in data:
            raise ScenarioError("scenario.name: required key is missing")
        kwargs: Dict[str, Any] = {k: data[k] for k in known if k in data}
        if "platform" in kwargs:
            kwargs["platform"] = PlatformSpec.from_dict(kwargs["platform"], "scenario.platform")
        if "workload" in kwargs:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"], "scenario.workload")
        if "adaptation_enabled" in kwargs and kwargs["adaptation_enabled"] is not None:
            if not isinstance(kwargs["adaptation_enabled"], bool):
                raise ScenarioError(
                    "scenario.adaptation_enabled: must be true, false or null, "
                    f"got {kwargs['adaptation_enabled']!r}"
                )
        if "critical_cores" in kwargs:
            cores = kwargs["critical_cores"]
            if not isinstance(cores, (list, tuple)):
                raise ScenarioError(
                    f"scenario.critical_cores: expected a list, got {type(cores).__name__}"
                )
            kwargs["critical_cores"] = tuple(cores)
        if "sweep" in kwargs:
            _require_mapping(kwargs["sweep"], "scenario.sweep")
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: PathLike) -> Path:
        """Write the scenario to a JSON file and return the written path."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(self.to_json() + "\n")
        return destination

    # ------------------------------------------------------------------ #
    # Dotted-path overrides (the CLI's --set) and sweep axes
    # ------------------------------------------------------------------ #
    def apply_settings(self, settings: Mapping[str, Any]) -> "Scenario":
        """Apply ``{"dotted.path": value}`` overrides and revalidate.

        String values are parsed as JSON when possible (so ``--set
        platform.sim.seed=7`` yields an integer) and kept as strings
        otherwise.  Paths must already exist in the serialized scenario —
        except under ``workload.params``, which is free-form — so typos fail
        loudly with the list of keys available at the failing level.
        """
        if not settings:
            return self
        data = self.to_dict()
        for dotted, value in settings.items():
            _set_path(data, dotted, _coerce(value))
        return Scenario.from_dict(data)

    @property
    def sweep_is_named(self) -> bool:
        """Whether the sweep declares named axis sets rather than flat axes."""
        return any(isinstance(entry, Mapping) for entry in self.sweep.values())

    def sweep_axis_sets(self) -> Dict[str, Dict[str, List[Any]]]:
        """The sweep as named axis sets, whichever form was declared.

        The named form is returned as declared (in declaration order); the
        flat form is exposed as a single set called
        :data:`DEFAULT_AXIS_SET`.  An empty sweep yields no sets.
        """
        if not self.sweep:
            return {}
        if self.sweep_is_named:
            # Copy the inner lists too: handing out the frozen scenario's own
            # lists would let a caller mutate a catalog-cached sweep.
            return {
                name: {axis: list(v) for axis, v in axes.items()}
                for name, axes in self.sweep.items()
            }
        return {DEFAULT_AXIS_SET: {axis: list(v) for axis, v in self.sweep.items()}}

    def sweep_axes(self, axis_set: Optional[str] = None) -> Dict[str, List[Any]]:
        """The axes of one axis set (or of the flat sweep).

        With ``axis_set=None`` the flat form returns its axes directly; a
        named sweep requires picking one of its sets and says which exist.
        """
        sets = self.sweep_axis_sets()
        if axis_set is None:
            if not sets:
                return {}
            if not self.sweep_is_named:
                return sets[DEFAULT_AXIS_SET]
            raise ScenarioError(
                f"scenario.sweep: scenario '{self.name}' declares named axis "
                f"sets ({', '.join(sets)}); pick one with axis_set="
            )
        if axis_set not in sets:
            raise ScenarioError(
                f"scenario.sweep.{axis_set}: no such axis set in scenario "
                f"'{self.name}' (declared: {', '.join(sets) or 'none'})"
            )
        return sets[axis_set]

    def sweep_axis(self, axis: str) -> Optional[List[Any]]:
        """Look one axis up across the flat sweep or every named set.

        Used for defaulting (e.g. the CLI's policy list): returns the first
        declaration of ``axis`` in declaration order, or ``None``.
        """
        for axes in self.sweep_axis_sets().values():
            if axis in axes:
                return list(axes[axis])
        return None

    def sweep_points(self, axis_set: Optional[str] = None) -> List[Dict[str, Any]]:
        """Expand sweep axes into the cartesian product of settings.

        Each point is a ``{"dotted.path": value}`` mapping suitable for
        :meth:`apply_settings`; an empty sweep yields the single empty point.
        For a sweep with named axis sets, ``axis_set`` selects which set to
        expand.
        """
        return expand_axis_points(self.sweep_axes(axis_set))


def expand_axis_points(axes_by_name: Mapping[str, List[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of axes, expanded in sorted-axis order.

    The single expansion used by scenario sweeps and campaign sub-grids, so
    point order (and therefore result order and labels) cannot drift between
    the two.  Empty axes yield the single empty point.
    """
    if not axes_by_name:
        return [{}]
    axes = sorted(axes_by_name)
    points = []
    for values in itertools.product(*(axes_by_name[axis] for axis in axes)):
        points.append(dict(zip(axes, values)))
    return points


def settings_label(point: Mapping[str, Any]) -> str:
    """Display label for a grid point: its settings' last path segments.

    Shared by ``repro grid`` and campaign sub-grids — cache-key parity
    between the two depends on labels (and the points behind them) staying
    byte-identical.
    """
    return ", ".join(
        f"{path.split('.')[-1]}={value}" for path, value in sorted(point.items())
    )


def _coerce(value: Any) -> Any:
    if not isinstance(value, str):
        return value
    try:
        return json.loads(value)
    except ValueError:
        return value


def _set_path(data: Dict[str, Any], dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node: Any = data
    for depth, part in enumerate(parts[:-1]):
        prefix = ".".join(parts[: depth + 1])
        if not isinstance(node, dict) or part not in node:
            _unknown_path(node, prefix)
        node = node[part]
    leaf = parts[-1]
    if not isinstance(node, dict):
        _unknown_path(node, dotted)
    # workload.params is a free-form mapping: creating new keys there is how
    # --set parameterises custom workloads.  Everywhere else the path must
    # already exist, so typos cannot silently add ignored keys.
    in_params = dotted.startswith("workload.params.")
    if leaf not in node and not in_params:
        _unknown_path(node, dotted)
    node[leaf] = value


def _unknown_path(node: Any, dotted: str) -> None:
    available = sorted(node) if isinstance(node, dict) else []
    raise ScenarioError(
        f"scenario.{dotted}: no such setting (available here: {available or 'none'})"
    )


# --------------------------------------------------------------------------- #
# File loading: JSON and TOML
# --------------------------------------------------------------------------- #
def load_spec_file(path: PathLike, kind: str, error: type) -> Any:
    """Read a ``.json``/``.toml`` spec file to plain data, or raise ``error``.

    The one loader shared by scenario and campaign files, parameterized by
    the document kind (for messages) and the error class to raise.
    """
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as exc:
        raise error(f"cannot read {kind} file {source}: {exc}") from None
    if source.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - python < 3.11
            raise error(
                f"{source}: TOML {kind} files need Python 3.11+ (tomllib); "
                "convert the file to JSON to use it here"
            ) from None
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise error(f"{source}: invalid TOML: {exc}") from None
    try:
        return json.loads(text)
    except ValueError as exc:
        raise error(f"{source}: invalid JSON: {exc}") from None


def scenario_from_file(path: PathLike) -> Scenario:
    """Load a scenario from a ``.json`` or ``.toml`` file."""
    source = Path(path)
    data = load_spec_file(source, "scenario", ScenarioError)
    try:
        return Scenario.from_dict(data)
    except ScenarioError as exc:
        raise ScenarioError(f"{source}: {exc}") from None


# --------------------------------------------------------------------------- #
# Override resolution shared by build_system, run_experiment and RunSpec
# --------------------------------------------------------------------------- #
def resolve_scenario(
    scenario: Union[str, Scenario],
    policy: Optional[str] = None,
    config: Optional[SimulationConfig] = None,
    duration_ps: Optional[int] = None,
    seed: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    adaptation_enabled: Optional[bool] = None,
    dram_freq_mhz: Optional[float] = None,
    dram_model: Optional[str] = None,
    settings: Union[Mapping[str, Any], Sequence[Tuple[str, Any]], None] = None,
) -> Scenario:
    """Resolve a scenario reference and bake every override into the spec.

    The result is a fully self-describing :class:`Scenario`: serializing it
    captures the policy, duration, seed, DRAM model and frequency, and the
    workload's traffic scale — which is exactly what the sweep orchestrator
    hashes for its cache key.
    """
    from repro.scenario.catalog import get_scenario  # deferred: avoids a cycle

    resolved = get_scenario(scenario)
    if settings:
        resolved = resolved.apply_settings(dict(settings))
    sim = config if config is not None else resolved.platform.sim
    if duration_ps is not None:
        sim = sim.with_overrides(duration_ps=duration_ps)
    if seed is not None:
        sim = sim.with_overrides(seed=seed)
    if dram_freq_mhz is not None:
        sim = sim.with_overrides(dram=sim.dram.with_frequency(dram_freq_mhz))
    platform = resolved.platform
    if sim is not platform.sim:
        platform = replace(platform, sim=sim)
    if dram_model is not None:
        platform = replace(platform, dram_model=dram_model)
    workload = resolved.workload
    if traffic_scale is not None:
        params = dict(workload.params)
        params["traffic_scale"] = traffic_scale
        workload = replace(workload, params=params)
    changes: Dict[str, Any] = {}
    if platform is not resolved.platform:
        changes["platform"] = platform
    if workload is not resolved.workload:
        changes["workload"] = workload
    if policy is not None:
        changes["policy"] = policy
    if adaptation_enabled is not None:
        changes["adaptation_enabled"] = adaptation_enabled
    return resolved.with_overrides(**changes) if changes else resolved
