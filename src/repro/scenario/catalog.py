"""The scenario catalog: bundled scenario files plus runtime registrations.

Bundled scenarios live as JSON files in ``repro/scenario/data/`` — the two
paper cases (``case_a``, ``case_b``) and the new workload families — and are
loaded lazily on first use.  Plugins (or tests) can add more at runtime with
:func:`register_scenario`; the CLI additionally accepts filesystem paths
wherever a scenario name is expected.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.scenario.errors import ScenarioError
from repro.scenario.spec import Scenario, scenario_from_file
from repro.sim.config import SimulationConfig

#: Directory holding the bundled scenario files.
BUILTIN_SCENARIO_DIR = Path(__file__).resolve().parent / "data"

_runtime: Dict[str, Scenario] = {}
_builtin_cache: Dict[str, Scenario] = {}


def is_path_ref(ref: str) -> bool:
    """Whether a string reference names a *file* rather than a catalog entry.

    The one classifier shared by the scenario and campaign catalogs (and by
    campaign-relative path anchoring), so the same string can never be read
    as a path by one layer and a name by another.
    """
    return ref.endswith((".json", ".toml")) or "/" in ref


def builtin_scenario_paths() -> Dict[str, Path]:
    """Name -> path for every bundled scenario file."""
    return {
        path.stem: path
        for path in sorted(BUILTIN_SCENARIO_DIR.glob("*.json"))
    }


def available_scenarios() -> Dict[str, Scenario]:
    """Every known scenario (bundled and runtime-registered), by name.

    Runtime registrations shadow bundled files of the same name, so a plugin
    can refine a built-in scenario without touching the package data.
    """
    catalog: Dict[str, Scenario] = {}
    for name in builtin_scenario_paths():
        catalog[name] = _load_builtin(name)
    catalog.update(_runtime)
    return dict(sorted(catalog.items()))


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Register a scenario under its own name for this process.

    Used by plugin modules (imported in every sweep worker via
    ``--plugin-module``) to make custom scenarios addressable by name.
    """
    if not isinstance(scenario, Scenario):
        raise TypeError("register_scenario expects a Scenario instance")
    if scenario.name in _runtime and not replace:
        raise ScenarioError(
            f"scenario '{scenario.name}' is already registered (pass replace=True)"
        )
    _runtime[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    """Remove a runtime registration (primarily for tests)."""
    _runtime.pop(name, None)


def _load_builtin(name: str) -> Scenario:
    cached = _builtin_cache.get(name)
    if cached is None:
        cached = scenario_from_file(builtin_scenario_paths()[name])
        if cached.name != name:
            raise ScenarioError(
                f"bundled scenario file '{name}.json' declares name "
                f"'{cached.name}'; file stem and scenario name must match"
            )
        _builtin_cache[name] = cached
    return cached


def get_scenario(ref: Union[str, Path, Scenario]) -> Scenario:
    """Resolve a scenario reference: an object, a known name, or a file path."""
    if isinstance(ref, Scenario):
        return ref
    if isinstance(ref, Path):
        return scenario_from_file(ref)
    if not isinstance(ref, str):
        raise TypeError(f"scenario reference must be a name, path or Scenario, got {type(ref)!r}")
    if ref in _runtime:
        return _runtime[ref]
    builtins = builtin_scenario_paths()
    if ref in builtins:
        return _load_builtin(ref)
    if is_path_ref(ref):
        return scenario_from_file(ref)
    known = sorted(set(builtins) | set(_runtime))
    raise ScenarioError(
        f"unknown scenario '{ref}' (known: {', '.join(known)}; "
        "a path to a .json/.toml scenario file also works)"
    )


def scenario_config(ref: Union[str, Path, Scenario]) -> SimulationConfig:
    """The simulation configuration a scenario describes (common shorthand)."""
    return get_scenario(ref).simulation_config()


def critical_cores_for(ref: Union[str, Path, Scenario]) -> Tuple[str, ...]:
    """The cores whose NPI the scenario's figures plot."""
    return get_scenario(ref).critical_cores


def describe_scenario(ref: Union[str, Path, Scenario]) -> str:
    """One-line summary used by ``repro scenarios list``."""
    scenario = get_scenario(ref)
    workload = scenario.workload
    return (
        f"{scenario.name:<26}workload={workload.kind:<26}"
        f"policy={scenario.policy:<20}{scenario.description}"
    )


def find_scenario_name(ref: Union[str, Path, Scenario]) -> Optional[str]:
    """The catalog name of a reference, if it resolves to a known scenario."""
    try:
        return get_scenario(ref).name
    except (ScenarioError, TypeError):
        return None
