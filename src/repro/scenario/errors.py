"""Errors raised by the declarative scenario layer."""

from __future__ import annotations


class ScenarioError(ValueError):
    """A scenario file or dictionary failed schema validation.

    The message always carries the dotted path of the offending entry
    (e.g. ``scenario.platform.sim.dram.channels``) so that authors of
    scenario files can fix them without reading the loader source.
    """


class RegistryError(ValueError):
    """A registry lookup or registration failed (unknown key or collision)."""
