"""Experiment runner: one simulation run per policy / scenario / frequency point.

Every figure and table of the paper's evaluation is a small composition of
the functions in this module:

* :func:`run_experiment` — one run, returning NPI traces, bandwidth and
  priority distributions.
* :func:`compare_policies` — Figs. 5, 6, 8 and 9 (several policies on the
  same scenario).
* :func:`frequency_sweep` — Fig. 7 (one policy, several DRAM frequencies).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs import span
from repro.scenario import Scenario, critical_cores_for, resolve_scenario
from repro.sim.config import SimulationConfig
from repro.sim.trace import TimeSeries, TraceRecorder
from repro.system.builder import System, build_system


@dataclass
class ExperimentResult:
    """Everything measured during one simulation run."""

    scenario: str
    policy: str
    adaptation_enabled: bool
    duration_ps: int
    dram_freq_mhz: float
    min_core_npi: Dict[str, float]
    mean_core_npi: Dict[str, float]
    dram_bandwidth_bytes_per_s: float
    dram_row_hit_rate: float
    served_transactions: int
    average_latency_ps: float
    priority_distributions: Dict[str, Dict[int, float]] = field(default_factory=dict)
    trace: Optional[TraceRecorder] = None

    def failing_cores(self, threshold: float = 1.0) -> List[str]:
        """Cores whose minimum NPI dropped below the target threshold."""
        return sorted(
            core for core, npi in self.min_core_npi.items() if npi < threshold
        )

    def npi_series(self, core: str) -> TimeSeries:
        """The recorded NPI time series of a core."""
        if self.trace is None:
            raise RuntimeError("this result was produced without trace recording")
        series = self.trace.get(f"npi.core.{core}")
        if series is None:
            raise KeyError(f"no NPI trace recorded for core '{core}'")
        return series

    def dram_bandwidth_gb_per_s(self) -> float:
        return self.dram_bandwidth_bytes_per_s / 1e9


def run_experiment(
    scenario: Union[str, Scenario] = "case_a",
    policy: Optional[str] = None,
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    adaptation_enabled: Optional[bool] = None,
    dram_freq_mhz: Optional[float] = None,
    keep_trace: bool = True,
    system: Optional[System] = None,
    dram_model: Optional[str] = None,
    kernel: Optional[str] = None,
) -> ExperimentResult:
    """Run one simulation and collect the paper's metrics.

    A pre-built ``system`` may be supplied (the ablation benchmarks do this to
    tweak internal parameters); otherwise one is built from the scenario plus
    the keyword overrides.  ``kernel`` selects the simulation kernel
    ("scalar" or "batched" — bit-identical results, see ``docs/engine.md``)
    and is ignored when a pre-built system is supplied.
    """
    if system is None:
        resolved = resolve_scenario(
            scenario,
            policy=policy,
            config=config,
            duration_ps=duration_ps,
            traffic_scale=traffic_scale,
            adaptation_enabled=adaptation_enabled,
            dram_freq_mhz=dram_freq_mhz,
            dram_model=dram_model,
        )
        system = build_system(resolved, kernel=kernel)
    horizon = duration_ps or system.config.duration_ps
    system.run(duration_ps=horizon)

    framework = system.framework
    # Exclude the cold-start transient (empty queues, priorities still at 0)
    # from the pass/fail metrics; the full trace is kept for plotting.
    warmup = min(system.config.warmup_ps, horizon // 4)
    min_npi: Dict[str, float] = {}
    mean_npi: Dict[str, float] = {}
    for core in system.cores:
        series = framework.trace.get(f"npi.core.{core}")
        if series is None or not len(series):
            min_npi[core] = 0.0
            mean_npi[core] = 0.0
            continue
        steady = series.after(warmup)
        if not len(steady):
            steady = series
        min_npi[core] = steady.minimum()
        mean_npi[core] = steady.mean()

    priority_distributions = {
        dma_name: adapter.priority_time_fractions()
        for dma_name, adapter in framework.adapters.items()
    }

    scenario_name = (
        system.scenario.name if system.scenario is not None else system.workload.case
    )
    elapsed = max(1, system.engine.now_ps)
    return ExperimentResult(
        scenario=scenario_name,
        policy=system.policy_name,
        adaptation_enabled=system.adaptation_enabled,
        duration_ps=elapsed,
        dram_freq_mhz=system.dram.config.io_freq_mhz,
        min_core_npi=min_npi,
        mean_core_npi=mean_npi,
        dram_bandwidth_bytes_per_s=system.dram.average_bandwidth_bytes_per_s(elapsed),
        dram_row_hit_rate=system.dram.row_hit_rate,
        served_transactions=system.controller.served_transactions,
        average_latency_ps=system.controller.average_latency_ps(),
        priority_distributions=priority_distributions,
        trace=framework.trace if keep_trace else None,
    )


@dataclass
class RunTimings:
    """Wall-clock phase breakdown of one experiment execution.

    ``resolve_s`` covers scenario resolution (zero when the caller hands over
    an already-resolved :class:`Scenario`, e.g. a memoized
    :meth:`repro.runner.RunSpec.resolved_scenario`), ``build_s`` the system
    construction, and ``sim_s`` the event-driven run plus metric collection.
    The sweep orchestrator sums these per-run timings into its
    :class:`~repro.runner.SweepStats` phase fields so a slow sweep can be
    attributed to the phase that actually regressed.
    """

    resolve_s: float = 0.0
    build_s: float = 0.0
    sim_s: float = 0.0


def run_experiment_timed(
    scenario: Union[str, Scenario],
    keep_trace: bool = True,
    kernel: Optional[str] = None,
) -> Tuple[ExperimentResult, RunTimings]:
    """Run one scenario-described experiment, reporting per-phase timings.

    Semantically identical to ``run_experiment(scenario=..., keep_trace=...)``
    — resolution with no overrides is a no-op and pre-building the system is
    exactly what :func:`run_experiment` does internally — but the three phases
    are timed separately.  This is the worker entry point of the sweep
    orchestrator's batched dispatch.
    """
    timings = RunTimings()
    started = time.perf_counter()
    with span("experiment.resolve"):
        resolved = resolve_scenario(scenario)
    built = time.perf_counter()
    timings.resolve_s = built - started
    with span("experiment.build", scenario=resolved.name):
        system = build_system(resolved, kernel=kernel)
    ran = time.perf_counter()
    timings.build_s = ran - built
    with span(
        "experiment.sim", scenario=resolved.name, policy=system.policy_name
    ) as sim_span:
        result = run_experiment(scenario=resolved, keep_trace=keep_trace, system=system)
        sim_span.set(
            fired_events=system.engine.fired_events, now_ps=system.engine.now_ps
        )
    timings.sim_s = time.perf_counter() - ran
    return result, timings


def compare_policies(
    policies: Sequence[str],
    scenario: Union[str, Scenario] = "case_a",
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    keep_trace: bool = True,
) -> Dict[str, ExperimentResult]:
    """Run the same scenario under several policies (Figs. 5, 6, 8, 9)."""
    results: Dict[str, ExperimentResult] = {}
    for policy in policies:
        results[policy] = run_experiment(
            scenario=scenario,
            policy=policy,
            duration_ps=duration_ps,
            traffic_scale=traffic_scale,
            config=config,
            keep_trace=keep_trace,
        )
    return results


def frequency_sweep(
    frequencies_mhz: Iterable[float],
    scenario: Union[str, Scenario] = "case_a",
    policy: Optional[str] = None,
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
) -> Dict[float, ExperimentResult]:
    """Run the same scenario at several DRAM frequencies (Fig. 7)."""
    results: Dict[float, ExperimentResult] = {}
    for freq in frequencies_mhz:
        results[freq] = run_experiment(
            scenario=scenario,
            policy=policy,
            duration_ps=duration_ps,
            traffic_scale=traffic_scale,
            config=config,
            dram_freq_mhz=freq,
            keep_trace=False,
        )
    return results


def critical_core_minimums(
    result: ExperimentResult, scenario: Union[str, Scenario, None] = None
) -> Dict[str, float]:
    """Minimum NPI restricted to the scenario's critical-core list.

    By default the scenario is resolved from the result's recorded name,
    which works for catalog (bundled or runtime-registered) scenarios; for a
    result produced from a scenario *file*, pass the :class:`Scenario`
    object (or its path) explicitly — the name alone no longer identifies it
    once only the result is held.
    """
    cores = critical_cores_for(scenario if scenario is not None else result.scenario)
    return {core: result.min_core_npi.get(core, 0.0) for core in cores if core in result.min_core_npi}
