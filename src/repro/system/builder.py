"""Assembles a full simulated MPSoC from a declarative scenario."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.framework import SaraFramework
from repro.core.npi import make_meter
from repro.core.priority import PriorityLookupTable
from repro.cores import create_core
from repro.cores.base import BatchedDma, Core, Dma
from repro.dram.cmdsim.device import CommandLevelDram
from repro.dram.device import DramDevice
from repro.memctrl.controller import BatchedMemoryController, MemoryController
from repro.memctrl.policies import make_policy
from repro.noc.network import BatchedNetwork, Network
from repro.scenario import ADDRESS_STREAMS, TRAFFIC_MODELS, Scenario, resolve_scenario
from repro.sim.config import NocConfig, SimulationConfig
from repro.sim.engine import BatchedEngine, Engine
from repro.sim.kernel import resolve_kernel
from repro.system.platform import cluster_specs_for
from repro.traffic.camcorder import CamcorderWorkload

#: Policies that carry the SARA priority adaptation end to end.
PRIORITY_POLICIES = ("priority_qos", "priority_rowbuffer")


@dataclass
class System:
    """A fully wired simulated platform, ready to run."""

    engine: Engine
    config: SimulationConfig
    workload: CamcorderWorkload
    policy_name: str
    adaptation_enabled: bool
    dram: DramDevice
    controller: MemoryController
    network: Network
    framework: SaraFramework
    scenario: Optional[Scenario] = None
    cores: Dict[str, Core] = field(default_factory=dict)
    dmas: Dict[str, Dma] = field(default_factory=dict)
    #: Which simulation kernel the system was wired with ("scalar" or
    #: "batched").  An execution detail, not part of the experiment
    #: configuration: both kernels produce bit-identical results.
    kernel: str = "scalar"

    def run(self, duration_ps: Optional[int] = None) -> None:
        """Start every DMA and the monitoring loop, then run to the horizon."""
        horizon = duration_ps or self.config.duration_ps
        self.framework.start(stop_ps=horizon)
        for dma in self.dmas.values():
            dma.start(stop_ps=horizon)
        self.engine.run(until_ps=horizon)

    def core(self, name: str) -> Core:
        try:
            return self.cores[name]
        except KeyError:
            raise KeyError(f"unknown core '{name}'") from None

    def dram_bandwidth_bytes_per_s(self) -> float:
        """Average DRAM bandwidth delivered over the simulated duration."""
        elapsed = max(1, self.engine.now_ps)
        return self.dram.average_bandwidth_bytes_per_s(elapsed)


def build_system(
    scenario: Union[str, Scenario] = "case_a",
    policy: Optional[str] = None,
    config: Optional[SimulationConfig] = None,
    workload: Optional[CamcorderWorkload] = None,
    traffic_scale: Optional[float] = None,
    adaptation_enabled: Optional[bool] = None,
    dram_freq_mhz: Optional[float] = None,
    dram_model: Optional[str] = None,
    kernel: Optional[str] = None,
) -> System:
    """Build a complete simulated MPSoC from a scenario.

    Parameters
    ----------
    scenario:
        A scenario name from the catalog (``repro scenarios list``), a path
        to a ``.json``/``.toml`` scenario file, or a :class:`Scenario`.
    policy:
        Memory-controller and NoC arbitration policy (registry name);
        defaults to the scenario's declared policy.
    config:
        Replace the scenario's simulation configuration wholesale.
    workload:
        Explicit pre-built workload; defaults to the scenario's workload,
        resolved through the workload registry.
    traffic_scale:
        Linear scale on all offered traffic (only used when ``workload`` is
        not supplied).
    adaptation_enabled:
        Force SARA adaptation on or off.  By default adaptation follows the
        scenario, falling back to "enabled exactly for the priority-based
        policies", matching the paper's setup.
    dram_freq_mhz:
        Override the DRAM I/O frequency (used by the Fig. 7 DVFS sweep).
    dram_model:
        DRAM backend: "transaction" (fast transaction-level model) or
        "command" (DRAMSim2-style command-level model with refresh).
    kernel:
        Simulation kernel: "batched" (vectorized hot paths, the default) or
        "scalar" (the reference implementation).  Defaults to the
        ``REPRO_SIM_KERNEL`` environment variable, then "batched".  Both
        kernels produce bit-identical results, so the choice is not part of
        :class:`~repro.sim.config.SimulationConfig` and does not affect
        scenario fingerprints or sweep cache keys; see ``docs/engine.md``.
    """
    if dram_model is not None and dram_model not in ("transaction", "command"):
        raise ValueError(
            f"unknown dram_model '{dram_model}' (known: transaction, command)"
        )
    spec = resolve_scenario(
        scenario,
        policy=policy,
        config=config,
        traffic_scale=traffic_scale,
        adaptation_enabled=adaptation_enabled,
        dram_freq_mhz=dram_freq_mhz,
        dram_model=dram_model,
    )
    config = spec.simulation_config()
    if workload is None:
        workload = spec.build_workload()
    policy = spec.policy
    adaptation = spec.adaptation_enabled
    if adaptation is None:
        adaptation = policy in PRIORITY_POLICIES

    kernel = resolve_kernel(kernel)
    batched = kernel == "batched"
    engine = BatchedEngine() if batched else Engine()
    if spec.platform.dram_model == "transaction":
        dram: DramDevice = DramDevice(config.dram, sim_scale=config.sim_scale)
    else:  # "command" — the platform spec already validated the name
        dram = CommandLevelDram(config.dram, sim_scale=config.sim_scale)
    # The columnar controller needs the transaction-level DRAM backend (its
    # open-row mirror assumes no refresh precharges) and the unbounded
    # scheduler window; other configs keep the scalar controller even inside
    # an otherwise batched system — results are identical either way.
    use_batched_controller = (
        batched
        and spec.platform.dram_model == "transaction"
        and config.memory_controller.scheduler_window_entries is None
    )
    controller_cls = BatchedMemoryController if use_batched_controller else MemoryController
    controller = controller_cls(
        engine, dram, make_policy(policy), config.memory_controller
    )
    noc_config = NocConfig(
        link_bytes_per_ns=config.noc.link_bytes_per_ns,
        router_latency_ns=config.noc.router_latency_ns,
        arbitration=policy,
        topology=config.noc.topology,
        mesh_columns=config.noc.mesh_columns,
    )
    network_cls = BatchedNetwork if batched else Network
    network = network_cls(
        engine,
        cluster_specs_for(
            workload,
            spec.platform.cluster_links_bytes_per_ns,
            spec.platform.default_cluster_link_bytes_per_ns,
        ),
        config=noc_config,
        root_link_bytes_per_ns=spec.platform.root_link_bytes_per_ns,
    )
    network.set_sink(controller.enqueue)
    # Back-pressure: the root router only forwards while the memory controller
    # has a free entry (Table 1: 42 entries).  The excess backlog therefore
    # waits inside the NoC routers — whose switch arbiters reorder by priority
    # — instead of piling up inside the controller and tripping the aging
    # backstop, which would collapse priority scheduling into round-robin.
    network.topology.root.set_gate(controller.has_space)
    controller.add_space_listener(network.topology.root.kick)
    framework = SaraFramework(
        engine,
        adaptation_interval_ps=config.adaptation_interval_ps,
        adaptation_enabled=adaptation,
        priority_bits=config.priority_bits,
    )

    system = System(
        engine=engine,
        config=config,
        workload=workload,
        policy_name=policy,
        adaptation_enabled=adaptation,
        dram=dram,
        controller=controller,
        network=network,
        framework=framework,
        scenario=spec,
        kernel=kernel,
    )

    for dma_spec in workload.dmas:
        if dma_spec.core not in system.cores:
            system.cores[dma_spec.core] = create_core(
                dma_spec.core, cluster=dma_spec.cluster, queue_class=dma_spec.queue_class
            )
        meter = make_meter(
            meter_type=dma_spec.meter,
            average_bytes_per_s=dma_spec.bytes_per_s,
            frame_period_ps=workload.frame_period_ps,
            target_bytes_per_s=dma_spec.target_bytes_per_s,
            latency_limit_ns=dma_spec.latency_limit_ns,
            window_ps=dma_spec.window_ps,
        )
        dma_cls = BatchedDma if batched else Dma
        dma = dma_cls(
            name=dma_spec.name,
            core=dma_spec.core,
            queue_class=dma_spec.queue_class,
            is_write=dma_spec.is_write,
            transaction_bytes=dma_spec.transaction_bytes,
            generator=TRAFFIC_MODELS.get(dma_spec.traffic)(
                dma_spec, frame_period_ps=workload.frame_period_ps, seed=config.seed
            ),
            addresses=ADDRESS_STREAMS.get(dma_spec.address_pattern)(
                dma_spec, seed=config.seed
            ),
            meter=meter,
            max_outstanding=dma_spec.max_outstanding,
        )
        dma.connect(engine, network.inject)
        controller.register_dma(dma.name, dma.on_complete)
        framework.attach(
            dma,
            table=PriorityLookupTable.for_meter_type(dma_spec.meter, config.priority_bits),
        )
        system.cores[dma_spec.core].add_dma(dma)
        system.dmas[dma.name] = dma

    return system
