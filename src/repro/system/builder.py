"""Assembles a full simulated MPSoC from a workload and a configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.framework import SaraFramework
from repro.core.priority import PriorityLookupTable
from repro.cores import create_core
from repro.cores.base import Core, Dma
from repro.dram.cmdsim.device import CommandLevelDram
from repro.dram.device import DramDevice
from repro.memctrl.controller import MemoryController
from repro.memctrl.policies import make_policy
from repro.noc.network import Network
from repro.sim.config import NocConfig, SimulationConfig
from repro.sim.engine import Engine
from repro.sim.random import derive_rng
from repro.system.platform import (
    ROOT_LINK_BYTES_PER_NS,
    cluster_specs_for,
    simulation_config_for_case,
)
from repro.traffic.addresses import (
    AddressStream,
    RandomAddressStream,
    SequentialAddressStream,
)
from repro.traffic.bursty import FrameBurstGenerator
from repro.traffic.camcorder import CamcorderWorkload, DmaSpec, camcorder_workload
from repro.traffic.constant import ConstantRateGenerator
from repro.traffic.generator import TrafficGenerator
from repro.traffic.poisson import PoissonGenerator
from repro.core.npi import make_meter

#: Policies that carry the SARA priority adaptation end to end.
PRIORITY_POLICIES = ("priority_qos", "priority_rowbuffer")

#: Constant-rate DMAs (display refill, camera drain, radio buffers) prefetch
#: slightly ahead of the externally imposed rate, as real buffer-refill
#: engines do.  Without this headroom the achieved rate can never exceed the
#: target and measurement jitter alone would report spurious QoS misses.
CONSTANT_RATE_PREFETCH = 1.05


@dataclass
class System:
    """A fully wired simulated platform, ready to run."""

    engine: Engine
    config: SimulationConfig
    workload: CamcorderWorkload
    policy_name: str
    adaptation_enabled: bool
    dram: DramDevice
    controller: MemoryController
    network: Network
    framework: SaraFramework
    cores: Dict[str, Core] = field(default_factory=dict)
    dmas: Dict[str, Dma] = field(default_factory=dict)

    def run(self, duration_ps: Optional[int] = None) -> None:
        """Start every DMA and the monitoring loop, then run to the horizon."""
        horizon = duration_ps or self.config.duration_ps
        self.framework.start(stop_ps=horizon)
        for dma in self.dmas.values():
            dma.start(stop_ps=horizon)
        self.engine.run(until_ps=horizon)

    def core(self, name: str) -> Core:
        try:
            return self.cores[name]
        except KeyError:
            raise KeyError(f"unknown core '{name}'") from None

    def dram_bandwidth_bytes_per_s(self) -> float:
        """Average DRAM bandwidth delivered over the simulated duration."""
        elapsed = max(1, self.engine.now_ps)
        return self.dram.average_bandwidth_bytes_per_s(elapsed)


def _build_generator(spec: DmaSpec, workload: CamcorderWorkload, seed: int) -> TrafficGenerator:
    if spec.traffic == "frame_burst":
        period = spec.window_ps or workload.frame_period_ps
        bytes_per_frame = max(
            spec.transaction_bytes, round(spec.bytes_per_s * period / 1e12)
        )
        # Round the burst up to a whole number of transactions so that the
        # DMA can actually reach 100 % frame progress; otherwise the trailing
        # partial transaction would leave the meter fractionally short of its
        # target at every frame boundary.
        remainder = bytes_per_frame % spec.transaction_bytes
        if remainder:
            bytes_per_frame += spec.transaction_bytes - remainder
        return FrameBurstGenerator(
            bytes_per_frame=bytes_per_frame,
            frame_period_ps=period,
            start_offset_ps=spec.start_offset_ps,
        )
    if spec.traffic == "constant":
        return ConstantRateGenerator(
            bytes_per_s=spec.bytes_per_s * CONSTANT_RATE_PREFETCH,
            chunk_bytes=spec.transaction_bytes,
            start_offset_ps=spec.start_offset_ps,
        )
    if spec.traffic == "poisson":
        return PoissonGenerator(
            rng=derive_rng(seed, f"traffic.{spec.name}"),
            bytes_per_s=spec.bytes_per_s,
            chunk_bytes=spec.transaction_bytes,
            start_offset_ps=spec.start_offset_ps,
        )
    raise ValueError(f"unknown traffic class '{spec.traffic}'")


def _build_addresses(spec: DmaSpec, seed: int) -> AddressStream:
    if spec.address_pattern == "sequential":
        return SequentialAddressStream(base=spec.region_base, region_bytes=spec.region_bytes)
    if spec.address_pattern == "random":
        return RandomAddressStream(
            rng=derive_rng(seed, f"addresses.{spec.name}"),
            base=spec.region_base,
            region_bytes=spec.region_bytes,
            align_bytes=spec.transaction_bytes,
        )
    raise ValueError(f"unknown address pattern '{spec.address_pattern}'")


def build_system(
    case: str = "A",
    policy: str = "priority_qos",
    config: Optional[SimulationConfig] = None,
    workload: Optional[CamcorderWorkload] = None,
    traffic_scale: float = 1.0,
    adaptation_enabled: Optional[bool] = None,
    dram_freq_mhz: Optional[float] = None,
    dram_model: str = "transaction",
) -> System:
    """Build a complete simulated MPSoC.

    Parameters
    ----------
    case:
        Camcorder test case, "A" (all cores) or "B" (Table 1's reduced set).
    policy:
        Memory-controller and NoC arbitration policy (registry name).
    config:
        Simulation configuration; defaults to the Table-1 settings of the case.
    workload:
        Explicit workload; defaults to the camcorder workload of the case.
    traffic_scale:
        Linear scale on all offered traffic (only used when ``workload`` is
        not supplied).
    adaptation_enabled:
        Force SARA adaptation on or off.  By default adaptation is enabled
        exactly for the priority-based policies, matching the paper's setup.
    dram_freq_mhz:
        Override the DRAM I/O frequency (used by the Fig. 7 DVFS sweep).
    dram_model:
        DRAM backend: "transaction" (default, fast transaction-level model)
        or "command" (DRAMSim2-style command-level model with refresh).
    """
    if config is None:
        config = simulation_config_for_case(case)
    if workload is None:
        workload = camcorder_workload(case=case, traffic_scale=traffic_scale)
    if adaptation_enabled is None:
        adaptation_enabled = policy in PRIORITY_POLICIES
    if dram_freq_mhz is not None:
        config = config.with_overrides(dram=config.dram.with_frequency(dram_freq_mhz))

    engine = Engine()
    if dram_model == "transaction":
        dram = DramDevice(config.dram, sim_scale=config.sim_scale)
    elif dram_model == "command":
        dram = CommandLevelDram(config.dram, sim_scale=config.sim_scale)
    else:
        raise ValueError(
            f"unknown dram_model '{dram_model}' (known: transaction, command)"
        )
    controller = MemoryController(
        engine, dram, make_policy(policy), config.memory_controller
    )
    noc_config = NocConfig(
        link_bytes_per_ns=config.noc.link_bytes_per_ns,
        router_latency_ns=config.noc.router_latency_ns,
        arbitration=policy,
        topology=config.noc.topology,
        mesh_columns=config.noc.mesh_columns,
    )
    network = Network(
        engine,
        cluster_specs_for(workload),
        config=noc_config,
        root_link_bytes_per_ns=ROOT_LINK_BYTES_PER_NS,
    )
    network.set_sink(controller.enqueue)
    # Back-pressure: the root router only forwards while the memory controller
    # has a free entry (Table 1: 42 entries).  The excess backlog therefore
    # waits inside the NoC routers — whose switch arbiters reorder by priority
    # — instead of piling up inside the controller and tripping the aging
    # backstop, which would collapse priority scheduling into round-robin.
    network.topology.root.set_gate(controller.has_space)
    controller.add_space_listener(network.topology.root.kick)
    framework = SaraFramework(
        engine,
        adaptation_interval_ps=config.adaptation_interval_ps,
        adaptation_enabled=adaptation_enabled,
        priority_bits=config.priority_bits,
    )

    system = System(
        engine=engine,
        config=config,
        workload=workload,
        policy_name=policy,
        adaptation_enabled=adaptation_enabled,
        dram=dram,
        controller=controller,
        network=network,
        framework=framework,
    )

    for spec in workload.dmas:
        if spec.core not in system.cores:
            system.cores[spec.core] = create_core(
                spec.core, cluster=spec.cluster, queue_class=spec.queue_class
            )
        meter = make_meter(
            meter_type=spec.meter,
            average_bytes_per_s=spec.bytes_per_s,
            frame_period_ps=workload.frame_period_ps,
            target_bytes_per_s=spec.target_bytes_per_s,
            latency_limit_ns=spec.latency_limit_ns,
            window_ps=spec.window_ps,
        )
        dma = Dma(
            name=spec.name,
            core=spec.core,
            queue_class=spec.queue_class,
            is_write=spec.is_write,
            transaction_bytes=spec.transaction_bytes,
            generator=_build_generator(spec, workload, config.seed),
            addresses=_build_addresses(spec, config.seed),
            meter=meter,
            max_outstanding=spec.max_outstanding,
        )
        dma.connect(engine, network.inject)
        controller.register_dma(dma.name, dma.on_complete)
        framework.attach(
            dma,
            table=PriorityLookupTable.for_meter_type(spec.meter, config.priority_bits),
        )
        system.cores[spec.core].add_dma(dma)
        system.dmas[dma.name] = dma

    return system
