"""System assembly: platform presets, the system builder and experiment runner."""

from repro.system.builder import System, build_system
from repro.system.experiment import (
    ExperimentResult,
    compare_policies,
    frequency_sweep,
    run_experiment,
)
from repro.system.platform import (
    CASE_A_CRITICAL_CORES,
    CASE_B_CRITICAL_CORES,
    cluster_specs_for,
    simulation_config_for_case,
    table1_settings,
    table2_core_types,
)

__all__ = [
    "CASE_A_CRITICAL_CORES",
    "CASE_B_CRITICAL_CORES",
    "ExperimentResult",
    "System",
    "build_system",
    "cluster_specs_for",
    "compare_policies",
    "frequency_sweep",
    "run_experiment",
    "simulation_config_for_case",
    "table1_settings",
    "table2_core_types",
]
