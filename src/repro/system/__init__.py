"""System assembly: the scenario-driven system builder and experiment runner."""

from repro.system.builder import System, build_system
from repro.system.experiment import (
    ExperimentResult,
    RunTimings,
    compare_policies,
    frequency_sweep,
    run_experiment,
    run_experiment_timed,
)
from repro.system.platform import (
    cluster_specs_for,
    table1_settings,
    table2_core_types,
)

__all__ = [
    "ExperimentResult",
    "RunTimings",
    "System",
    "build_system",
    "cluster_specs_for",
    "compare_policies",
    "frequency_sweep",
    "run_experiment",
    "run_experiment_timed",
    "table1_settings",
    "table2_core_types",
]
