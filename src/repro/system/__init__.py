"""System assembly: the scenario-driven system builder and experiment runner."""

from repro.system.builder import System, build_system
from repro.system.experiment import (
    ExperimentResult,
    compare_policies,
    frequency_sweep,
    run_experiment,
)
from repro.system.platform import (
    cluster_specs_for,
    table1_settings,
    table2_core_types,
)

__all__ = [
    "ExperimentResult",
    "System",
    "build_system",
    "cluster_specs_for",
    "compare_policies",
    "frequency_sweep",
    "run_experiment",
    "table1_settings",
    "table2_core_types",
]
