"""Platform presets: Tables 1 and 2 of the paper as code.

This module turns the paper's simulation settings into ready-to-use
configuration objects: the per-test-case DRAM frequency, the memory-controller
organisation, the NoC cluster layout of Fig. 1, and the Table-2 summary of
which core carries which type of QoS target.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cores import CORE_CLASSES
from repro.noc.topology import ClusterSpec
from repro.sim.config import DramConfig, MemoryControllerConfig, SimulationConfig
from repro.traffic.camcorder import CamcorderWorkload

#: DRAM I/O frequency per test case (Table 1).
CASE_DRAM_FREQ_MHZ: Dict[str, float] = {"A": 1866.0, "B": 1700.0}

#: The "critical cores" whose NPI the paper plots in Fig. 5 (test case A).
CASE_A_CRITICAL_CORES: Tuple[str, ...] = (
    "image_processor",
    "rotator",
    "video_codec",
    "display",
    "camera",
    "usb",
    "gps",
    "wifi",
)

#: The critical cores plotted in Fig. 6 (test case B).
CASE_B_CRITICAL_CORES: Tuple[str, ...] = (
    "image_processor",
    "video_codec",
    "display",
    "usb",
    "dsp",
    "wifi",
)

#: Cluster link bandwidths in bytes per nanosecond.  The media and compute
#: clusters are wide enough that DRAM is their bottleneck; the system cluster
#: link is narrow, so system cores also interfere with each other inside the
#: interconnect (the USB-vs-GPS effect of Fig. 5(a)).
CLUSTER_LINK_BYTES_PER_NS: Dict[str, float] = {
    "media": 16.0,
    "compute": 16.0,
    "system": 2.0,
}

#: Root link from the NoC to the memory controller (not the global bottleneck).
ROOT_LINK_BYTES_PER_NS = 32.0


def table1_settings(case: str = "A") -> Dict[str, object]:
    """The Table-1 simulation settings for a test case, as plain values."""
    case = case.upper()
    if case not in CASE_DRAM_FREQ_MHZ:
        raise ValueError(f"unknown test case '{case}' (expected 'A' or 'B')")
    dram = DramConfig()
    controller = MemoryControllerConfig()
    return {
        "case": case,
        "dram_io_freq_mhz": CASE_DRAM_FREQ_MHZ[case],
        "memory_controller_total_entries": controller.total_entries,
        "memory_controller_transaction_queues": controller.transaction_queues,
        "dram_capacity_bytes": dram.capacity_bytes,
        "dram_channels": dram.channels,
        "dram_ranks_per_channel": dram.ranks_per_channel,
        "dram_banks_per_rank": dram.banks_per_rank,
        "timing_cl_trcd_trp": (dram.timing.cl, dram.timing.t_rcd, dram.timing.t_rp),
        "timing_twtr_trtp_twr": (
            dram.timing.t_wtr,
            dram.timing.t_rtp,
            dram.timing.t_wr,
        ),
        "timing_trrd_tfaw": (dram.timing.t_rrd, dram.timing.t_faw),
    }


def table2_core_types() -> Dict[str, str]:
    """Core name -> type of target performance (Table 2, plus the CPU)."""
    return {
        name: core_cls.performance_type for name, core_cls in sorted(CORE_CLASSES.items())
    }


def simulation_config_for_case(
    case: str = "A",
    sim_scale: float = 1.0,
    seed: int = 2018,
    duration_ps: int = 33_000_000_000,
    priority_bits: int = 3,
) -> SimulationConfig:
    """A :class:`SimulationConfig` with the Table-1 DRAM frequency of a case."""
    case = case.upper()
    if case not in CASE_DRAM_FREQ_MHZ:
        raise ValueError(f"unknown test case '{case}' (expected 'A' or 'B')")
    dram = DramConfig(io_freq_mhz=CASE_DRAM_FREQ_MHZ[case])
    return SimulationConfig(
        duration_ps=duration_ps,
        seed=seed,
        sim_scale=sim_scale,
        priority_bits=priority_bits,
        dram=dram,
    )


def cluster_specs_for(workload: CamcorderWorkload) -> List[ClusterSpec]:
    """Build the Fig. 1 cluster layout for the active cores of a workload."""
    members: Dict[str, List[str]] = {}
    for spec in workload.dmas:
        members.setdefault(spec.cluster, [])
        if spec.core not in members[spec.cluster]:
            members[spec.cluster].append(spec.core)
    specs: List[ClusterSpec] = []
    for cluster, cores in sorted(members.items()):
        bandwidth = CLUSTER_LINK_BYTES_PER_NS.get(cluster, 8.0)
        specs.append(
            ClusterSpec(name=cluster, link_bytes_per_ns=bandwidth, members=tuple(cores))
        )
    return specs


def critical_cores_for(case: str) -> Tuple[str, ...]:
    """The cores whose NPI the corresponding paper figure plots."""
    case = case.upper()
    if case == "A":
        return CASE_A_CRITICAL_CORES
    if case == "B":
        return CASE_B_CRITICAL_CORES
    raise ValueError(f"unknown test case '{case}' (expected 'A' or 'B')")
