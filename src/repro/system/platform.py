"""Platform helpers on top of the declarative scenario catalog.

The hand-wired per-case constants this module used to carry (DRAM frequency
per test case, critical-core lists, cluster link widths) now live as data in
the bundled scenario files (``repro/scenario/data/*.json``); what remains
here are the Table-1/Table-2 report helpers and the cluster-layout builder
the system builder uses to turn a workload plus a platform spec into the
Fig. 1 router tree.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.cores import CORE_CLASSES
from repro.noc.topology import ClusterSpec
from repro.scenario import get_scenario


def table1_settings(scenario: str = "case_a") -> Dict[str, object]:
    """The Table-1 simulation settings of a scenario, as plain values."""
    spec = get_scenario(_normalise_case(scenario))
    dram = spec.simulation_config().dram
    controller = spec.simulation_config().memory_controller
    return {
        "scenario": spec.name,
        "dram_io_freq_mhz": dram.io_freq_mhz,
        "memory_controller_total_entries": controller.total_entries,
        "memory_controller_transaction_queues": controller.transaction_queues,
        "dram_capacity_bytes": dram.capacity_bytes,
        "dram_channels": dram.channels,
        "dram_ranks_per_channel": dram.ranks_per_channel,
        "dram_banks_per_rank": dram.banks_per_rank,
        "timing_cl_trcd_trp": (dram.timing.cl, dram.timing.t_rcd, dram.timing.t_rp),
        "timing_twtr_trtp_twr": (
            dram.timing.t_wtr,
            dram.timing.t_rtp,
            dram.timing.t_wr,
        ),
        "timing_trrd_tfaw": (dram.timing.t_rrd, dram.timing.t_faw),
    }


def table2_core_types() -> Dict[str, str]:
    """Core name -> type of target performance (Table 2, plus the CPU)."""
    return {
        name: core_cls.performance_type for name, core_cls in sorted(CORE_CLASSES.items())
    }


def _normalise_case(scenario: str) -> str:
    """Accept the paper's bare case letters ("A"/"B") for the two paper scenarios."""
    if isinstance(scenario, str) and scenario.upper() in ("A", "B"):
        return f"case_{scenario.lower()}"
    return scenario


def cluster_specs_for(
    workload,
    cluster_links_bytes_per_ns: Optional[Mapping[str, float]] = None,
    default_link_bytes_per_ns: float = 8.0,
) -> List[ClusterSpec]:
    """Build the Fig. 1 cluster layout for the active cores of a workload.

    Link widths come from the scenario's platform spec; the defaults are the
    paper's (wide media/compute clusters, a narrow system cluster whose cores
    interfere with each other inside the interconnect — the USB-vs-GPS effect
    of Fig. 5(a)).
    """
    links = dict(
        cluster_links_bytes_per_ns
        if cluster_links_bytes_per_ns is not None
        else {"media": 16.0, "compute": 16.0, "system": 2.0}
    )
    members: Dict[str, List[str]] = {}
    for spec in workload.dmas:
        members.setdefault(spec.cluster, [])
        if spec.core not in members[spec.cluster]:
            members[spec.cluster].append(spec.core)
    specs: List[ClusterSpec] = []
    for cluster, cores in sorted(members.items()):
        bandwidth = links.get(cluster, default_link_bytes_per_ns)
        specs.append(
            ClusterSpec(name=cluster, link_bytes_per_ns=bandwidth, members=tuple(cores))
        )
    return specs
