"""The content-addressed results store: manifests plus artifact blobs.

A store directory has three parts::

    store/
      manifests/<fingerprint>.json     one Manifest per recorded run
      artifacts/<aa>/<digest>.<ext>    content-addressed rendered artifacts
      index/                           the store-wide point index (derived;
                                       see :mod:`repro.store.index`)

Artifacts are addressed by the SHA-256 of their bytes, so identical
renderings dedup to one blob, a reference can always be re-verified against
its content (``repro store verify``), and blobs nothing references anymore
can be swept (``repro store gc``).  Manifests are keyed by the run
fingerprint — a hash of the spec's *dictionary form* plus the effective
overrides — which is what lets ``repro campaign report`` find and serve a
recorded run without resolving a single :class:`~repro.runner.RunSpec`.
The point index inverts the manifests — cache key → recorded point, memo
key → cache key — and is maintained on every :meth:`~ResultsStore.
put_manifest` / :meth:`~ResultsStore.delete_manifest`, rebuilt on demand by
``repro store index``, and cross-checked by ``repro store verify``; it is
what lets a later overlapping campaign reuse recorded points in O(1)
instead of scanning every manifest.

Writes follow the result cache's crash-safety idiom: temporary file plus
atomic rename, so a concurrent reader (or an interrupted run) never sees a
half-written manifest or blob.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.campaign.report import (
    DEFAULT_COLUMNS,
    Point,
    campaign_report_md,
    campaign_report_payload,
    points_csv,
    points_payload,
    subgrid_report_md,
    subgrid_report_payload,
)
from repro.store.index import PointIndex, StoreMemo, encode_point_result
from repro.store.manifest import (
    AmbiguousFingerprintError,
    ArtifactRef,
    CheckRecord,
    Manifest,
    PointRecord,
    Provenance,
    StoreError,
    SubGridEntry,
    content_digest,
)
from repro.store.narrative import narrative_md

if TYPE_CHECKING:  # pragma: no cover - type-only import (no runtime cycle)
    from repro.campaign.scheduler import CampaignResult
    from repro.runner.cache import ResultCache

PathLike = Union[str, Path]

#: Media types for the artifact extensions the store records.  Shared by the
#: HTTP results service (``repro serve``) and anything else that hands a
#: rendered blob to a browser or CDN.
CONTENT_TYPES = {
    "md": "text/markdown; charset=utf-8",
    "json": "application/json; charset=utf-8",
    "jsonl": "application/x-ndjson",
    "csv": "text/csv; charset=utf-8",
    "txt": "text/plain; charset=utf-8",
    "html": "text/html; charset=utf-8",
}


def content_type_for(ext: str) -> str:
    """The ``Content-Type`` to serve an artifact extension under."""
    return CONTENT_TYPES.get(ext.lower(), "application/octet-stream")


def is_content_digest(value: str) -> bool:
    """True when ``value`` is a full 64-hex-digit SHA-256 content address."""
    if len(value) != 64:
        return False
    try:
        int(value, 16)
        return True
    except ValueError:
        return False


@dataclass(frozen=True)
class GridSection:
    """One axis set of a ``repro grid`` run, ready to record.

    The CLI gathers these while rendering live output; the store turns each
    into a :class:`SubGridEntry` so grid runs and campaign runs share one
    manifest shape (a grid is a campaign with one anonymous sub-grid per
    axis set).
    """

    label: str
    scenario_name: str
    critical_cores: Tuple[str, ...]
    points: Tuple[Point, ...]
    cache_keys: Tuple[str, ...]
    rendered_md: str


def _atomic_write(path: Path, content: bytes) -> None:
    """Write ``content`` to ``path`` via a temp file and atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(content)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultsStore:
    """A directory of manifests and content-addressed rendered artifacts."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self._point_index: Optional[PointIndex] = None

    @property
    def manifest_dir(self) -> Path:
        return self.directory / "manifests"

    @property
    def artifact_dir(self) -> Path:
        return self.directory / "artifacts"

    @property
    def index_dir(self) -> Path:
        return self.directory / "index"

    @property
    def point_index(self) -> PointIndex:
        """The store's point index (one instance: shard reads are memoized)."""
        if self._point_index is None:
            self._point_index = PointIndex(self.index_dir)
        return self._point_index

    def memo(self) -> StoreMemo:
        """The runner-facing reuse view: ``memo.get(spec)`` → recorded result."""
        return StoreMemo(self)

    def rebuild_index(self) -> Tuple[int, int]:
        """Reconstruct the point index from the manifests (``store index``).

        Returns ``(points, spec mappings)`` indexed.  Oldest manifest first,
        so re-recorded cache keys land on their newest recording — the same
        state incremental maintenance reaches.
        """
        return self.point_index.rebuild(list(reversed(self.manifests())))

    # ------------------------------------------------------------------ #
    # Artifact blobs
    # ------------------------------------------------------------------ #
    def artifact_path(self, ref: ArtifactRef) -> Path:
        """Location of a reference's blob (whether or not it exists)."""
        return self.artifact_dir / ref.digest[:2] / f"{ref.digest}.{ref.ext}"

    def put_artifact(self, content: str, ext: str) -> ArtifactRef:
        """Store one rendered artifact; identical content dedups to one blob."""
        raw = content.encode("utf-8")
        ref = ArtifactRef(digest=content_digest(raw), ext=ext, size=len(raw))
        path = self.artifact_path(ref)
        if not path.is_file():
            with obs.span("store.put_artifact", ext=ext, size=len(raw)):
                _atomic_write(path, raw)
        return ref

    def read_artifact_bytes(self, ref: ArtifactRef) -> bytes:
        """Load a blob's raw bytes, re-verifying its content address.

        Raises :class:`StoreError` when the blob is missing or its bytes no
        longer hash to the reference — serving paths treat that as a miss
        (the CLI falls back to live rendering, the HTTP service answers 404
        with a ``store verify`` hint), so a tampered artifact can never be
        served as if it were the recorded one.
        """
        path = self.artifact_path(ref)
        try:
            raw = path.read_bytes()
        except OSError:
            raise StoreError(f"artifact {ref.digest[:12]}… missing from {path}") from None
        if content_digest(raw) != ref.digest:
            raise StoreError(
                f"artifact {ref.digest[:12]}… content does not match its address "
                f"(tampered or corrupt: {path})"
            )
        return raw

    def read_artifact(self, ref: ArtifactRef) -> str:
        """:meth:`read_artifact_bytes` decoded as UTF-8 (rendered text)."""
        return self.read_artifact_bytes(ref).decode("utf-8")

    def find_artifact(self, digest: str) -> Optional[ArtifactRef]:
        """Resolve a bare content digest to a reference, or ``None``.

        The HTTP service's ``/artifacts/<sha256>`` route knows only the
        digest; the extension (and therefore the content type) comes from
        the blob's on-disk name.  Returns ``None`` for malformed digests
        and unknown blobs alike — both are a 404, not an error.
        """
        if not is_content_digest(digest):
            return None
        for path in sorted((self.artifact_dir / digest[:2]).glob(f"{digest}.*")):
            ext = path.name.partition(".")[2]
            if ext and "." not in ext:
                return ArtifactRef(digest=digest, ext=ext, size=path.stat().st_size)
        return None

    # ------------------------------------------------------------------ #
    # Manifests
    # ------------------------------------------------------------------ #
    def manifest_path(self, fingerprint: str) -> Path:
        return self.manifest_dir / f"{fingerprint}.json"

    def put_manifest(self, manifest: Manifest) -> Path:
        path = self.manifest_path(manifest.fingerprint)
        with obs.span("store.put_manifest", fingerprint=manifest.fingerprint[:12]):
            _atomic_write(path, (manifest.to_json() + "\n").encode("utf-8"))
            # Keep the point index current on every recording — this is the
            # single choke point all recording paths go through.
            self.point_index.record_manifest(manifest)
        return path

    def get_manifest(self, fingerprint: str) -> Optional[Manifest]:
        """Load the manifest recorded under a fingerprint, or ``None``.

        Unreadable or schema-invalid manifests are misses, not errors: the
        caller's fallback is a live render, which will re-record a good one.
        """
        path = self.manifest_path(fingerprint)
        try:
            data = json.loads(path.read_text())
            return Manifest.from_dict(data)
        except (OSError, ValueError):
            return None

    def manifests(self) -> List[Manifest]:
        """Every readable manifest, newest ``created_at`` first."""
        loaded = []
        if self.manifest_dir.is_dir():
            for path in sorted(self.manifest_dir.glob("*.json")):
                manifest = self.get_manifest(path.stem)
                if manifest is not None:
                    loaded.append(manifest)
        loaded.sort(key=lambda m: (m.provenance.created_at, m.fingerprint), reverse=True)
        return loaded

    def find_manifest(self, prefix: str) -> Manifest:
        """Resolve a (possibly abbreviated) fingerprint to its manifest."""
        matches = []
        if self.manifest_dir.is_dir():
            matches = sorted(
                path.stem
                for path in self.manifest_dir.glob("*.json")
                if path.stem.startswith(prefix)
            )
        if not matches:
            raise StoreError(f"no manifest matches '{prefix}' in {self.manifest_dir}")
        if len(matches) > 1:
            raise AmbiguousFingerprintError(prefix, matches)
        manifest = self.get_manifest(matches[0])
        if manifest is None:
            raise StoreError(f"manifest {matches[0][:12]}… exists but is unreadable")
        return manifest

    def delete_manifest(self, fingerprint: str) -> bool:
        # Load before unlinking so the index entries the manifest contributed
        # can be dropped too; a manifest removed behind the store's back
        # leaves stale entries, which lookups treat as misses and
        # ``store index`` / ``store verify`` heal and flag respectively.
        manifest = self.get_manifest(fingerprint)
        try:
            self.manifest_path(fingerprint).unlink()
        except OSError:
            return False
        if manifest is not None:
            self.point_index.remove_manifest(manifest)
        return True

    # ------------------------------------------------------------------ #
    # Partial journal (crash-resumable campaigns)
    # ------------------------------------------------------------------ #
    @property
    def partial_dir(self) -> Path:
        return self.directory / "partials"

    def partial_path(self, fingerprint: str) -> Path:
        return self.partial_dir / f"{fingerprint}.json"

    def record_partial(self, fingerprint: str, **payload: Any) -> Path:
        """Journal an in-flight run's progress under its fingerprint.

        The scheduler writes this from its landing observer — one small
        atomic JSON per landed point — so a SIGKILLed campaign leaves
        behind exactly how far it got and which cache directory holds the
        results.  ``campaign run --resume`` reads it to report progress;
        the actual resume substrate is the result cache itself.  A
        successful :meth:`record_campaign` is followed by
        :meth:`clear_partial`, so a lingering journal *means* "crashed
        mid-run".
        """
        obs.instant("store.record_partial", fingerprint=fingerprint[:12])
        path = self.partial_path(fingerprint)
        data = {"fingerprint": fingerprint, **payload}
        _atomic_write(path, (json.dumps(data, indent=2) + "\n").encode("utf-8"))
        return path

    def partial(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The crashed-run journal for a fingerprint, or ``None``."""
        try:
            data = json.loads(self.partial_path(fingerprint).read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def clear_partial(self, fingerprint: str) -> bool:
        try:
            self.partial_path(fingerprint).unlink()
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_campaign(
        self,
        outcome: "CampaignResult",
        fingerprint: str,
        provenance: Provenance,
        extra_stats: Optional[Dict[str, Any]] = None,
    ) -> Manifest:
        """Render and persist everything one campaign run produced.

        Called once, at run time, by the scheduler's store hook: every
        per-figure table (markdown, CSV, JSON), the full campaign report in
        both formats, and the generated narrative are rendered *now* —
        while the results are in memory — and every later ``campaign
        report`` against the same fingerprint is a pure read.

        ``extra_stats`` is merged over the sweep's own telemetry payload in
        the manifest's free-form ``stats`` field — how a traced run attaches
        its trace-artifact references without any schema change or report
        perturbation.
        """
        entries = []
        for subgrid in outcome.subgrids():
            name = subgrid.name
            scenario = outcome.scenarios[name]
            points = outcome.points[name]
            checks = outcome.checks(name)
            quarantined = outcome.quarantined.get(name, ())
            columns = list(subgrid.columns) or list(DEFAULT_COLUMNS)
            cores = list(scenario.critical_cores)
            results = {label: result for _, label, result in points}
            payload = subgrid_report_payload(
                subgrid, scenario, points, checks=checks, quarantined=quarantined
            )
            artifacts = {
                "md": self.put_artifact(
                    subgrid_report_md(
                        subgrid,
                        scenario,
                        points,
                        checks=checks,
                        quarantined=quarantined,
                    ),
                    "md",
                ),
                "csv": self.put_artifact(points_csv(results, columns, cores), "csv"),
                "json": self.put_artifact(json.dumps(payload, indent=2), "json"),
            }
            keys = outcome.cache_keys.get(name, ())
            if len(keys) != len(points):
                # zip() would silently truncate and record a manifest whose
                # verify cross-check has nothing to check — refuse instead.
                raise StoreError(
                    f"sub-grid '{name}': {len(points)} point(s) but "
                    f"{len(keys)} cache key(s); record_campaign needs an "
                    "outcome produced by CampaignScheduler.run"
                )
            memo_keys = list(getattr(outcome, "memo_keys", {}).get(name, ()))
            if not memo_keys:
                # An outcome without memo keys (hand-built in tests, older
                # callers) still records a valid manifest — its points are
                # just not reusable through the spec index.
                memo_keys = [""] * len(points)
            elif len(memo_keys) != len(points):
                raise StoreError(
                    f"sub-grid '{name}': {len(points)} point(s) but "
                    f"{len(memo_keys)} memo key(s); record_campaign needs an "
                    "outcome produced by CampaignScheduler.run"
                )
            # Measured points first (declared order), then the quarantined
            # holes (also declared order) — deterministic, and a reader
            # scanning for results never trips over a hole mid-table.
            # Each measured point's full result is serialized to its own
            # content-addressed blob: canonical bytes, so a reused point
            # re-records the *same* blob and the dedup is free.  That blob
            # plus the memo key is what makes this manifest a memo-table
            # entry for every later overlapping campaign.
            records = [
                PointRecord(
                    settings=settings,
                    label=label,
                    cache_key=key,
                    memo_key=memo_key,
                    result=self.put_artifact(
                        encode_point_result(result, include_trace=subgrid.keep_trace),
                        "json",
                    ),
                )
                for (settings, label, result), key, memo_key in zip(
                    points, keys, memo_keys
                )
            ]
            records.extend(
                PointRecord(
                    settings=entry.settings,
                    label=entry.label,
                    cache_key=entry.cache_key,
                    status="quarantined",
                    error=f"{entry.error} ({entry.attempts} attempt(s))",
                    memo_key=entry.memo_key,
                )
                for entry in quarantined
            )
            entries.append(
                SubGridEntry(
                    name=name,
                    scenario=scenario.name,
                    title=subgrid.title,
                    critical_cores=tuple(cores),
                    points=tuple(records),
                    rows=tuple(payload["rows"]),
                    claims=tuple(subgrid.claims),
                    checks=tuple(
                        CheckRecord(
                            kind=kind,
                            experiment=check.experiment,
                            description=check.description,
                            passed=check.passed,
                            detail=check.detail,
                        )
                        for kind, check in checks
                    ),
                    artifacts=artifacts,
                )
            )
        artifacts = {
            "report_md": self.put_artifact(campaign_report_md(outcome), "md"),
            "report_json": self.put_artifact(
                json.dumps(campaign_report_payload(outcome), indent=2), "json"
            ),
        }
        manifest = Manifest(
            fingerprint=fingerprint,
            provenance=provenance,
            subgrids=tuple(entries),
            artifacts=artifacts,
            stats={**_stats_payload(outcome.stats), **(extra_stats or {})},
        )
        # The narrative renders *from* the manifest (it quotes the recorded
        # rows and check outcomes), so it is attached in a second step.
        narrative_ref = self.put_artifact(narrative_md(manifest), "md")
        manifest = replace(
            manifest, artifacts={**artifacts, "narrative_md": narrative_ref}
        )
        self.put_manifest(manifest)
        return manifest

    def record_grid(
        self,
        sections: Sequence[GridSection],
        fingerprint: str,
        provenance: Provenance,
        report_md: str,
        report_json: str,
    ) -> Manifest:
        """Persist one ``repro grid`` run: one entry per axis set.

        ``report_md``/``report_json`` are the command's full rendered output
        for each format — the bytes a warm ``repro grid --store-dir`` serves
        back without expanding or resolving the grid again.
        """
        entries = []
        for section in sections:
            results = {label: result for _, label, result in section.points}
            cores = list(section.critical_cores)
            payload_rows = points_payload(results, DEFAULT_COLUMNS, cores)
            artifacts = {
                "md": self.put_artifact(section.rendered_md, "md"),
                "csv": self.put_artifact(
                    points_csv(results, DEFAULT_COLUMNS, cores), "csv"
                ),
                "json": self.put_artifact(json.dumps(payload_rows, indent=2), "json"),
            }
            entries.append(
                SubGridEntry(
                    name=section.label,
                    scenario=section.scenario_name,
                    title=section.label,
                    critical_cores=tuple(cores),
                    points=tuple(
                        PointRecord(settings=settings, label=label, cache_key=key)
                        for (settings, label, _), key in zip(
                            section.points, section.cache_keys
                        )
                    ),
                    rows=tuple(payload_rows),
                    artifacts=artifacts,
                )
            )
        manifest = Manifest(
            fingerprint=fingerprint,
            provenance=provenance,
            subgrids=tuple(entries),
            artifacts={
                "report_md": self.put_artifact(report_md, "md"),
                "report_json": self.put_artifact(report_json, "json"),
            },
        )
        self.put_manifest(manifest)
        return manifest

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(self, fingerprint: str, artifact: str) -> Optional[str]:
        """The store-backed fast path: a recorded artifact, or ``None``.

        ``None`` — manifest missing, artifact not recorded, blob missing or
        tampered — means "render live"; the fast path never degrades the
        report, it only skips work when a verified recording exists.
        """
        manifest = self.get_manifest(fingerprint)
        if manifest is None:
            return None
        ref = manifest.artifacts.get(artifact)
        if ref is None:
            return None
        try:
            return self.read_artifact(ref)
        except StoreError:
            return None

    # ------------------------------------------------------------------ #
    # Maintenance: verify and gc
    # ------------------------------------------------------------------ #
    def verify(self, cache: Optional["ResultCache"] = None) -> List[str]:
        """Check every manifest's references; returns problem descriptions.

        Each artifact blob is re-hashed against its content address (so
        tampering and truncation are caught), missing blobs and unreadable
        manifests are reported, and — when a result cache is handed in —
        every recorded cache key is checked to still be present, so a
        manifest whose underlying results were evicted is flagged before
        someone trusts its numbers.  The point index is cross-checked in
        both directions: every recorded point must be findable through the
        index, and every index entry (and spec mapping) must still be
        vouched for by a manifest on disk.
        """
        problems: List[str] = []
        # One directory listing up front beats one stat per recorded key
        # when many manifests share a cache.
        present = set(cache.keys()) if cache is not None else set()
        manifests: List[Manifest] = []
        if self.manifest_dir.is_dir():
            for path in sorted(self.manifest_dir.glob("*.json")):
                try:
                    manifest = Manifest.from_dict(json.loads(path.read_text()))
                except (OSError, ValueError) as exc:
                    problems.append(f"manifest {path.name}: unreadable ({exc})")
                    continue
                manifests.append(manifest)
                if manifest.fingerprint != path.stem:
                    problems.append(
                        f"manifest {path.name}: declares fingerprint "
                        f"{manifest.fingerprint[:12]}… (file name disagrees)"
                    )
                short = manifest.fingerprint[:12]
                for name, ref in manifest.artifact_refs().items():
                    try:
                        self.read_artifact(ref)
                    except StoreError as exc:
                        problems.append(f"manifest {short}… artifact {name}: {exc}")
                if cache is not None:
                    missing = [key for key in manifest.cache_keys() if key not in present]
                    if missing:
                        problems.append(
                            f"manifest {short}…: {len(missing)} recorded cache "
                            f"key(s) missing from {cache.directory} "
                            f"(first: {missing[0][:12]}…)"
                        )
        problems.extend(self._verify_index(manifests))
        return problems

    def _verify_index(self, manifests: List[Manifest]) -> List[str]:
        """The point-index half of :meth:`verify` (both directions)."""
        problems: List[str] = []
        index = self.point_index
        if not index.exists:
            # An index-less store is only a problem once there is something
            # to index; a stale index with *zero* manifests still gets the
            # cross-checks below (every entry is dangling).
            if manifests:
                problems.append(
                    f"store has no point index for {len(manifests)} manifest(s) "
                    "(rebuild with `repro store index`)"
                )
            return problems
        keys_by_fingerprint = {
            manifest.fingerprint: {
                point.cache_key for entry in manifest.subgrids for point in entry.points
            }
            for manifest in manifests
        }
        for manifest in manifests:
            unindexed = [
                point.cache_key
                for entry in manifest.subgrids
                for point in entry.points
                if index.get(point.cache_key) is None
            ]
            if unindexed:
                problems.append(
                    f"manifest {manifest.fingerprint[:12]}…: {len(unindexed)} "
                    f"point(s) missing from the index (first: "
                    f"{unindexed[0][:12]}…; rebuild with `repro store index`)"
                )
        for entry in index.entries():
            recorded = keys_by_fingerprint.get(entry.fingerprint)
            if recorded is None:
                problems.append(
                    f"index: point {entry.cache_key[:12]}… references deleted "
                    f"manifest {entry.fingerprint[:12]}… (stale; rebuild with "
                    "`repro store index`)"
                )
            elif entry.cache_key not in recorded:
                problems.append(
                    f"index: point {entry.cache_key[:12]}… is not recorded by "
                    f"manifest {entry.fingerprint[:12]}… (stale; rebuild with "
                    "`repro store index`)"
                )
        for memo_key, cache_key in index.spec_mappings():
            if index.get(cache_key) is None:
                problems.append(
                    f"index: spec mapping {memo_key[:12]}… targets unindexed "
                    f"point {cache_key[:12]}… (stale; rebuild with "
                    "`repro store index`)"
                )
        return problems

    def unreferenced_blobs(self) -> Tuple[List[Path], int]:
        """Blobs no manifest references: ``(orphans, kept_count)``.

        This is ``gc``'s planning half, exposed so ``repro store gc
        --dry-run`` can report exactly what would be deleted without
        touching disk.
        """
        referenced = set()
        for manifest in self.manifests():
            for ref in manifest.artifact_refs().values():
                referenced.add((ref.digest, ref.ext))
        orphans: List[Path] = []
        kept = 0
        if self.artifact_dir.is_dir():
            for blob in sorted(self.artifact_dir.glob("*/*")):
                digest, _, ext = blob.name.partition(".")
                if (digest, ext) in referenced:
                    kept += 1
                else:
                    orphans.append(blob)
        return orphans, kept

    def gc(self) -> Tuple[int, int]:
        """Delete artifact blobs no manifest references; ``(removed, kept)``.

        Unreadable manifests keep nothing alive — ``verify`` flags them
        first, and ``gc`` after deleting a manifest is how its blobs are
        reclaimed.
        """
        orphans, kept = self.unreferenced_blobs()
        for blob in orphans:
            blob.unlink()
        return len(orphans), kept

    def size_bytes(self) -> int:
        """Total bytes the store occupies on disk (manifests, blobs, index)."""
        total = 0
        for root in (self.manifest_dir, self.artifact_dir, self.index_dir):
            if root.is_dir():
                total += sum(
                    path.stat().st_size for path in root.rglob("*") if path.is_file()
                )
        return total


def _stats_payload(stats: Any) -> Dict[str, Any]:
    """A sweep's counters/phases as plain manifest data.

    This is the *only* place run telemetry is persisted — the rendered
    report artifacts are deterministic functions of the measurements — so
    resume-parity comparisons normalize exactly this manifest field.
    """
    return {
        "total": stats.total,
        "cache_hits": stats.cache_hits,
        "reused": getattr(stats, "reused_points", 0),
        "executed": stats.executed,
        "jobs": stats.jobs,
        "elapsed_s": stats.elapsed_s,
        "sim_wall_s": getattr(stats, "sim_wall_s", 0.0),
        "retries": getattr(stats, "retries", 0),
        "quarantined": len(getattr(stats, "quarantined", ())),
        "phases": stats.phases(),
    }


def manifest_summary(manifest: Manifest) -> Dict[str, Any]:
    """One manifest as a machine-readable summary (no artifact contents).

    The scripting shape behind ``repro store list --format json`` and the
    HTTP service's ``GET /manifests`` index: enough to pick a run (what,
    when, how many points, did its checks pass) and to address every
    rendered artifact by content hash without loading any of them.
    """
    checks = [check for entry in manifest.subgrids for check in entry.checks]
    return {
        "fingerprint": manifest.fingerprint,
        "kind": manifest.provenance.kind,
        "name": manifest.provenance.name,
        "created_at": manifest.provenance.created_at,
        "repro_version": manifest.provenance.repro_version,
        "subgrids": manifest.subgrid_names(),
        "points": sum(len(entry.points) for entry in manifest.subgrids),
        "checks": {
            "total": len(checks),
            "failed": sum(1 for check in checks if not check.passed),
        },
        "artifacts": {
            name: ref.to_dict() for name, ref in manifest.artifact_refs().items()
        },
        "artifact_bytes": sum(
            ref.size for ref in manifest.artifact_refs().values()
        ),
    }


def describe_manifest(manifest: Manifest) -> str:
    """One-line summary used by ``repro store list``."""
    provenance = manifest.provenance
    points = sum(len(entry.points) for entry in manifest.subgrids)
    checks = [check for entry in manifest.subgrids for check in entry.checks]
    failed = sum(1 for check in checks if not check.passed)
    check_note = (
        f"{len(checks)} check(s){f', {failed} FAILED' if failed else ''}"
        if checks
        else "no checks"
    )
    return (
        f"{manifest.fingerprint[:12]}  {provenance.kind:<8} {provenance.name:<18} "
        f"{len(manifest.subgrids)} sub-grid(s), {points} point(s), {check_note}"
        f"{f'  {provenance.created_at}' if provenance.created_at else ''}"
    )
