"""Provenance-tracked experiment narratives: claims to measured prose.

A campaign file declares *claims* (prose) and *checks* (executable claims);
the live report prints both next to the measured tables, but nothing so far
landed them anywhere a reader of the repository could see measured numbers.
This module renders a recorded :class:`~repro.store.manifest.Manifest` into
a markdown narrative — claim by claim, check outcome by check outcome, with
the measured rows quoted inline and a provenance footer naming the exact
spec hash and repro version that produced them — and maintains that
narrative as a marked, regenerable section of ``EXPERIMENTS.md``.

The narrative is deliberately deterministic: it quotes the manifest's
measured values and provenance hashes but never wall-clock timestamps, so
CI can regenerate the section and fail on *drift in the numbers*, not on
the time of day.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping

from repro.store.manifest import Manifest, StoreError, SubGridEntry

#: Section markers (``{name}`` is the campaign name); everything between a
#: matched pair is owned by the generator and replaced wholesale.
BEGIN_MARKER = "<!-- BEGIN GENERATED NARRATIVE: {name} -->"
END_MARKER = "<!-- END GENERATED NARRATIVE: {name} -->"


def _format_cell(value: Any) -> str:
    """One measured value as a narrative table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return ", ".join(str(item) for item in value) or "none"
    if value is None:
        return "-"
    return str(value)


def _flatten_row(row: Mapping[str, Any]) -> Dict[str, str]:
    """Flatten one measured payload row to scalar display cells."""
    flat: Dict[str, str] = {}
    for key, value in row.items():
        if isinstance(value, Mapping):
            for sub, subvalue in value.items():
                flat[f"{key} {sub}"] = _format_cell(subvalue)
        else:
            flat[key] = _format_cell(value)
    return flat


def _measured_table(entry: SubGridEntry) -> List[str]:
    """The sub-grid's measured rows as a markdown table (raw values)."""
    flattened = [_flatten_row(row) for row in entry.rows]
    header: List[str] = ["point"]
    for flat in flattened:
        for key in flat:
            if key not in header:
                header.append(key)
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for flat in flattened:
        lines.append("| " + " | ".join(flat.get(key, "-") for key in header) + " |")
    return lines


def narrative_md(manifest: Manifest) -> str:
    """Render one manifest as a self-contained markdown narrative.

    For every recorded sub-grid: its declared claims, each check's verdict
    with the measured evidence the run produced, and the measured table the
    verdict was judged on.  The footer pins the numbers to the spec hash,
    repro version and run parameters that produced them.
    """
    provenance = manifest.provenance
    total_points = sum(len(entry.points) for entry in manifest.subgrids)
    checks = [check for entry in manifest.subgrids for check in entry.checks]
    passed = sum(1 for check in checks if check.passed)
    lines = [f"## Measured claim results — {provenance.kind} `{provenance.name}`", ""]
    lines.append(
        f"{len(manifest.subgrids)} experiment(s), {total_points} measured point(s); "
        f"{passed} of {len(checks)} declared check(s) hold on this recording."
        if checks
        else f"{len(manifest.subgrids)} experiment(s), {total_points} measured "
        "point(s); this recording declares no executable checks."
    )
    for entry in manifest.subgrids:
        lines.append("")
        lines.append(f"### {entry.title or entry.name} (`{entry.name}`, scenario `{entry.scenario}`)")
        if entry.claims:
            lines.append("")
            lines.append("Claimed:")
            lines.extend(f"- {claim}" for claim in entry.claims)
        if entry.checks:
            lines.append("")
            lines.append("Measured:")
            for check in entry.checks:
                verdict = "**holds**" if check.passed else "**FAILS**"
                detail = f" — {check.detail}" if check.detail else ""
                lines.append(f"- {verdict}: {check.description}{detail}")
        if entry.rows:
            lines.append("")
            lines.extend(_measured_table(entry))
    lines.append("")
    duration = (
        f"{provenance.duration_ms:g} ms"
        if provenance.duration_ms is not None
        else f"{provenance.kind} defaults"
    )
    traffic = (
        f", traffic ×{provenance.traffic_scale:g}"
        if provenance.traffic_scale is not None
        else ""
    )
    lines.append(
        f"_Provenance: {provenance.kind} `{provenance.name}` "
        f"(spec `sha256:{provenance.spec_hash[:12]}`), repro {provenance.repro_version}, "
        f"cache schema {provenance.cache_schema_version}, duration {duration}{traffic}. "
        f"Regenerate with `python -m repro campaign narrative {provenance.name}`._"
    )
    return "\n".join(lines)


def _markers(name: str) -> tuple:
    return BEGIN_MARKER.format(name=name), END_MARKER.format(name=name)


def replace_section(text: str, name: str, body: str) -> str:
    """Replace (or append) the generated section named ``name`` in ``text``.

    Everything between the section's BEGIN/END markers is replaced; a file
    without the markers gets the section appended, so hand-written prose
    around the generated block always survives regeneration.
    """
    begin, end = _markers(name)
    section = f"{begin}\n{body}\n{end}"
    has_begin, has_end = begin in text, end in text
    if has_begin != has_end:
        missing = end if has_begin else begin
        raise StoreError(
            f"generated section '{name}' is missing its marker line {missing!r} "
            "(restore or delete the stray marker before regenerating)"
        )
    if has_begin:
        pattern = re.compile(
            re.escape(begin) + r".*?" + re.escape(end), flags=re.DOTALL
        )
        return pattern.sub(lambda _: section, text, count=1)
    if text and not text.endswith("\n"):
        text += "\n"
    separator = "\n" if text else ""
    return f"{text}{separator}{section}\n"
