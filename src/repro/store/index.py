"""The store-wide point index: O(1) lookup from cache key to recorded point.

Manifests record every point's cache key, measured row and rendered result,
but finding a previously recorded point used to mean scanning every
manifest.  The index inverts that relation once and keeps it current::

    store/
      index/
        points/<aa>.json   cache_key -> one recorded point (fingerprint,
                           sub-grid, label, settings, measured row, status,
                           result-artifact reference)
        specs/<aa>.json    memo_key -> cache_key

Both halves are sharded by the leading two hex digits of their key, exactly
like artifact blobs and result-cache entries, so one lookup touches one
small JSON file regardless of how many campaigns the store has recorded.

The ``specs`` half is what makes schedule-time reuse resolution-free: a
:meth:`~repro.runner.RunSpec.memo_key` is computed from a spec's *unresolved*
fields (resolution is a pure function of them), and the index remembers
which cache key that resolved to when the point was first recorded.  A
later campaign can therefore intersect its whole plan against the store
without resolving a single scenario.

The index is derived data: :meth:`PointIndex.rebuild` reconstructs it from
the manifests alone (``repro store index``), :meth:`record_manifest` keeps
it current on every recording, and ``repro store verify`` cross-checks the
two directions.  Lookups treat anything suspect — unreadable shard, missing
entry, quarantined status, missing or tampered result blob — as a miss, so
a stale or damaged index can never serve wrong bytes; the campaign simply
re-simulates and the re-recording heals the entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.analysis.serialize import (
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.store.manifest import ArtifactRef, Manifest, StoreError, canonical_json
from repro.system.experiment import ExperimentResult

#: Version of the index shard schema.  Shards declaring another version are
#: treated as unreadable (every lookup misses) until ``store index`` rebuilds
#: them — the index is derived data, so that is always safe.
INDEX_SCHEMA_VERSION = 1


def encode_point_result(result: ExperimentResult, include_trace: bool = True) -> str:
    """One point's full result as deterministic JSON (a store artifact).

    Canonical form (sorted keys, no whitespace) so the same measurement
    always produces the same bytes — which is what lets a re-recording of a
    reused point dedup to the original blob by content address.
    """
    return canonical_json(experiment_result_to_dict(result, include_trace=include_trace))


def decode_point_result(raw: bytes) -> ExperimentResult:
    """Invert :func:`encode_point_result` (raises on malformed payloads)."""
    return experiment_result_from_dict(json.loads(raw.decode("utf-8")))


def _atomic_write(path: Path, content: bytes) -> None:
    """Temp-file-plus-rename write (the store's crash-safety idiom)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(content)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _is_key(value: Any) -> bool:
    if not isinstance(value, str) or len(value) != 64:
        return False
    try:
        int(value, 16)
        return True
    except ValueError:
        return False


@dataclass(frozen=True)
class PointEntry:
    """One indexed point: everything a reuse decision or a lookup needs.

    ``row`` is the measured report row exactly as the manifest recorded it
    (empty for quarantined points, which have no row), and ``result``
    references the point's full serialized
    :class:`~repro.system.experiment.ExperimentResult` blob — the thing a
    later campaign splices into its live report instead of simulating.
    """

    cache_key: str
    fingerprint: str
    subgrid: str = ""
    label: str = ""
    settings: Mapping[str, Any] = field(default_factory=dict)
    row: Mapping[str, Any] = field(default_factory=dict)
    status: str = "ok"
    memo_key: str = ""
    result: Optional[ArtifactRef] = None

    def __post_init__(self) -> None:
        if not _is_key(self.cache_key):
            raise StoreError(
                f"index entry: expected a 64-hex-digit cache key, got {self.cache_key!r}"
            )
        if not _is_key(self.fingerprint):
            raise StoreError(
                f"index entry {self.cache_key[:12]}…: expected a manifest "
                f"fingerprint, got {self.fingerprint!r}"
            )
        object.__setattr__(self, "settings", dict(self.settings))
        object.__setattr__(self, "row", dict(self.row))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cache_key": self.cache_key,
            "fingerprint": self.fingerprint,
            "subgrid": self.subgrid,
            "label": self.label,
            "settings": dict(self.settings),
            "row": dict(self.row),
            "status": self.status,
            "memo_key": self.memo_key,
            "result": self.result.to_dict() if self.result is not None else None,
        }

    @classmethod
    def from_dict(cls, cache_key: str, data: Mapping[str, Any]) -> "PointEntry":
        result = data.get("result")
        return cls(
            cache_key=cache_key,
            fingerprint=data.get("fingerprint", ""),
            subgrid=data.get("subgrid", ""),
            label=data.get("label", ""),
            settings=dict(data.get("settings", {})),
            row=dict(data.get("row", {})),
            status=data.get("status", "ok"),
            memo_key=data.get("memo_key", ""),
            result=(
                ArtifactRef.from_dict(result, f"index.{cache_key[:12]}.result")
                if result is not None
                else None
            ),
        )


def manifest_index_entries(
    manifest: Manifest,
) -> Tuple[Dict[str, PointEntry], Dict[str, str]]:
    """Derive one manifest's index contribution: ``(points, spec mappings)``.

    Rows align with the measured (``status == "ok"``) points in record
    order — quarantined points have no row.  This is the single derivation
    both :meth:`PointIndex.record_manifest` and :meth:`PointIndex.rebuild`
    use, so the incremental and rebuilt index cannot drift apart.
    """
    points: Dict[str, PointEntry] = {}
    specs: Dict[str, str] = {}
    for entry in manifest.subgrids:
        measured = 0
        for point in entry.points:
            row: Mapping[str, Any] = {}
            if point.status == "ok":
                if measured < len(entry.rows):
                    row = entry.rows[measured]
                measured += 1
            points[point.cache_key] = PointEntry(
                cache_key=point.cache_key,
                fingerprint=manifest.fingerprint,
                subgrid=entry.name,
                label=point.label,
                settings=dict(point.settings),
                row=dict(row),
                status=point.status,
                memo_key=point.memo_key,
                result=point.result,
            )
            if point.memo_key:
                specs[point.memo_key] = point.cache_key
    return points, specs


class PointIndex:
    """Sharded on-disk mapping from cache key (and memo key) to recorded point.

    Loaded shards are memoized per instance, so a campaign intersecting
    hundreds of points against the index touches each shard file once.
    Writes go through the same cache, keeping reads coherent within the
    process; on disk every shard write is atomic.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self._shards: Dict[Path, Dict[str, Any]] = {}

    @property
    def points_dir(self) -> Path:
        return self.directory / "points"

    @property
    def specs_dir(self) -> Path:
        return self.directory / "specs"

    @property
    def exists(self) -> bool:
        return self.directory.is_dir()

    # ------------------------------------------------------------------ #
    # Shard I/O
    # ------------------------------------------------------------------ #
    def _shard(self, path: Path, table: str) -> Dict[str, Any]:
        """One shard's key table (cached; unreadable or foreign shards = empty)."""
        cached = self._shards.get(path)
        if cached is None:
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                data = {}
            if (
                not isinstance(data, dict)
                or data.get("index_schema_version", INDEX_SCHEMA_VERSION)
                != INDEX_SCHEMA_VERSION
            ):
                data = {}
            cached = data.get(table)
            if not isinstance(cached, dict):
                cached = {}
            self._shards[path] = cached
        return cached

    def _write_shard(self, path: Path, table: str, entries: Dict[str, Any]) -> None:
        payload = {"index_schema_version": INDEX_SCHEMA_VERSION, table: entries}
        _atomic_write(
            path, (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        )
        self._shards[path] = entries

    def _point_shard(self, cache_key: str) -> Path:
        return self.points_dir / f"{cache_key[:2]}.json"

    def _spec_shard(self, memo_key: str) -> Path:
        return self.specs_dir / f"{memo_key[:2]}.json"

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, cache_key: str) -> Optional[PointEntry]:
        """The recorded point behind a cache key, or ``None`` (a miss)."""
        if not _is_key(cache_key):
            return None
        raw = self._shard(self._point_shard(cache_key), "points").get(cache_key)
        if not isinstance(raw, dict):
            return None
        try:
            return PointEntry.from_dict(cache_key, raw)
        except StoreError:
            return None

    def cache_key_for(self, memo_key: str) -> Optional[str]:
        """The cache key a (resolution-free) memo key resolved to, if known."""
        if not _is_key(memo_key):
            return None
        target = self._shard(self._spec_shard(memo_key), "specs").get(memo_key)
        return target if _is_key(target) else None

    def find(self, memo_key: str) -> Optional[PointEntry]:
        """Memo key straight to its recorded point (two shard lookups)."""
        cache_key = self.cache_key_for(memo_key)
        return self.get(cache_key) if cache_key is not None else None

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def update(
        self, points: Mapping[str, PointEntry], specs: Mapping[str, str]
    ) -> None:
        """Merge entries into their shards (read-modify-write, atomic)."""
        by_shard: Dict[Path, Dict[str, Any]] = {}
        for cache_key, entry in points.items():
            data = entry.to_dict()
            data.pop("cache_key")
            by_shard.setdefault(self._point_shard(cache_key), {})[cache_key] = data
        for path, fresh in by_shard.items():
            merged = dict(self._shard(path, "points"))
            merged.update(fresh)
            self._write_shard(path, "points", merged)
        spec_by_shard: Dict[Path, Dict[str, str]] = {}
        for memo_key, cache_key in specs.items():
            spec_by_shard.setdefault(self._spec_shard(memo_key), {})[memo_key] = cache_key
        for path, fresh in spec_by_shard.items():
            merged = dict(self._shard(path, "specs"))
            merged.update(fresh)
            self._write_shard(path, "specs", merged)

    def record_manifest(self, manifest: Manifest) -> int:
        """Fold one freshly recorded manifest in; returns points indexed."""
        points, specs = manifest_index_entries(manifest)
        self.update(points, specs)
        return len(points)

    def remove_manifest(self, manifest: Manifest) -> int:
        """Drop the entries a deleted manifest contributed (and owns).

        An entry whose cache key was since re-recorded by another manifest
        belongs to that manifest now and is left alone.
        """
        points, _ = manifest_index_entries(manifest)
        removed_keys = set()
        for cache_key in points:
            path = self._point_shard(cache_key)
            shard = self._shard(path, "points")
            raw = shard.get(cache_key)
            if isinstance(raw, dict) and raw.get("fingerprint") == manifest.fingerprint:
                shard = dict(shard)
                shard.pop(cache_key)
                self._write_shard(path, "points", shard)
                removed_keys.add(cache_key)
        for path in sorted(self.specs_dir.glob("*.json")):
            shard = self._shard(path, "specs")
            keep = {
                memo_key: cache_key
                for memo_key, cache_key in shard.items()
                if cache_key not in removed_keys
            }
            if len(keep) != len(shard):
                self._write_shard(path, "specs", keep)
        return len(removed_keys)

    def rebuild(self, manifests: Iterable[Manifest]) -> Tuple[int, int]:
        """Reconstruct every shard from manifests alone; ``(points, specs)``.

        Iterate oldest first so, where several manifests recorded the same
        cache key, the newest recording wins — the same outcome incremental
        maintenance produces.  Shards for prefixes no manifest touches
        anymore are deleted, so a rebuild fully supersedes whatever was on
        disk.
        """
        all_points: Dict[str, PointEntry] = {}
        all_specs: Dict[str, str] = {}
        for manifest in manifests:
            points, specs = manifest_index_entries(manifest)
            all_points.update(points)
            all_specs.update(specs)
        point_shards: Dict[Path, Dict[str, Any]] = {}
        for cache_key, entry in all_points.items():
            data = entry.to_dict()
            data.pop("cache_key")
            point_shards.setdefault(self._point_shard(cache_key), {})[cache_key] = data
        spec_shards: Dict[Path, Dict[str, str]] = {}
        for memo_key, cache_key in all_specs.items():
            spec_shards.setdefault(self._spec_shard(memo_key), {})[memo_key] = cache_key
        for directory, table, shards in (
            (self.points_dir, "points", point_shards),
            (self.specs_dir, "specs", spec_shards),
        ):
            directory.mkdir(parents=True, exist_ok=True)
            for path, entries in shards.items():
                self._write_shard(path, table, entries)
            for path in sorted(directory.glob("*.json")):
                if path not in shards:
                    path.unlink()
                    self._shards.pop(path, None)
        return len(all_points), len(all_specs)

    # ------------------------------------------------------------------ #
    # Introspection (verify / CLI)
    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[PointEntry]:
        """Every readable point entry on disk (skipping malformed ones)."""
        for path in sorted(self.points_dir.glob("*.json")) if self.points_dir.is_dir() else []:
            for cache_key, raw in sorted(self._shard(path, "points").items()):
                if isinstance(raw, dict):
                    try:
                        yield PointEntry.from_dict(cache_key, raw)
                    except StoreError:
                        continue

    def spec_mappings(self) -> Iterator[Tuple[str, str]]:
        """Every ``memo_key -> cache_key`` mapping on disk."""
        for path in sorted(self.specs_dir.glob("*.json")) if self.specs_dir.is_dir() else []:
            for memo_key, cache_key in sorted(self._shard(path, "specs").items()):
                if isinstance(cache_key, str):
                    yield memo_key, cache_key

    def counts(self) -> Tuple[int, int]:
        """How many point entries and spec mappings the index holds."""
        points = sum(1 for _ in self.entries())
        specs = sum(1 for _ in self.spec_mappings())
        return points, specs


class StoreMemo:
    """The runner-facing view of a store's index: ``get(spec) -> result``.

    This is the object :func:`~repro.runner.sweep.run_sweep` consults before
    computing any cache key: the lookup goes memo key → cache key → index
    entry → verified result blob, all without resolving the spec's scenario.
    Anything short of a healthy, byte-verified recording — unknown spec,
    quarantined point, missing or tampered blob, undecodable payload — is a
    miss, and the point simulates live.
    """

    def __init__(self, store: Any) -> None:
        self.store = store
        self.index: PointIndex = store.point_index

    def _entry(self, spec: Any) -> Optional[PointEntry]:
        entry = self.index.find(spec.memo_key())
        if entry is None or entry.status != "ok" or entry.result is None:
            return None
        return entry

    def probe(self, spec: Any) -> bool:
        """Cheap plan-time check: would :meth:`get` plausibly hit?

        Confirms the index entry and the result blob's presence on disk but
        skips the hash verification and deserialization — this is what
        ``campaign run --dry-run`` counts without loading anything.
        """
        entry = self._entry(spec)
        return entry is not None and self.store.artifact_path(entry.result).is_file()

    def get(self, spec: Any) -> Optional[Tuple[ExperimentResult, str]]:
        """The recorded result and cache key for a spec, or ``None``."""
        entry = self._entry(spec)
        if entry is None:
            return None
        try:
            raw = self.store.read_artifact_bytes(entry.result)
            result = decode_point_result(raw)
        except (StoreError, KeyError, TypeError, ValueError):
            return None
        return result, entry.cache_key
