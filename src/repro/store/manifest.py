"""The versioned manifest: what one recorded experiment run *is*.

A :class:`Manifest` is the store's unit of record — everything a report
needs to be served without resolving a single
:class:`~repro.runner.RunSpec`: per sub-grid, the resolved result-cache
keys of every point, the measured rows the tables showed, the declared
claims, the evaluated check outcomes, and references to the rendered
artifacts (markdown, CSV, JSON) that were written once at run time.  On
top sits provenance — the campaign's content hash, the repro version, the
cache schema version, the run's effective overrides and a caller-supplied
timestamp — so a narrative generated months later can say exactly which
spec and code produced its numbers.

Like :class:`~repro.scenario.Scenario` and
:class:`~repro.campaign.Campaign`, a manifest is plain data:
``from_dict(to_dict(m)) == m`` holds exactly, the dictionary form is plain
JSON, and every validation error carries the dotted path of the offending
entry (``manifest.subgrids.fig7.points[2].cache_key``).  The manifest
deliberately knows nothing about directories — content addressing and blob
I/O live in :mod:`repro.store.store`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner.cache import CACHE_SCHEMA_VERSION
from repro.scenario import ScenarioError
from repro.scenario.spec import (
    _plain as _scenario_plain,
    _reject_unknown_keys as _scenario_reject_unknown_keys,
    _require_mapping as _scenario_require_mapping,
)
from repro.version import __version__

#: Version of the manifest schema.  Bump when the manifest's shape changes
#: in a way old files cannot express; the loader rejects newer versions with
#: an actionable message instead of misreading them.
STORE_SCHEMA_VERSION = 1

#: Run kinds a manifest can record (what produced it).
MANIFEST_KINDS = ("campaign", "grid")


class StoreError(ScenarioError):
    """A manifest or store operation failed validation.

    Subclasses :class:`~repro.scenario.ScenarioError` so every surface that
    already turns scenario/campaign errors into friendly messages (the CLI
    error path) handles store errors for free.
    """


class AmbiguousFingerprintError(StoreError):
    """A fingerprint prefix matched more than one recorded manifest.

    Carries the full matching fingerprints so callers can show the user the
    actual candidates: the CLI's ``store show`` prints one describe-line per
    match, and the HTTP service answers ``300 Multiple Choices`` with the
    list — nobody has to re-derive it from a truncated message.
    """

    def __init__(self, prefix: str, matches: Sequence[str]) -> None:
        self.prefix = prefix
        self.matches = tuple(matches)
        listing = "\n".join(f"  {match}" for match in self.matches)
        super().__init__(
            f"fingerprint prefix '{prefix}' matches {len(self.matches)} "
            f"manifests:\n{listing}\n(disambiguate with more characters)"
        )


# The scenario layer's schema helpers, re-raised as StoreError so the
# exception type matches the document being validated.
def _plain(value: Any, path: str) -> Any:
    try:
        return _scenario_plain(value, path)
    except ScenarioError as exc:
        raise StoreError(str(exc)) from None


def _require_mapping(data: Any, path: str) -> Mapping[str, Any]:
    try:
        return _scenario_require_mapping(data, path)
    except ScenarioError as exc:
        raise StoreError(str(exc)) from None


def _reject_unknown_keys(data: Mapping[str, Any], known: Sequence[str], path: str) -> None:
    try:
        _scenario_reject_unknown_keys(data, known, path)
    except ScenarioError as exc:
        raise StoreError(str(exc)) from None


def _require_str(value: Any, path: str, allow_empty: bool = True) -> str:
    if not isinstance(value, str) or (not allow_empty and not value):
        raise StoreError(f"{path}: expected a {'' if allow_empty else 'non-empty '}string, "
                         f"got {value!r}")
    return value


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for content hashes (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(content: bytes) -> str:
    """The store's content address: SHA-256 hex of the raw bytes."""
    return hashlib.sha256(content).hexdigest()


def spec_hash(spec: Mapping[str, Any]) -> str:
    """Content hash of a serialized campaign/scenario spec (provenance)."""
    return content_digest(canonical_json(spec).encode("utf-8"))


def run_fingerprint(
    kind: str,
    spec: Mapping[str, Any],
    duration_ms: Optional[float] = None,
    traffic_scale: Optional[float] = None,
    selection: Optional[Sequence[str]] = None,
    plugin_modules: Sequence[str] = (),
) -> str:
    """The manifest's lookup key: a hash of *what would run*, nothing more.

    Everything that changes the results or the report shape participates —
    the serialized spec, the effective duration/traffic overrides, the
    sub-grid (or axis-set) selection, the plugin modules — and nothing that
    does not (``--jobs``, cache directories, output formats).  Crucially the
    fingerprint is computed from the spec's *dictionary form*, so a warm
    ``campaign report`` can find its manifest without resolving a single
    scenario.
    """
    if kind not in MANIFEST_KINDS:
        raise StoreError(
            f"manifest kind must be one of {', '.join(MANIFEST_KINDS)}, got {kind!r}"
        )
    payload = {
        "store_schema_version": STORE_SCHEMA_VERSION,
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "kind": kind,
        "spec": dict(spec),
        "duration_ms": duration_ms,
        "traffic_scale": traffic_scale,
        "selection": list(selection) if selection is not None else None,
        "plugin_modules": list(plugin_modules),
    }
    return content_digest(canonical_json(payload).encode("utf-8"))


@dataclass(frozen=True)
class ArtifactRef:
    """A content-addressed reference to one rendered artifact blob.

    ``digest`` is the SHA-256 of the blob's bytes — the reference *is* the
    integrity check, which is what lets ``repro store verify`` detect a
    tampered or truncated artifact without any side channel.
    """

    digest: str
    ext: str
    size: int

    def __post_init__(self) -> None:
        if not isinstance(self.digest, str) or len(self.digest) != 64:
            raise StoreError(
                f"artifact.digest: expected a 64-hex-digit SHA-256, got {self.digest!r}"
            )
        if not isinstance(self.ext, str) or not self.ext or "." in self.ext:
            raise StoreError(
                f"artifact.ext: expected a bare extension like 'md', got {self.ext!r}"
            )
        if not isinstance(self.size, int) or self.size < 0:
            raise StoreError(f"artifact.size: expected a byte count, got {self.size!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"digest": self.digest, "ext": self.ext, "size": self.size}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str) -> "ArtifactRef":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ["digest", "ext", "size"], path)
        for key in ("digest", "ext", "size"):
            if key not in data:
                raise StoreError(f"{path}.{key}: required key is missing")
        try:
            return cls(digest=data["digest"], ext=data["ext"], size=data["size"])
        except ScenarioError as exc:
            raise StoreError(str(exc).replace("artifact.", f"{path}.", 1)) from None


@dataclass(frozen=True)
class PointRecord:
    """One resolved grid point: its settings, display label and cache key.

    The cache key is the same SHA-256 the run itself used, so a manifest
    holder can go straight to the result-cache entry — or assert its
    presence — without re-resolving the scenario that produced it.

    ``status`` is ``"ok"`` for a measured point and ``"quarantined"`` for a
    point the run gave up on after exhausting its retry budget (``error``
    then carries the last failure).  A quarantined point's cache key is
    still the real one — a later resume that succeeds fills exactly that
    slot — but no result is promised behind it, so ``store verify`` skips
    quarantined keys in its cache cross-check.

    ``memo_key`` is the point's *resolution-free* spec key
    (:meth:`repro.runner.RunSpec.memo_key`) and ``result`` references the
    point's full serialized experiment result; together they are what the
    store's point index needs to let a later overlapping campaign reuse
    this point without resolving its scenario or re-simulating — and they
    make the index rebuildable from manifests alone.  ``to_dict`` omits
    the healthy defaults and the absent optionals, keeping manifests of
    earlier schema generations byte-stable across these additions.
    """

    settings: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    cache_key: str = ""
    status: str = "ok"
    error: str = ""
    memo_key: str = ""
    result: Optional[ArtifactRef] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "settings", _plain(dict(self.settings), "point.settings"))
        _require_str(self.label, "point.label")
        if not isinstance(self.cache_key, str) or len(self.cache_key) != 64:
            raise StoreError(
                f"point.cache_key: expected a 64-hex-digit SHA-256, got {self.cache_key!r}"
            )
        if self.status not in ("ok", "quarantined"):
            raise StoreError(
                f"point.status: expected 'ok' or 'quarantined', got {self.status!r}"
            )
        _require_str(self.error, "point.error")
        if self.memo_key and (
            not isinstance(self.memo_key, str) or len(self.memo_key) != 64
        ):
            raise StoreError(
                f"point.memo_key: expected a 64-hex-digit SHA-256, got {self.memo_key!r}"
            )
        if self.result is not None and not isinstance(self.result, ArtifactRef):
            raise StoreError(
                f"point.result: expected an artifact reference, got {self.result!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "settings": dict(self.settings),
            "label": self.label,
            "cache_key": self.cache_key,
        }
        if self.status != "ok":
            data["status"] = self.status
        if self.error:
            data["error"] = self.error
        if self.memo_key:
            data["memo_key"] = self.memo_key
        if self.result is not None:
            data["result"] = self.result.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str) -> "PointRecord":
        data = _require_mapping(data, path)
        _reject_unknown_keys(
            data,
            ["settings", "label", "cache_key", "status", "error", "memo_key", "result"],
            path,
        )
        try:
            return cls(
                settings=dict(_require_mapping(data.get("settings", {}), f"{path}.settings")),
                label=data.get("label", ""),
                cache_key=data.get("cache_key", ""),
                status=data.get("status", "ok"),
                error=data.get("error", ""),
                memo_key=data.get("memo_key", ""),
                result=(
                    ArtifactRef.from_dict(data["result"], f"{path}.result")
                    if data.get("result") is not None
                    else None
                ),
            )
        except ScenarioError as exc:
            raise StoreError(str(exc).replace("point.", f"{path}.", 1)) from None


@dataclass(frozen=True)
class CheckRecord:
    """One evaluated check outcome, frozen at run time.

    ``detail`` carries the measured evidence (failing cores, point counts,
    margins) exactly as the live report printed it, so the narrative can
    quote measured values without re-running anything.
    """

    kind: str = ""
    experiment: str = ""
    description: str = ""
    passed: bool = False
    detail: str = ""

    def __post_init__(self) -> None:
        _require_str(self.kind, "check.kind", allow_empty=False)
        _require_str(self.experiment, "check.experiment")
        _require_str(self.description, "check.description")
        if not isinstance(self.passed, bool):
            raise StoreError(f"check.passed: expected a boolean, got {self.passed!r}")
        _require_str(self.detail, "check.detail")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "experiment": self.experiment,
            "description": self.description,
            "passed": self.passed,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str) -> "CheckRecord":
        data = _require_mapping(data, path)
        known = ["kind", "experiment", "description", "passed", "detail"]
        _reject_unknown_keys(data, known, path)
        if "kind" not in data:
            raise StoreError(f"{path}.kind: required key is missing")
        try:
            return cls(**{key: data[key] for key in known if key in data})
        except ScenarioError as exc:
            raise StoreError(str(exc).replace("check.", f"{path}.", 1)) from None


@dataclass(frozen=True)
class SubGridEntry:
    """Everything recorded for one sub-grid (or grid axis set).

    ``rows`` are the measured table rows with raw numeric values (the JSON
    payload shape of the report layer), ``points`` bind each row back to its
    settings and result-cache key, and ``artifacts`` reference the rendered
    markdown/CSV/JSON tables by content address.
    """

    name: str
    scenario: str = ""
    title: str = ""
    critical_cores: Tuple[str, ...] = ()
    points: Tuple[PointRecord, ...] = ()
    rows: Tuple[Mapping[str, Any], ...] = ()
    claims: Tuple[str, ...] = ()
    checks: Tuple[CheckRecord, ...] = ()
    artifacts: Mapping[str, ArtifactRef] = field(default_factory=dict)

    def __post_init__(self) -> None:
        prefix = f"subgrid.{self.name or '?'}"
        _require_str(self.name, "subgrid name", allow_empty=False)
        _require_str(self.scenario, f"{prefix}.scenario")
        _require_str(self.title, f"{prefix}.title")
        object.__setattr__(
            self, "critical_cores",
            tuple(_plain(list(self.critical_cores), f"{prefix}.critical_cores")),
        )
        object.__setattr__(self, "points", tuple(self.points))
        object.__setattr__(
            self,
            "rows",
            tuple(_require_mapping(_plain(row, f"{prefix}.rows[{index}]"),
                                   f"{prefix}.rows[{index}]")
                  for index, row in enumerate(self.rows)),
        )
        object.__setattr__(self, "claims", tuple(str(claim) for claim in self.claims))
        object.__setattr__(self, "checks", tuple(self.checks))
        artifacts = dict(self.artifacts)
        for key, ref in artifacts.items():
            if not isinstance(ref, ArtifactRef):
                raise StoreError(
                    f"{prefix}.artifacts.{key}: expected an artifact reference, "
                    f"got {type(ref).__name__}"
                )
        object.__setattr__(self, "artifacts", artifacts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "title": self.title,
            "critical_cores": list(self.critical_cores),
            "points": [point.to_dict() for point in self.points],
            "rows": [dict(row) for row in self.rows],
            "claims": list(self.claims),
            "checks": [check.to_dict() for check in self.checks],
            "artifacts": {key: ref.to_dict() for key, ref in self.artifacts.items()},
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any], path: str) -> "SubGridEntry":
        data = _require_mapping(data, path)
        known = [f.name for f in fields(cls) if f.name != "name"]
        _reject_unknown_keys(data, known, path)
        kwargs: Dict[str, Any] = {
            key: data[key]
            for key in ("scenario", "title", "critical_cores", "claims", "rows")
            if key in data
        }
        for listy in ("points", "rows", "claims", "checks", "critical_cores"):
            if listy in data and not isinstance(data[listy], (list, tuple)):
                raise StoreError(
                    f"{path}.{listy}: expected a list, got {type(data[listy]).__name__}"
                )
        if "points" in data:
            kwargs["points"] = tuple(
                PointRecord.from_dict(point, f"{path}.points[{index}]")
                for index, point in enumerate(data["points"])
            )
        if "checks" in data:
            kwargs["checks"] = tuple(
                CheckRecord.from_dict(check, f"{path}.checks[{index}]")
                for index, check in enumerate(data["checks"])
            )
        if "artifacts" in data:
            artifacts = _require_mapping(data["artifacts"], f"{path}.artifacts")
            kwargs["artifacts"] = {
                key: ArtifactRef.from_dict(ref, f"{path}.artifacts.{key}")
                for key, ref in artifacts.items()
            }
        try:
            return cls(name=name, **kwargs)
        except ScenarioError as exc:
            raise StoreError(str(exc).replace(f"subgrid.{name}", path, 1)) from None


@dataclass(frozen=True)
class Provenance:
    """Where a manifest's numbers came from, for readers months later.

    ``created_at`` is passed in by the caller (the CLI stamps wall-clock
    time; tests pass fixed strings) so the store itself stays a pure
    function of its inputs — the same run recorded twice differs only where
    the caller made it differ.
    """

    kind: str = "campaign"
    name: str = ""
    spec_hash: str = ""
    repro_version: str = __version__
    cache_schema_version: int = CACHE_SCHEMA_VERSION
    created_at: str = ""
    duration_ms: Optional[float] = None
    traffic_scale: Optional[float] = None
    selection: Optional[Tuple[str, ...]] = None
    plugin_modules: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in MANIFEST_KINDS:
            raise StoreError(
                f"provenance.kind: must be one of {', '.join(MANIFEST_KINDS)}, "
                f"got {self.kind!r}"
            )
        _require_str(self.name, "provenance.name", allow_empty=False)
        if not isinstance(self.spec_hash, str) or len(self.spec_hash) != 64:
            raise StoreError(
                f"provenance.spec_hash: expected a 64-hex-digit SHA-256, "
                f"got {self.spec_hash!r}"
            )
        _require_str(self.repro_version, "provenance.repro_version")
        if not isinstance(self.cache_schema_version, int):
            raise StoreError(
                "provenance.cache_schema_version: expected an integer, "
                f"got {self.cache_schema_version!r}"
            )
        _require_str(self.created_at, "provenance.created_at")
        for knob in ("duration_ms", "traffic_scale"):
            value = getattr(self, knob)
            if value is not None and not isinstance(value, (int, float)):
                raise StoreError(
                    f"provenance.{knob}: expected a number or null, got {value!r}"
                )
        if self.selection is not None:
            object.__setattr__(
                self, "selection",
                tuple(str(name) for name in self.selection),
            )
        object.__setattr__(
            self, "plugin_modules", tuple(str(m) for m in self.plugin_modules)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "spec_hash": self.spec_hash,
            "repro_version": self.repro_version,
            "cache_schema_version": self.cache_schema_version,
            "created_at": self.created_at,
            "duration_ms": self.duration_ms,
            "traffic_scale": self.traffic_scale,
            "selection": list(self.selection) if self.selection is not None else None,
            "plugin_modules": list(self.plugin_modules),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str) -> "Provenance":
        data = _require_mapping(data, path)
        known = [f.name for f in fields(cls)]
        _reject_unknown_keys(data, known, path)
        kwargs: Dict[str, Any] = {key: data[key] for key in known if key in data}
        if kwargs.get("selection") is not None and not isinstance(
            kwargs["selection"], (list, tuple)
        ):
            raise StoreError(
                f"{path}.selection: expected a list or null, "
                f"got {type(kwargs['selection']).__name__}"
            )
        try:
            return cls(**kwargs)
        except ScenarioError as exc:
            raise StoreError(str(exc).replace("provenance.", f"{path}.", 1)) from None


@dataclass(frozen=True)
class Manifest:
    """One recorded run: provenance, per-sub-grid records, top-level artifacts.

    ``fingerprint`` is the lookup key (:func:`run_fingerprint` of the spec
    plus effective overrides); ``artifacts`` hold the run-level renderings —
    the full campaign report in markdown and JSON, and the generated
    narrative — next to each sub-grid's own tables.
    """

    fingerprint: str
    provenance: Provenance
    schema_version: int = STORE_SCHEMA_VERSION
    subgrids: Tuple[SubGridEntry, ...] = ()
    artifacts: Mapping[str, ArtifactRef] = field(default_factory=dict)
    stats: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.schema_version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"manifest.schema_version: file declares version {self.schema_version}, "
                f"this build reads version {STORE_SCHEMA_VERSION}"
            )
        if not isinstance(self.fingerprint, str) or len(self.fingerprint) != 64:
            raise StoreError(
                f"manifest.fingerprint: expected a 64-hex-digit SHA-256, "
                f"got {self.fingerprint!r}"
            )
        if not isinstance(self.provenance, Provenance):
            raise StoreError(
                "manifest.provenance: expected a Provenance, "
                f"got {type(self.provenance).__name__}"
            )
        subgrids = tuple(self.subgrids)
        seen = set()
        for entry in subgrids:
            if entry.name in seen:
                raise StoreError(
                    f"manifest.subgrids.{entry.name}: duplicate sub-grid name"
                )
            seen.add(entry.name)
        object.__setattr__(self, "subgrids", subgrids)
        artifacts = dict(self.artifacts)
        for key, ref in artifacts.items():
            if not isinstance(ref, ArtifactRef):
                raise StoreError(
                    f"manifest.artifacts.{key}: expected an artifact reference, "
                    f"got {type(ref).__name__}"
                )
        object.__setattr__(self, "artifacts", artifacts)
        object.__setattr__(self, "stats", _plain(dict(self.stats), "manifest.stats"))

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def subgrid_names(self) -> List[str]:
        return [entry.name for entry in self.subgrids]

    def subgrid(self, name: str) -> SubGridEntry:
        for entry in self.subgrids:
            if entry.name == name:
                return entry
        raise StoreError(
            f"manifest {self.fingerprint[:12]} has no sub-grid '{name}' "
            f"(recorded: {', '.join(self.subgrid_names())})"
        )

    def cache_keys(self) -> List[str]:
        """Result-cache keys this manifest *vouches for*, in record order.

        Quarantined points are excluded: their keys are real addresses but
        no result is promised behind them, so ``store verify`` must not
        flag their absence as corruption.
        """
        return [
            point.cache_key
            for entry in self.subgrids
            for point in entry.points
            if point.status == "ok"
        ]

    def artifact_refs(self) -> Dict[str, ArtifactRef]:
        """Every artifact reference, qualified ``<scope>/<name>`` for messages.

        Per-point result blobs are included, so ``store verify`` hashes them
        and ``store gc`` keeps them alive as long as any manifest references
        them — which is exactly what makes cross-campaign reuse safe.
        """
        refs = {f"manifest/{key}": ref for key, ref in self.artifacts.items()}
        for entry in self.subgrids:
            for key, ref in entry.artifacts.items():
                refs[f"{entry.name}/{key}"] = ref
            for position, point in enumerate(entry.points):
                if point.result is not None:
                    refs[f"{entry.name}/points[{position}]/result"] = point.result
        # Trace artifacts recorded by `campaign run --trace` live only in the
        # free-form stats field; include them here so gc keeps them alive
        # and verify content-checks them.  Stats are untyped, so anything
        # malformed is simply not a reference.
        trace_info = self.stats.get("trace")
        if isinstance(trace_info, Mapping):
            for key in ("events_jsonl", "trace_json"):
                data = trace_info.get(key)
                if isinstance(data, Mapping):
                    try:
                        refs[f"stats/trace/{key}"] = ArtifactRef.from_dict(
                            data, f"stats.trace.{key}"
                        )
                    except StoreError:
                        continue
        return refs

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data form (``from_dict`` inverts it exactly)."""
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "provenance": self.provenance.to_dict(),
            "subgrids": {entry.name: entry.to_dict() for entry in self.subgrids},
            "artifacts": {key: ref.to_dict() for key, ref in self.artifacts.items()},
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Manifest":
        """Validate and rebuild a manifest from its dictionary form.

        Every validation error is a :class:`StoreError` whose message starts
        with the dotted path of the offending entry.
        """
        data = _require_mapping(data, "manifest")
        version = data.get("schema_version", STORE_SCHEMA_VERSION)
        if version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"manifest.schema_version: file declares version {version}, "
                f"this build reads version {STORE_SCHEMA_VERSION}"
            )
        known = [f.name for f in fields(cls)]
        _reject_unknown_keys(data, known, "manifest")
        for key in ("fingerprint", "provenance"):
            if key not in data:
                raise StoreError(f"manifest.{key}: required key is missing")
        kwargs: Dict[str, Any] = {
            "fingerprint": data["fingerprint"],
            "provenance": Provenance.from_dict(data["provenance"], "manifest.provenance"),
        }
        if "subgrids" in data:
            subgrids = _require_mapping(data["subgrids"], "manifest.subgrids")
            kwargs["subgrids"] = tuple(
                SubGridEntry.from_dict(name, body, f"manifest.subgrids.{name}")
                for name, body in subgrids.items()
            )
        if "artifacts" in data:
            artifacts = _require_mapping(data["artifacts"], "manifest.artifacts")
            kwargs["artifacts"] = {
                key: ArtifactRef.from_dict(ref, f"manifest.artifacts.{key}")
                for key, ref in artifacts.items()
            }
        if "stats" in data:
            kwargs["stats"] = dict(_require_mapping(data["stats"], "manifest.stats"))
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        # Sub-grid order is semantic (it is the report order), so keys are
        # not sorted; ``to_dict`` emits them losslessly in record order.
        return json.dumps(self.to_dict(), indent=indent)
