"""The content-addressed results store: serve results, don't recompute them.

The runner's :class:`~repro.runner.cache.ResultCache` memoizes *simulation*
— one entry per resolved run — but every report still had to re-resolve the
grid to know which entries to read.  This package adds the missing layer: a
:class:`Manifest` records, per campaign (or grid) run, every point's
resolved cache key, the measured rows, the evaluated check outcomes, the
rendered artifacts (markdown / CSV / JSON, written once at run time) and
the run's provenance — so ``repro campaign report`` and ``repro grid`` can
serve a recorded run as a pure read, and the
:mod:`~repro.store.narrative` renderer can turn declared claims plus
measured outcomes into a regenerable ``EXPERIMENTS.md`` section.

The :mod:`~repro.store.index` module inverts the manifests into a sharded
store-wide point index (cache key → recorded point, memo key → cache key),
which is what lets a later overlapping campaign reuse recorded points
without resolving a scenario or scanning a single manifest.

``repro store list|show|verify|gc|index`` operates on a store directory.
"""

from repro.store.index import (
    INDEX_SCHEMA_VERSION,
    PointEntry,
    PointIndex,
    StoreMemo,
    decode_point_result,
    encode_point_result,
    manifest_index_entries,
)
from repro.store.manifest import (
    MANIFEST_KINDS,
    STORE_SCHEMA_VERSION,
    AmbiguousFingerprintError,
    ArtifactRef,
    CheckRecord,
    Manifest,
    PointRecord,
    Provenance,
    StoreError,
    SubGridEntry,
    content_digest,
    run_fingerprint,
    spec_hash,
)
from repro.store.narrative import narrative_md, replace_section
from repro.store.store import (
    GridSection,
    ResultsStore,
    content_type_for,
    describe_manifest,
    is_content_digest,
    manifest_summary,
)

__all__ = [
    "AmbiguousFingerprintError",
    "ArtifactRef",
    "CheckRecord",
    "GridSection",
    "INDEX_SCHEMA_VERSION",
    "MANIFEST_KINDS",
    "Manifest",
    "PointEntry",
    "PointIndex",
    "PointRecord",
    "Provenance",
    "ResultsStore",
    "STORE_SCHEMA_VERSION",
    "StoreError",
    "StoreMemo",
    "SubGridEntry",
    "content_digest",
    "content_type_for",
    "decode_point_result",
    "describe_manifest",
    "encode_point_result",
    "is_content_digest",
    "manifest_index_entries",
    "manifest_summary",
    "narrative_md",
    "replace_section",
    "run_fingerprint",
    "spec_hash",
]
