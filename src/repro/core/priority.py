"""NPI-to-priority translation: the per-core look-up table of Section 3.4.

The hardware described in the paper stores, for each priority level, the
lowest NPI value allowed at that level; comparators evaluate every entry in
parallel and the lowest asserted level wins.  Lower NPI therefore maps to a
higher (more urgent) priority level, and an NPI below every stored bound maps
to the maximum level.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


class PriorityLookupTable:
    """Maps an NPI value to a quantized priority level.

    ``bounds[p]`` is the lowest NPI value allowed at priority level ``p``.
    Bounds must be strictly decreasing with ``p``: level 0 (least urgent)
    covers the healthiest NPI range and the last level everything below the
    final bound.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = list(bounds)
        if not bounds:
            raise ValueError("a priority look-up table needs at least one entry")
        for value in bounds:
            if value <= 0:
                raise ValueError("NPI bounds must be positive")
        for previous, current in zip(bounds, bounds[1:]):
            if current >= previous:
                raise ValueError(
                    "NPI bounds must strictly decrease with the priority level"
                )
        self.bounds: List[float] = bounds

    @property
    def levels(self) -> int:
        """Number of representable priority levels (including the overflow level)."""
        return len(self.bounds) + 1

    @property
    def max_priority(self) -> int:
        return len(self.bounds)

    def priority_for(self, npi: float) -> int:
        """Translate an NPI value to a priority level.

        Mirrors the parallel-comparator hardware: every level whose stored
        bound is not above the NPI asserts, and the lowest asserted level is
        adopted.  If no level asserts the maximum priority is used.
        """
        if npi < 0:
            raise ValueError("NPI must be non-negative")
        for level, bound in enumerate(self.bounds):
            if npi >= bound:
                return level
        return self.max_priority

    @classmethod
    def linear(
        cls,
        priority_bits: int = 3,
        healthy_npi: float = 1.5,
        critical_npi: float = 0.5,
    ) -> "PriorityLookupTable":
        """Build a table with evenly spaced bounds between two NPI anchors.

        Level 0 is used while NPI >= ``healthy_npi`` and the maximum level is
        reached once NPI falls below ``critical_npi``.  The default anchors
        follow Fig. 4: priority starts climbing well before the core actually
        misses its target (e.g. the DSP already runs at a mid priority at 50 %
        of its latency limit), so a core sitting right at NPI = 1 carries a
        moderate priority instead of none.  With the paper's k = 3 bits this
        produces the eight levels 0..7.
        """
        if not 1 <= priority_bits <= 8:
            raise ValueError("priority_bits must be between 1 and 8")
        if critical_npi <= 0 or healthy_npi <= critical_npi:
            raise ValueError("require healthy_npi > critical_npi > 0")
        levels = 1 << priority_bits
        steps = levels - 1
        if steps == 1:
            return cls([healthy_npi])
        span = healthy_npi - critical_npi
        bounds = [healthy_npi - span * index / (steps - 1) for index in range(steps)]
        return cls(bounds)

    @classmethod
    def for_meter_type(
        cls, meter_type: str, priority_bits: int = 3
    ) -> "PriorityLookupTable":
        """The default adaptation curve for a Table-2 performance type.

        Fig. 4 of the paper shows that different cores translate their NPI to
        priorities differently: the DSP already runs at a mid priority at half
        of its latency budget, the display escalates sharply as soon as its
        buffer starts draining, while frame-rate cores tolerate falling
        moderately behind the reference progress before escalating.  These
        anchors encode those shapes; cores may of course install their own
        table via :meth:`repro.core.framework.SaraFramework.attach`.
        """
        try:
            healthy, critical = _METER_TYPE_ANCHORS[meter_type]
        except KeyError:
            known = ", ".join(sorted(_METER_TYPE_ANCHORS))
            raise ValueError(
                f"unknown meter type '{meter_type}' (known: {known})"
            ) from None
        return cls.linear(
            priority_bits=priority_bits, healthy_npi=healthy, critical_npi=critical
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PriorityLookupTable(bounds={self.bounds})"


#: (healthy_npi, critical_npi) anchors per Table-2 performance type; see
#: :meth:`PriorityLookupTable.for_meter_type`.
_METER_TYPE_ANCHORS: Dict[str, Tuple[float, float]] = {
    "frame_progress": (1.2, 0.5),
    "processing_time": (1.2, 0.5),
    "latency": (2.0, 1.2),
    "occupancy": (1.05, 0.9),
    "bandwidth": (1.2, 0.8),
}
