"""The SARA framework: wiring monitoring and adaptation onto a system.

The framework owns one :class:`~repro.core.adaptation.PriorityAdapter` per
DMA and drives the distributed monitoring loop: at a fixed sampling interval
it re-evaluates every meter, updates every DMA's priority, and records the
NPI time series (per DMA and per core) that the paper's figures plot.

When ``adaptation_enabled`` is False the framework still monitors — the NPI
traces are needed to evaluate the baseline policies of Figs. 5 and 6 — but
every transaction keeps priority 0, i.e. the memory system receives no QoS
hints, exactly like the FCFS / round-robin / frame-rate baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.adaptation import PriorityAdapter
from repro.core.priority import PriorityLookupTable
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder


class SaraFramework:
    """Distributed monitoring + priority-based adaptation for a set of DMAs."""

    def __init__(
        self,
        engine: Engine,
        adaptation_interval_ps: int,
        adaptation_enabled: bool = True,
        priority_bits: int = 3,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if adaptation_interval_ps <= 0:
            raise ValueError("adaptation_interval_ps must be positive")
        if not 1 <= priority_bits <= 8:
            raise ValueError("priority_bits must be between 1 and 8")
        self.engine = engine
        self.adaptation_interval_ps = adaptation_interval_ps
        self.adaptation_enabled = adaptation_enabled
        self.priority_bits = priority_bits
        self.trace = trace if trace is not None else TraceRecorder()
        self.adapters: Dict[str, PriorityAdapter] = {}
        self._dmas_by_core: Dict[str, List] = {}
        self._stop_ps: Optional[int] = None
        self._started = False
        self.samples_taken = 0

    def attach(self, dma, table: Optional[PriorityLookupTable] = None) -> PriorityAdapter:
        """Equip a DMA with a performance adapter and register it for sampling.

        The DMA must expose ``name``, ``core``, ``meter`` and
        ``set_priority_provider``; :class:`repro.cores.base.Dma` does.
        """
        if dma.name in self.adapters:
            raise ValueError(f"DMA '{dma.name}' is already attached")
        adapter = PriorityAdapter(
            dma_name=dma.name,
            meter=dma.meter,
            table=table or PriorityLookupTable.linear(self.priority_bits),
            enabled=self.adaptation_enabled,
        )
        self.adapters[dma.name] = adapter
        self._dmas_by_core.setdefault(dma.core, []).append(dma)
        dma.set_priority_provider(lambda: adapter.current_priority)
        return adapter

    def adapter_for(self, dma_name: str) -> PriorityAdapter:
        try:
            return self.adapters[dma_name]
        except KeyError:
            raise KeyError(f"no adapter attached for DMA '{dma_name}'") from None

    def core_names(self) -> List[str]:
        return sorted(self._dmas_by_core)

    def start(self, stop_ps: Optional[int] = None) -> None:
        """Begin the periodic monitoring/adaptation loop."""
        if self._started:
            raise RuntimeError("framework already started")
        self._started = True
        self._stop_ps = stop_ps
        self.engine.schedule(self.adaptation_interval_ps, self._tick)

    def _tick(self) -> None:
        now = self.engine.now_ps
        self.samples_taken += 1
        for name, adapter in self.adapters.items():
            priority = adapter.sample(now)
            npi = adapter.last_npi if adapter.last_npi is not None else 0.0
            self.trace.record(f"npi.dma.{name}", now, npi)
            self.trace.record(f"priority.dma.{name}", now, priority)
        for core, dmas in self._dmas_by_core.items():
            core_npi = min(self.adapters[dma.name].last_npi or 0.0 for dma in dmas)
            self.trace.record(f"npi.core.{core}", now, core_npi)
        next_tick = now + self.adaptation_interval_ps
        if self._stop_ps is None or next_tick <= self._stop_ps:
            self.engine.schedule_at(next_tick, self._tick)

    def core_npi_series(self, core: str):
        """The recorded NPI time series of a core (its worst DMA at each sample)."""
        series = self.trace.get(f"npi.core.{core}")
        if series is None:
            raise KeyError(f"no NPI trace recorded for core '{core}'")
        return series

    def minimum_core_npi(self) -> Dict[str, float]:
        """Per-core minimum NPI over the run — the paper's failure criterion."""
        result: Dict[str, float] = {}
        for core in self._dmas_by_core:
            series = self.trace.get(f"npi.core.{core}")
            result[core] = series.minimum() if series is not None and len(series) else 0.0
        return result

    def priority_distribution(self, dma_name: str) -> Dict[int, float]:
        """Fraction of time a DMA spent at each priority level (Fig. 7)."""
        return self.adapter_for(dma_name).priority_time_fractions()
