"""Priority-based self-adaptation of a single DMA.

A :class:`PriorityAdapter` is the software model of the per-DMA adaptation
hardware: at every sampling instant it reads its meter's NPI, translates it
through the look-up table and exposes the result as the priority attached to
subsequent memory transactions.  It also accumulates the time spent at each
priority level, which is exactly the distribution Fig. 7 reports for the
image processor.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.npi import PerformanceMeter
from repro.core.priority import PriorityLookupTable
from repro.sim.stats import Histogram


class PriorityAdapter:
    """Samples a performance meter and maintains the DMA's current priority."""

    def __init__(
        self,
        dma_name: str,
        meter: PerformanceMeter,
        table: Optional[PriorityLookupTable] = None,
        enabled: bool = True,
    ) -> None:
        self.dma_name = dma_name
        self.meter = meter
        self.table = table or PriorityLookupTable.linear()
        self.enabled = enabled
        self.current_priority = 0
        self.last_npi: Optional[float] = None
        self._last_sample_ps: Optional[int] = None
        self._time_at_priority = Histogram(range(self.table.levels))

    def sample(self, now_ps: int) -> int:
        """Re-evaluate the NPI and update the current priority level."""
        npi = self.meter.npi(now_ps)
        self.last_npi = npi
        if self._last_sample_ps is not None:
            elapsed = max(0, now_ps - self._last_sample_ps)
            self._time_at_priority.add(self.current_priority, elapsed)
        self._last_sample_ps = now_ps
        if self.enabled:
            self.current_priority = self.table.priority_for(npi)
        else:
            self.current_priority = 0
        return self.current_priority

    def priority_time_fractions(self) -> Dict[int, float]:
        """Fraction of sampled time spent at each priority level (Fig. 7)."""
        return self._time_at_priority.fractions()

    @property
    def max_priority(self) -> int:
        return self.table.max_priority

    def reset(self) -> None:
        """Forget adaptation history (used between experiment repetitions)."""
        self.current_priority = 0
        self.last_npi = None
        self._last_sample_ps = None
        self._time_at_priority.reset()
