"""SARA: the paper's primary contribution.

Three pieces implement the framework of Fig. 3:

* **Distributed self-monitoring** — the per-DMA performance meters of
  :mod:`repro.core.npi`, each reducing a core-specific QoS notion (latency,
  bandwidth, frame progress, buffer occupancy, processing time) to a
  Normalized Performance Indicator where NPI >= 1 means "target met".
* **Distributed priority-based adaptation** — :mod:`repro.core.priority`
  implements the 2^k-entry look-up table that maps NPI to a priority level,
  and :mod:`repro.core.adaptation` samples each meter periodically and keeps
  the DMA's current priority up to date.
* **Distributed system response** — performed by the NoC arbiters and the
  memory-controller policies (Policy 1 / Policy 2) in :mod:`repro.noc` and
  :mod:`repro.memctrl`; :mod:`repro.core.framework` wires monitoring and
  adaptation onto a built system and records the NPI traces the paper plots.
"""

from repro.core.adaptation import PriorityAdapter
from repro.core.framework import SaraFramework
from repro.core.npi import (
    BandwidthMeter,
    BufferOccupancyMeter,
    FrameProgressMeter,
    LatencyMeter,
    PerformanceMeter,
    ProcessingTimeMeter,
    make_meter,
)
from repro.core.priority import PriorityLookupTable

__all__ = [
    "BandwidthMeter",
    "BufferOccupancyMeter",
    "FrameProgressMeter",
    "LatencyMeter",
    "PerformanceMeter",
    "PriorityAdapter",
    "PriorityLookupTable",
    "ProcessingTimeMeter",
    "SaraFramework",
    "make_meter",
]
