"""Distributed performance meters producing Normalized Performance Indicators.

Every DMA carries exactly one meter.  A meter observes the DMA's completed
transactions (bytes moved and end-to-end latency) and reduces them to the
paper's NPI metric: a fractional number that is at least 1.0 while the core's
own QoS target is met and drops below 1.0 as the core falls behind.

The five meter types correspond to the target-performance types of Table 2:

===================  =====================================================
Meter                Cores (Table 2)
===================  =====================================================
frame progress       GPU, image processor, video codec, rotator, JPEG
latency              DSP, audio
bandwidth            WiFi, USB (and the best-effort CPU)
buffer occupancy     display, camera
processing time      GPS, modem
===================  =====================================================
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.sim.clock import MS, NS
from repro.sim.stats import WindowedRate

#: Reported NPI values are clamped into this range, mirroring the log-scale
#: axis (0.1 .. 10) the paper uses in Figs. 5, 6 and 9.
NPI_CAP = 10.0
NPI_FLOOR = 0.01

#: Default sliding window over which rate- and latency-style meters average.
DEFAULT_WINDOW_PS = 2 * MS


def _clamp_npi(value: float) -> float:
    return max(NPI_FLOOR, min(NPI_CAP, value))


class PerformanceMeter(abc.ABC):
    """Base class for per-DMA performance meters."""

    #: Whether this meter expresses a frame-rate (real-time media) target.
    #: The frame-rate-based QoS baseline only adapts cores of this kind.
    is_frame_based = False

    def __init__(self) -> None:
        self.completed_bytes = 0
        self.completed_transactions = 0

    def record_completion(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        """Feed one completed transaction into the meter."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if latency_ps < 0:
            raise ValueError("latency_ps must be non-negative")
        self.completed_bytes += size_bytes
        self.completed_transactions += 1
        self._record(size_bytes, latency_ps, now_ps)

    def npi(self, now_ps: int) -> float:
        """The clamped NPI at the current time (>= 1.0 means target met)."""
        return _clamp_npi(self.raw_npi(now_ps))

    @abc.abstractmethod
    def raw_npi(self, now_ps: int) -> float:
        """The unclamped NPI value."""

    @abc.abstractmethod
    def describe_target(self) -> str:
        """Human-readable description of the QoS target."""

    @abc.abstractmethod
    def _record(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        """Meter-specific bookkeeping for a completed transaction."""

    @staticmethod
    def _effective_window_ps(window_ps: int, now_ps: int) -> int:
        """Shrink the averaging window at the very start of a run."""
        return max(1, min(window_ps, now_ps)) if now_ps > 0 else 1


class LatencyMeter(PerformanceMeter):
    """Average-latency meter (Eqn. 1): NPI = latency limit / average latency."""

    def __init__(self, limit_ps: int, window_ps: int = DEFAULT_WINDOW_PS) -> None:
        super().__init__()
        if limit_ps <= 0:
            raise ValueError("latency limit must be positive")
        if window_ps <= 0:
            raise ValueError("window must be positive")
        self.limit_ps = limit_ps
        self.window_ps = window_ps
        self._latencies = WindowedRate(window_ps)

    def _record(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        self._latencies.add(now_ps, latency_ps)

    def record_completion(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        # Hot-path override: same checks and bookkeeping as the base class,
        # without the abstract-method dispatch.
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if latency_ps < 0:
            raise ValueError("latency_ps must be non-negative")
        self.completed_bytes += size_bytes
        self.completed_transactions += 1
        self._latencies.add(now_ps, latency_ps)

    def raw_npi(self, now_ps: int) -> float:
        average = self._latencies.window_mean(now_ps)
        if average <= 0:
            # No recent transactions: nothing is being delayed, so the core is
            # healthy by definition.
            return NPI_CAP
        return self.limit_ps / average

    def average_latency_ps(self, now_ps: int) -> float:
        return self._latencies.window_mean(now_ps)

    def describe_target(self) -> str:
        return f"average latency <= {self.limit_ps / NS:.0f} ns"


class BandwidthMeter(PerformanceMeter):
    """Average-bandwidth meter: NPI = achieved bandwidth / target bandwidth."""

    def __init__(
        self, target_bytes_per_s: float, window_ps: int = DEFAULT_WINDOW_PS
    ) -> None:
        super().__init__()
        if target_bytes_per_s <= 0:
            raise ValueError("target bandwidth must be positive")
        if window_ps <= 0:
            raise ValueError("window must be positive")
        self.target_bytes_per_s = target_bytes_per_s
        self.window_ps = window_ps
        self._bytes = WindowedRate(window_ps)

    def _record(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        self._bytes.add(now_ps, size_bytes)

    def record_completion(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        # Hot-path override: see LatencyMeter.record_completion.
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if latency_ps < 0:
            raise ValueError("latency_ps must be non-negative")
        self.completed_bytes += size_bytes
        self.completed_transactions += 1
        self._bytes.add(now_ps, size_bytes)

    def achieved_bytes_per_s(self, now_ps: int) -> float:
        window = self._effective_window_ps(self.window_ps, now_ps)
        return self._bytes.window_total(now_ps) / (window / 1e12)

    def raw_npi(self, now_ps: int) -> float:
        return self.achieved_bytes_per_s(now_ps) / self.target_bytes_per_s

    def describe_target(self) -> str:
        return f"bandwidth >= {self.target_bytes_per_s / 1e6:.0f} MB/s"


class FrameProgressMeter(PerformanceMeter):
    """Frame-progress meter (Eqn. 2): NPI = frame progress / reference progress.

    Frame progress is the fraction of the current frame's data already
    transferred; the reference progress grows linearly from 0 to 1 across the
    frame period, so the NPI stays above 1 exactly while the core is on track
    to finish its frame before the deadline.
    """

    is_frame_based = True

    def __init__(
        self,
        bytes_per_frame: int,
        frame_period_ps: int,
        start_offset_ps: int = 0,
        epsilon: float = 0.02,
    ) -> None:
        super().__init__()
        if bytes_per_frame <= 0:
            raise ValueError("bytes_per_frame must be positive")
        if frame_period_ps <= 0:
            raise ValueError("frame_period_ps must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.bytes_per_frame = bytes_per_frame
        self.frame_period_ps = frame_period_ps
        self.start_offset_ps = start_offset_ps
        self.epsilon = epsilon
        self._frame_index = 0
        self._frame_bytes = 0
        # End of the current frame; the hot-path roll check is a single
        # integer compare against this instead of a floordiv per call.
        self._frame_end_ps = start_offset_ps + frame_period_ps
        self.frames_completed = 0
        self.frames_missed = 0

    def _frame_of(self, now_ps: int) -> int:
        return max(0, (now_ps - self.start_offset_ps) // self.frame_period_ps)

    def _roll_frame(self, now_ps: int) -> None:
        if now_ps < self._frame_end_ps:
            return
        frame = self._frame_of(now_ps)
        if frame != self._frame_index:
            if self._frame_bytes >= self.bytes_per_frame:
                self.frames_completed += 1
            else:
                self.frames_missed += 1
            self._frame_index = frame
            self._frame_bytes = 0
        self._frame_end_ps = self.start_offset_ps + (frame + 1) * self.frame_period_ps

    def _record(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        self._roll_frame(now_ps)
        self._frame_bytes += size_bytes

    def record_completion(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        # Hot-path override: see LatencyMeter.record_completion.
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if latency_ps < 0:
            raise ValueError("latency_ps must be non-negative")
        self.completed_bytes += size_bytes
        self.completed_transactions += 1
        self._roll_frame(now_ps)
        self._frame_bytes += size_bytes

    def frame_progress(self, now_ps: int) -> float:
        """Fraction of the current frame's data already transferred."""
        self._roll_frame(now_ps)
        return min(1.0, self._frame_bytes / self.bytes_per_frame)

    def reference_progress(self, now_ps: int) -> float:
        """The linearly growing reference the progress is compared against."""
        self._roll_frame(now_ps)
        elapsed = (now_ps - self.start_offset_ps) - self._frame_index * self.frame_period_ps
        return min(1.0, max(0.0, elapsed / self.frame_period_ps))

    def raw_npi(self, now_ps: int) -> float:
        # One roll, then both terms computed with the exact arithmetic of
        # frame_progress / reference_progress (results are bit-identical;
        # this just avoids rolling and dispatching twice per reading).
        self._roll_frame(now_ps)
        progress = min(1.0, self._frame_bytes / self.bytes_per_frame)
        elapsed = (now_ps - self.start_offset_ps) - self._frame_index * self.frame_period_ps
        reference = min(1.0, max(0.0, elapsed / self.frame_period_ps))
        return (progress + self.epsilon) / (reference + self.epsilon)

    def describe_target(self) -> str:
        fps = 1e12 / self.frame_period_ps
        return f"frame rate {fps:.0f} fps ({self.bytes_per_frame} B/frame)"


class BufferOccupancyMeter(PerformanceMeter):
    """Buffer-occupancy meter (Eqn. 3): NPI = refill rate / drain rate.

    Models the display read buffer (drained by the panel at a constant rate,
    refilled by the DMA from DRAM) and, symmetrically, the camera write buffer
    (filled by the sensor, drained towards DRAM).  The NPI compares how fast
    the DMA is actually moving data against the externally imposed rate; the
    simulated occupancy level and underrun count are tracked for reporting.
    """

    def __init__(
        self,
        rate_bytes_per_s: float,
        buffer_bytes: int = 2 * 1024 * 1024,
        initial_fraction: float = 0.5,
        window_ps: int = DEFAULT_WINDOW_PS,
    ) -> None:
        super().__init__()
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer size must be positive")
        if not 0 <= initial_fraction <= 1:
            raise ValueError("initial_fraction must be within [0, 1]")
        if window_ps <= 0:
            raise ValueError("window must be positive")
        self.rate_bytes_per_s = rate_bytes_per_s
        self.buffer_bytes = buffer_bytes
        self.initial_occupancy = initial_fraction * buffer_bytes
        self.window_ps = window_ps
        self._refills = WindowedRate(window_ps)
        self._occupancy = self.initial_occupancy
        self._last_update_ps = 0
        self.underruns = 0

    def _drain(self, now_ps: int) -> None:
        elapsed = now_ps - self._last_update_ps
        if elapsed <= 0:
            return
        drained = self.rate_bytes_per_s * (elapsed / 1e12)
        before = self._occupancy
        self._occupancy = max(0.0, self._occupancy - drained)
        if before > 0 and self._occupancy == 0.0:
            self.underruns += 1
        self._last_update_ps = now_ps

    def _record(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        self._drain(now_ps)
        self._refills.add(now_ps, size_bytes)
        self._occupancy = min(self.buffer_bytes, self._occupancy + size_bytes)

    def record_completion(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        # Hot-path override: see LatencyMeter.record_completion.
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if latency_ps < 0:
            raise ValueError("latency_ps must be non-negative")
        self.completed_bytes += size_bytes
        self.completed_transactions += 1
        self._drain(now_ps)
        self._refills.add(now_ps, size_bytes)
        self._occupancy = min(self.buffer_bytes, self._occupancy + size_bytes)

    def occupancy_fraction(self, now_ps: int) -> float:
        self._drain(now_ps)
        return self._occupancy / self.buffer_bytes

    def raw_npi(self, now_ps: int) -> float:
        self._drain(now_ps)
        window = self._effective_window_ps(self.window_ps, now_ps)
        refill_rate = self._refills.window_total(now_ps) / (window / 1e12)
        return refill_rate / self.rate_bytes_per_s

    def describe_target(self) -> str:
        return (
            f"sustain {self.rate_bytes_per_s / 1e6:.0f} MB/s without "
            f"draining the {self.buffer_bytes // 1024} KiB buffer"
        )


class ProcessingTimeMeter(PerformanceMeter):
    """Processing-time meter (GPS, modem).

    A batch of data arrives every processing window and must be fully
    transferred before the window ends.  The NPI compares the fraction of the
    batch already moved against the fraction of the window already elapsed —
    the same construction as frame progress, but on the core's own processing
    deadline rather than the display frame rate.
    """

    def __init__(
        self,
        bytes_per_window: int,
        window_ps: int,
        epsilon: float = 0.02,
    ) -> None:
        super().__init__()
        if bytes_per_window <= 0:
            raise ValueError("bytes_per_window must be positive")
        if window_ps <= 0:
            raise ValueError("window_ps must be positive")
        self._progress = FrameProgressMeter(
            bytes_per_frame=bytes_per_window,
            frame_period_ps=window_ps,
            epsilon=epsilon,
        )
        self.window_ps = window_ps
        self.bytes_per_window = bytes_per_window

    def _record(self, size_bytes: int, latency_ps: int, now_ps: int) -> None:
        self._progress.record_completion(size_bytes, latency_ps, now_ps)

    def raw_npi(self, now_ps: int) -> float:
        return self._progress.raw_npi(now_ps)

    @property
    def windows_missed(self) -> int:
        return self._progress.frames_missed

    def describe_target(self) -> str:
        return (
            f"process {self.bytes_per_window} B within every "
            f"{self.window_ps / MS:.1f} ms window"
        )


def make_meter(
    meter_type: str,
    average_bytes_per_s: float,
    frame_period_ps: int,
    target_bytes_per_s: Optional[float] = None,
    latency_limit_ns: Optional[float] = None,
    window_ps: Optional[int] = None,
) -> PerformanceMeter:
    """Factory building the right meter for a DMA specification.

    ``average_bytes_per_s`` is the DMA's offered traffic rate; frame-progress,
    occupancy and processing-time targets are derived from it unless an
    explicit ``target_bytes_per_s`` is given.
    """
    if average_bytes_per_s <= 0:
        raise ValueError("average_bytes_per_s must be positive")
    target = target_bytes_per_s or average_bytes_per_s
    if meter_type == "latency":
        if latency_limit_ns is None:
            raise ValueError("latency meter requires latency_limit_ns")
        return LatencyMeter(limit_ps=round(latency_limit_ns * NS))
    if meter_type == "bandwidth":
        return BandwidthMeter(target_bytes_per_s=target)
    if meter_type == "frame_progress":
        bytes_per_frame = max(1, round(target * frame_period_ps / 1e12))
        return FrameProgressMeter(
            bytes_per_frame=bytes_per_frame, frame_period_ps=frame_period_ps
        )
    if meter_type == "occupancy":
        return BufferOccupancyMeter(rate_bytes_per_s=target)
    if meter_type == "processing_time":
        period = window_ps or frame_period_ps
        bytes_per_window = max(1, round(target * period / 1e12))
        return ProcessingTimeMeter(bytes_per_window=bytes_per_window, window_ps=period)
    raise ValueError(f"unknown meter type '{meter_type}'")
