"""Packets carried by the on-chip network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.memctrl.transaction import Transaction


@dataclass(eq=False)
class Packet:
    """A memory transaction in flight through the NoC.

    The packet records the time it entered the network and every router it
    traversed, which the analysis layer uses to attribute interconnect latency
    separately from DRAM latency.

    Packets compare by identity (``eq=False``); the generated ``__eq__``
    recursed into the wrapped transaction on every port-queue membership
    test in the routers.
    """

    transaction: Transaction
    injected_ps: int
    hops: List[str] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return self.transaction.size_bytes

    @property
    def priority(self) -> int:
        return self.transaction.priority

    def record_hop(self, router_name: str) -> None:
        self.hops.append(router_name)

    def network_latency_ps(self, delivered_ps: int) -> int:
        """Time spent inside the NoC from injection to delivery."""
        if delivered_ps < self.injected_ps:
            raise ValueError("delivery cannot precede injection")
        return delivered_ps - self.injected_ps
