"""Point-to-point NoC links with finite bandwidth."""

from __future__ import annotations

from repro.sim.clock import NS


class Link:
    """A link characterised by its bandwidth in bytes per nanosecond."""

    def __init__(self, name: str, bytes_per_ns: float) -> None:
        if bytes_per_ns <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bytes_per_ns}")
        self.name = name
        self.bytes_per_ns = bytes_per_ns
        self.busy_until_ps = 0
        self.bytes_transferred = 0
        # Payload sizes are fixed per DMA, so a link only ever sees a handful
        # of distinct sizes; memoising the serialisation delay turns the
        # per-reserve float division into a dict hit.
        self._time_cache: dict = {}

    def transfer_time_ps(self, size_bytes: int) -> int:
        """Serialisation delay of a payload on this link."""
        time_ps = self._time_cache.get(size_bytes)
        if time_ps is None:
            if size_bytes <= 0:
                raise ValueError(f"payload size must be positive, got {size_bytes}")
            time_ps = max(1, round(size_bytes / self.bytes_per_ns * NS))
            self._time_cache[size_bytes] = time_ps
        return time_ps

    def reserve(self, now_ps: int, size_bytes: int) -> int:
        """Occupy the link for one payload; returns the transfer end time."""
        busy = self.busy_until_ps
        end = (now_ps if now_ps >= busy else busy) + self.transfer_time_ps(size_bytes)
        self.busy_until_ps = end
        self.bytes_transferred += size_bytes
        return end

    def utilisation(self, elapsed_ps: int) -> float:
        """Fraction of elapsed time the link spent transferring data."""
        if elapsed_ps <= 0:
            raise ValueError("elapsed_ps must be positive")
        busy = self.bytes_transferred / self.bytes_per_ns * NS
        return min(1.0, busy / elapsed_ps)
