"""Store-and-forward router with per-port queues and arbitrated switch allocation."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.noc.arbiter import NocArbiter
from repro.noc.link import Link
from repro.noc.packet import Packet
from repro.sim.clock import NS
from repro.sim.engine import Engine

PacketSink = Callable[[Packet], None]


class Router:
    """One router (switch) of the NoC tree.

    Packets arrive on named input ports, wait in per-port queues, and compete
    for the single output link.  When the link is idle the arbiter picks the
    winning packet among everything queued — modelling per-priority virtual
    channels, so an urgent packet is never stuck behind a bulk transfer that
    happens to share its input port.  The winner occupies the link for its
    serialisation delay plus the router's pipeline latency and is handed to
    the downstream sink (another router or the memory controller).

    The candidate set is maintained incrementally, mirroring the memory
    controller's per-channel index: ``_candidates`` maps transaction uid to
    ``(packet, owning port)`` and is updated on receive and forward, so an
    arbitration reads the queued packets directly instead of rebuilding a
    map of every port queue per decision, and the winner is removed in O(1)
    instead of a linear queue scan.  Selection is unaffected: every policy
    breaks ties on total per-transaction keys (enqueue time, uid), never on
    candidate order, and the parity test in ``tests/test_noc_index_parity.py``
    asserts bit-identical results against a rebuild-per-arbitration reference.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        arbiter: NocArbiter,
        output_link: Link,
        sink: Optional[PacketSink] = None,
        latency_ns: float = 5.0,
    ) -> None:
        if latency_ns < 0:
            raise ValueError("router latency must be non-negative")
        self.name = name
        self.engine = engine
        self.arbiter = arbiter
        self.output_link = output_link
        self.latency_ps = round(latency_ns * NS)
        self._sink = sink
        # Per-port insertion-ordered queues (uid -> packet) plus the flat
        # incrementally maintained candidate index over all ports.
        self._ports: Dict[str, Dict[int, Packet]] = {}
        self._candidates: Dict[int, Tuple[Packet, Dict[int, Packet]]] = {}
        self._busy = False
        self._gate: Optional[Callable[[], bool]] = None
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.stalled_attempts = 0

    def set_sink(self, sink: PacketSink) -> None:
        """Connect the router's output to its downstream consumer."""
        self._sink = sink

    def set_gate(self, gate: Callable[[], bool]) -> None:
        """Install a back-pressure gate.

        While the gate returns False the router keeps its packets queued at
        the input ports; :meth:`kick` re-arbitrates once the downstream
        resource (e.g. the memory controller's entry pool) has space again.
        """
        self._gate = gate

    def kick(self) -> None:
        """Re-attempt switch allocation (called when back-pressure releases)."""
        self._try_forward()

    def add_port(self, port_name: str) -> None:
        """Declare an input port; receiving on an undeclared port also creates it."""
        self._ports.setdefault(port_name, {})

    def receive(self, port_name: str, packet: Packet) -> None:
        """Accept a packet on an input port and try to allocate the switch."""
        port = self._ports.setdefault(port_name, {})
        uid = packet.transaction.uid
        port[uid] = packet
        self._candidates[uid] = (packet, port)
        self._try_forward()

    def occupancy(self) -> int:
        """Total packets waiting across all input ports."""
        return len(self._candidates)

    def _try_forward(self) -> None:
        if self._busy or self._sink is None:
            return
        if not self._candidates:
            return
        if self._gate is not None and not self._gate():
            self.stalled_attempts += 1
            return
        chosen_txn = self.arbiter.select(
            [packet.transaction for packet, _ in self._candidates.values()],
            self.engine.now_ps,
        )
        packet, port = self._candidates.pop(chosen_txn.uid)
        del port[chosen_txn.uid]
        self._busy = True
        finish_ps = self.output_link.reserve(self.engine.now_ps, packet.size_bytes)
        self.engine.schedule_at(finish_ps + self.latency_ps, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        packet.record_hop(self.name)
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size_bytes
        self._busy = False
        sink = self._sink
        if sink is not None:
            sink(packet)
        self._try_forward()
