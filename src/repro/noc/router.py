"""Store-and-forward router with per-port queues and arbitrated switch allocation."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.memctrl.columnar import ColumnarStore, make_selector
from repro.noc.arbiter import NocArbiter
from repro.noc.link import Link
from repro.noc.packet import Packet
from repro.sim.clock import NS
from repro.sim.engine import Engine

PacketSink = Callable[[Packet], None]


class Router:
    """One router (switch) of the NoC tree.

    Packets arrive on named input ports, wait in per-port queues, and compete
    for the single output link.  When the link is idle the arbiter picks the
    winning packet among everything queued — modelling per-priority virtual
    channels, so an urgent packet is never stuck behind a bulk transfer that
    happens to share its input port.  The winner occupies the link for its
    serialisation delay plus the router's pipeline latency and is handed to
    the downstream sink (another router or the memory controller).

    The candidate set is maintained incrementally, mirroring the memory
    controller's per-channel index: ``_candidates`` maps transaction uid to
    ``(packet, owning port)`` and is updated on receive and forward, so an
    arbitration reads the queued packets directly instead of rebuilding a
    map of every port queue per decision, and the winner is removed in O(1)
    instead of a linear queue scan.  Selection is unaffected: every policy
    breaks ties on total per-transaction keys (enqueue time, uid), never on
    candidate order, and the parity test in ``tests/test_noc_index_parity.py``
    asserts bit-identical results against a rebuild-per-arbitration reference.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        arbiter: NocArbiter,
        output_link: Link,
        sink: Optional[PacketSink] = None,
        latency_ns: float = 5.0,
    ) -> None:
        if latency_ns < 0:
            raise ValueError("router latency must be non-negative")
        self.name = name
        self.engine = engine
        self.arbiter = arbiter
        self.output_link = output_link
        self.latency_ps = round(latency_ns * NS)
        self._sink = sink
        # Per-port insertion-ordered queues (uid -> packet) plus the flat
        # incrementally maintained candidate index over all ports.
        self._ports: Dict[str, Dict[int, Packet]] = {}
        self._candidates: Dict[int, Tuple[Packet, Dict[int, Packet]]] = {}
        self._busy = False
        self._gate: Optional[Callable[[], bool]] = None
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.stalled_attempts = 0

    def set_sink(self, sink: PacketSink) -> None:
        """Connect the router's output to its downstream consumer."""
        self._sink = sink

    def set_gate(self, gate: Callable[[], bool]) -> None:
        """Install a back-pressure gate.

        While the gate returns False the router keeps its packets queued at
        the input ports; :meth:`kick` re-arbitrates once the downstream
        resource (e.g. the memory controller's entry pool) has space again.
        """
        self._gate = gate

    def kick(self) -> None:
        """Re-attempt switch allocation (called when back-pressure releases)."""
        self._try_forward()

    def add_port(self, port_name: str) -> None:
        """Declare an input port; receiving on an undeclared port also creates it."""
        self._ports.setdefault(port_name, {})

    def receive(self, port_name: str, packet: Packet) -> None:
        """Accept a packet on an input port and try to allocate the switch."""
        port = self._ports.setdefault(port_name, {})
        uid = packet.transaction.uid
        port[uid] = packet
        self._candidates[uid] = (packet, port)
        self._try_forward()

    def occupancy(self) -> int:
        """Total packets waiting across all input ports."""
        return len(self._candidates)

    def _try_forward(self) -> None:
        if self._busy or self._sink is None:
            return
        if not self._candidates:
            return
        if self._gate is not None and not self._gate():
            self.stalled_attempts += 1
            return
        chosen_txn = self.arbiter.select(
            [packet.transaction for packet, _ in self._candidates.values()],
            self.engine.now_ps,
        )
        packet, port = self._candidates.pop(chosen_txn.uid)
        del port[chosen_txn.uid]
        self._busy = True
        finish_ps = self.output_link.reserve(self.engine.now_ps, packet.size_bytes)
        self.engine.schedule_at(finish_ps + self.latency_ps, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        packet.record_hop(self.name)
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size_bytes
        self._busy = False
        sink = self._sink
        if sink is not None:
            sink(packet)
        self._try_forward()


class BatchedRouter(Router):
    """The batched kernel's router: packetless, with columnar arbitration.

    Same arbitration semantics, link reservation, gate handling and
    statistics as :class:`Router`, with two structural changes:

    * transactions traverse the NoC bare instead of wrapped in
      :class:`~repro.noc.packet.Packet` objects (one allocation per hop
      saved; the per-hop trace only ever fed debugging);
    * the candidate set lives in a
      :class:`~repro.memctrl.columnar.ColumnarStore` in unsorted mode
      (arrival order at a router does not track age), so arbitration for the
      built-in policies is a masked vector reduction.  Policies without a
      vector path get the same insertion-ordered candidate list the scalar
      router would build.

    Only used in topologies built entirely from batched routers — the sinks
    wired by the topology builders are payload-opaque, so the bare
    transaction flows through to the network's controller sink.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        arbiter: NocArbiter,
        output_link: Link,
        sink: Optional[PacketSink] = None,
        latency_ns: float = 5.0,
    ) -> None:
        super().__init__(name, engine, arbiter, output_link, sink, latency_ns)
        # Optimistically sorted: a leaf (cluster) router receives transactions
        # in creation order because DMAs inject synchronously at creation, so
        # its store stays on the O(1)/early-exit "oldest is the head" paths.
        # Interior routers (the root) merge links of different speeds, arrival
        # order diverges from age order, and the store's own push guard
        # degrades them to the scan/vector paths — selection results are
        # identical either way.
        self._selector = make_selector(arbiter.policy)
        self._store = ColumnarStore.for_selector(
            self._selector, codebook={}, sorted_mode=True, track_rows=False
        )
        self._serve_direct = getattr(self._selector, "serve_direct", None)

    def receive(self, port_name: str, transaction) -> None:
        """Accept a transaction on an input port and try to allocate the switch."""
        store = self._store
        if not self._busy and not store.live and self._sink is not None:
            # Empty-idle bypass: the arbitration over a one-candidate set is
            # trivially this transaction, so skip the store round-trip and
            # only commit the selector's policy state.  Net state changes
            # (gate stall accounting included) are identical to the
            # push + _try_forward path.
            if self._gate is not None and not self._gate():
                self.stalled_attempts += 1
                store.push(transaction)
                return
            serve_direct = self._serve_direct
            engine = self.engine
            if serve_direct is not None and serve_direct(
                store, transaction, engine._now_ps
            ):
                self._busy = True
                finish_ps = self.output_link.reserve(
                    engine._now_ps, transaction.size_bytes
                )
                engine.schedule_call(
                    finish_ps + self.latency_ps, self._deliver, (transaction,)
                )
                return
        store.push(transaction)
        if not self._busy:
            self._try_forward()

    def occupancy(self) -> int:
        """Total transactions waiting across all input ports."""
        return self._store.live

    def kick(self) -> None:
        """Re-attempt switch allocation (called when back-pressure releases)."""
        if not self._busy and self._store.live:
            self._try_forward()

    def _try_forward(self) -> None:
        if self._busy or self._sink is None:
            return
        store = self._store
        if not store.live:
            return
        if self._gate is not None and not self._gate():
            self.stalled_attempts += 1
            return
        engine = self.engine
        selector = self._selector
        if selector is not None:
            index = selector.select(store, engine._now_ps)
            transaction = store.objs[index]
        else:
            transaction = self.arbiter.select(
                store.fallback_candidates(), engine._now_ps
            )
            index = store.index_of_uid(transaction.uid)
        store.remove_index(index)
        self._busy = True
        finish_ps = self.output_link.reserve(engine._now_ps, transaction.size_bytes)
        # Deliveries are never cancelled, so skip the Event handle entirely.
        engine.schedule_call(
            finish_ps + self.latency_ps, self._deliver, (transaction,)
        )

    def _deliver(self, transaction) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += transaction.size_bytes
        self._busy = False
        sink = self._sink
        if sink is not None:
            sink(transaction)
        if self._store.live and not self._busy:
            self._try_forward()
