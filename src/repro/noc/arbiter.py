"""Switch-allocation arbiters for NoC routers.

Routers reuse the memory-controller policy family so that the whole memory
system applies one consistent QoS discipline, exactly as the paper requires
("the QoS provided in the memory controller could be deteriorated by the
interconnect if it is not applying the same QoS policy").
"""

from __future__ import annotations

from typing import List, Union

from repro.memctrl.policies import make_policy
from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class NocArbiter:
    """Wraps a scheduling policy for use as a router switch allocator.

    Row-buffer state is meaningless inside the network, so the arbitration
    context always reports "no row hit"; policies that rely on row state
    (FR-FCFS, QoS-RB) therefore degrade gracefully to their FCFS / priority
    behaviour when used inside a router.
    """

    def __init__(self, policy: Union[str, SchedulingPolicy]) -> None:
        if isinstance(policy, SchedulingPolicy):
            self._policy = policy
        else:
            self._policy = make_policy(policy)

    @property
    def name(self) -> str:
        return self._policy.name

    @property
    def policy(self) -> SchedulingPolicy:
        """The wrapped policy instance (the batched router builds its
        vectorized selector around it so round-robin state stays shared)."""
        return self._policy

    def select(self, candidates: List[Transaction], now_ps: int) -> Transaction:
        """Choose the next transaction to cross the switch."""
        if not candidates:
            raise ValueError("arbiter asked to select from an empty candidate list")
        context = SchedulingContext(
            now_ps=now_ps, is_row_hit=lambda _transaction: False, aging=None
        )
        return self._policy.select(candidates, context)
