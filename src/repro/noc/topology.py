"""Tree-topology builder for the MPSoC interconnect.

The default platform uses the two-level tree sketched in Fig. 1 of the paper:
DMAs inject into their cluster router (compute, media or system cluster) and
cluster routers feed a root router sitting in front of the memory controller.
Cluster links are narrower than the root link, so cores of one cluster can
interfere with each other (e.g. the USB overwhelming the GPS on the system
interconnect under FCFS) before DRAM even becomes the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Type

from repro.noc.arbiter import NocArbiter
from repro.noc.link import Link
from repro.noc.router import Router
from repro.sim.engine import Engine


@dataclass(frozen=True)
class ClusterSpec:
    """Description of one cluster router."""

    name: str
    link_bytes_per_ns: float
    members: tuple


@dataclass
class TreeTopology:
    """A built two-level router tree."""

    root: Router
    clusters: Dict[str, Router] = field(default_factory=dict)
    cluster_of: Dict[str, str] = field(default_factory=dict)

    def cluster_for(self, core_name: str) -> Router:
        """The cluster router a given core injects into."""
        try:
            cluster_name = self.cluster_of[core_name]
        except KeyError:
            raise KeyError(f"core '{core_name}' is not attached to any cluster") from None
        return self.clusters[cluster_name]

    def routers(self) -> List[Router]:
        return [self.root] + list(self.clusters.values())


def build_tree(
    engine: Engine,
    cluster_specs: List[ClusterSpec],
    arbitration: str,
    root_link_bytes_per_ns: float,
    router_latency_ns: float,
    router_cls: Type[Router] = Router,
) -> TreeTopology:
    """Build the two-level tree used by the default platform.

    ``router_cls`` selects the router implementation — the batched kernel
    passes :class:`~repro.noc.router.BatchedRouter`; every router in a
    topology must be of the same class because the inter-router sinks carry
    whatever payload the class forwards (packets or bare transactions).
    """
    if not cluster_specs:
        raise ValueError("at least one cluster is required")
    root = router_cls(
        name="root",
        engine=engine,
        arbiter=NocArbiter(arbitration),
        output_link=Link("root-to-mc", root_link_bytes_per_ns),
        latency_ns=router_latency_ns,
    )
    topology = TreeTopology(root=root)
    for spec in cluster_specs:
        if spec.name in topology.clusters:
            raise ValueError(f"duplicate cluster name '{spec.name}'")
        cluster = router_cls(
            name=spec.name,
            engine=engine,
            arbiter=NocArbiter(arbitration),
            output_link=Link(f"{spec.name}-to-root", spec.link_bytes_per_ns),
            latency_ns=router_latency_ns,
        )
        cluster.set_sink(partial(root.receive, spec.name))
        root.add_port(spec.name)
        topology.clusters[spec.name] = cluster
        for member in spec.members:
            if member in topology.cluster_of:
                raise ValueError(f"core '{member}' appears in more than one cluster")
            topology.cluster_of[member] = spec.name
            cluster.add_port(member)
    return topology
