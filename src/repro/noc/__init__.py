"""On-chip network substrate.

The NoC is modelled as a tree of store-and-forward routers.  Each router owns
per-input-port queues, an output link of finite bandwidth and an arbiter that
performs switch allocation with the same policy family used in the memory
controller (FCFS, round-robin or priority-based), which is how the paper's
"distributed system response" extends into the interconnect.
"""

from repro.noc.arbiter import NocArbiter
from repro.noc.link import Link
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.router import Router
from repro.noc.topology import ClusterSpec, TreeTopology

__all__ = [
    "ClusterSpec",
    "Link",
    "Network",
    "NocArbiter",
    "Packet",
    "Router",
    "TreeTopology",
]
