"""2D-mesh topology with dimension-ordered (XY) routing toward the memory controller.

The default platform uses the two-level tree of Fig. 1, but many MPSoCs route
memory traffic over a mesh.  Because every memory transaction in this system
targets the single memory controller, dimension-ordered routing degenerates
into a fixed next-hop per router: packets first travel along X toward column
0 and then along Y toward row 0, where the egress router feeds the memory
controller.  That property lets the mesh reuse the single-output
:class:`~repro.noc.router.Router`: each node's output link points at its XY
next hop, and the egress node's output link is the connection to the memory
controller.

Clusters (the same :class:`~repro.noc.topology.ClusterSpec` list the tree
uses) are placed on mesh nodes row-major, skipping the egress node, so cores
of different clusters traverse different numbers of hops — distant clusters
see more serialisation and more interference, which is the behaviour a mesh
adds over the tree."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Type

from repro.noc.arbiter import NocArbiter
from repro.noc.link import Link
from repro.noc.router import Router
from repro.noc.topology import ClusterSpec
from repro.sim.engine import Engine

Coordinate = Tuple[int, int]


def xy_next_hop(node: Coordinate) -> Coordinate:
    """The dimension-ordered next hop toward the egress node (0, 0)."""
    x, y = node
    if x < 0 or y < 0:
        raise ValueError("mesh coordinates must be non-negative")
    if x > 0:
        return (x - 1, y)
    if y > 0:
        return (x, y - 1)
    raise ValueError("the egress node (0, 0) has no next hop")


def xy_path(node: Coordinate) -> List[Coordinate]:
    """Every node a packet injected at ``node`` traverses, egress included."""
    path = [node]
    current = node
    while current != (0, 0):
        current = xy_next_hop(current)
        path.append(current)
    return path


@dataclass
class MeshTopology:
    """A built 2D mesh of routers draining into the memory controller.

    ``root`` is the egress router at (0, 0): its output link is the memory
    controller connection, and the system builder installs the controller
    back-pressure gate on it exactly as it does on the tree's root router.
    """

    columns: int
    rows: int
    nodes: Dict[Coordinate, Router] = field(default_factory=dict)
    cluster_node: Dict[str, Coordinate] = field(default_factory=dict)
    cluster_of: Dict[str, str] = field(default_factory=dict)

    @property
    def root(self) -> Router:
        return self.nodes[(0, 0)]

    def cluster_for(self, core_name: str) -> Router:
        """The mesh node router a given core injects into."""
        try:
            cluster_name = self.cluster_of[core_name]
        except KeyError:
            raise KeyError(f"core '{core_name}' is not attached to any cluster") from None
        return self.nodes[self.cluster_node[cluster_name]]

    def node_of_cluster(self, cluster_name: str) -> Coordinate:
        try:
            return self.cluster_node[cluster_name]
        except KeyError:
            raise KeyError(f"unknown cluster '{cluster_name}'") from None

    def hops_to_controller(self, cluster_name: str) -> int:
        """Number of router traversals from a cluster's node to the controller."""
        return len(xy_path(self.node_of_cluster(cluster_name)))

    def routers(self) -> List[Router]:
        return [self.nodes[coord] for coord in sorted(self.nodes)]


def _grid_dimensions(cluster_count: int, columns: int) -> Tuple[int, int]:
    """Columns and rows needed to place every cluster plus the egress node."""
    if columns <= 0:
        raise ValueError("columns must be positive")
    nodes_needed = cluster_count + 1  # clusters plus the reserved egress node
    rows = max(1, math.ceil(nodes_needed / columns))
    return columns, rows


def build_mesh(
    engine: Engine,
    cluster_specs: List[ClusterSpec],
    arbitration: str,
    root_link_bytes_per_ns: float,
    router_latency_ns: float,
    columns: int = 2,
    router_cls: Type[Router] = Router,
) -> MeshTopology:
    """Build a mesh with one node per cluster plus the egress node at (0, 0).

    ``router_cls`` selects the router implementation (see
    :func:`~repro.noc.topology.build_tree`)."""
    if not cluster_specs:
        raise ValueError("at least one cluster is required")
    columns, rows = _grid_dimensions(len(cluster_specs), columns)
    topology = MeshTopology(columns=columns, rows=rows)

    # Create every node router.  Link bandwidth: the egress node gets the wide
    # root link (it carries everything); interior nodes inherit the bandwidth
    # of the cluster they host, or the root bandwidth for pure pass-through
    # nodes, so the mesh never throttles below what the tree would.
    coordinates = [(x, y) for y in range(rows) for x in range(columns)]
    cluster_iter = iter(cluster_specs)
    placements: Dict[Coordinate, ClusterSpec] = {}
    for coordinate in coordinates:
        if coordinate == (0, 0):
            continue
        try:
            placements[coordinate] = next(cluster_iter)
        except StopIteration:
            break
    leftover = list(cluster_iter)
    if leftover:
        raise ValueError(
            f"mesh of {columns}x{rows} cannot place {len(cluster_specs)} clusters"
        )

    for coordinate in coordinates:
        spec = placements.get(coordinate)
        if coordinate == (0, 0):
            link = Link("mesh-egress-to-mc", root_link_bytes_per_ns)
        else:
            bandwidth = spec.link_bytes_per_ns if spec else root_link_bytes_per_ns
            next_hop = xy_next_hop(coordinate)
            link = Link(f"mesh-{coordinate}-to-{next_hop}", bandwidth)
        topology.nodes[coordinate] = router_cls(
            name=f"mesh{coordinate[0]}_{coordinate[1]}",
            engine=engine,
            arbiter=NocArbiter(arbitration),
            output_link=link,
            latency_ns=router_latency_ns,
        )

    # Wire each node's output to its XY next hop and declare the matching
    # input port on the receiving side.
    for coordinate, router in topology.nodes.items():
        if coordinate == (0, 0):
            continue
        next_hop = xy_next_hop(coordinate)
        downstream = topology.nodes[next_hop]
        port_name = f"from_{coordinate[0]}_{coordinate[1]}"
        downstream.add_port(port_name)
        router.set_sink(
            lambda packet, _router=downstream, _port=port_name: _router.receive(
                _port, packet
            )
        )

    # Attach clusters and their member cores to their node routers.
    for coordinate, spec in placements.items():
        if spec.name in topology.cluster_node:
            raise ValueError(f"duplicate cluster name '{spec.name}'")
        topology.cluster_node[spec.name] = coordinate
        router = topology.nodes[coordinate]
        for member in spec.members:
            if member in topology.cluster_of:
                raise ValueError(f"core '{member}' appears in more than one cluster")
            topology.cluster_of[member] = spec.name
            router.add_port(member)
    return topology
