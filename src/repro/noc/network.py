"""Network facade: the injection point cores use to reach the memory controller."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type, Union

from repro.memctrl.transaction import Transaction
from repro.noc.mesh import MeshTopology, build_mesh
from repro.noc.packet import Packet
from repro.noc.router import BatchedRouter, Router
from repro.noc.topology import ClusterSpec, TreeTopology, build_tree
from repro.sim.config import NocConfig
from repro.sim.engine import Engine
from repro.sim.stats import RunningMean

TransactionSink = Callable[[Transaction], None]


class Network:
    """The on-chip network connecting DMAs to the memory controller.

    Cores inject transactions via :meth:`inject`; the network wraps them into
    packets, routes them through the routers of the configured topology (the
    default two-level tree of Fig. 1, or a 2D mesh with XY routing), and
    finally hands the transaction to the memory-controller sink.
    """

    #: Router implementation the topology is built from; the batched
    #: subclass overrides this alongside its packetless inject path.
    router_cls: Type[Router] = Router

    def __init__(
        self,
        engine: Engine,
        cluster_specs: List[ClusterSpec],
        config: Optional[NocConfig] = None,
        root_link_bytes_per_ns: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.config = config or NocConfig()
        root_bw = root_link_bytes_per_ns or self.config.link_bytes_per_ns * 4
        self.topology: Union[TreeTopology, MeshTopology]
        if self.config.topology == "mesh":
            self.topology = build_mesh(
                engine,
                cluster_specs,
                arbitration=self.config.arbitration,
                root_link_bytes_per_ns=root_bw,
                router_latency_ns=self.config.router_latency_ns,
                columns=self.config.mesh_columns,
                router_cls=self.router_cls,
            )
        else:
            self.topology = build_tree(
                engine,
                cluster_specs,
                arbitration=self.config.arbitration,
                root_link_bytes_per_ns=root_bw,
                router_latency_ns=self.config.router_latency_ns,
                router_cls=self.router_cls,
            )
        self._sink: Optional[TransactionSink] = None
        self.topology.root.set_sink(self._deliver_to_sink)
        self.injected_packets = 0
        self.network_latency = RunningMean()
        self._delivery_times: Dict[int, int] = {}

    def set_sink(self, sink: TransactionSink) -> None:
        """Connect the network output to the memory controller."""
        self._sink = sink

    def inject(self, core_name: str, transaction: Transaction) -> None:
        """Inject a transaction from a core into its cluster router."""
        if self._sink is None:
            raise RuntimeError("network has no sink; call set_sink() first")
        packet = Packet(transaction=transaction, injected_ps=self.engine.now_ps)
        cluster = self.topology.cluster_for(core_name)
        self.injected_packets += 1
        self._delivery_times[transaction.uid] = self.engine.now_ps
        cluster.receive(core_name, packet)

    def _deliver_to_sink(self, packet: Packet) -> None:
        injected = self._delivery_times.pop(packet.transaction.uid, packet.injected_ps)
        self.network_latency.add(self.engine.now_ps - injected)
        sink = self._sink
        if sink is not None:
            sink(packet.transaction)

    def in_flight(self) -> int:
        """Packets injected but not yet delivered to the memory controller."""
        return len(self._delivery_times)

    def average_latency_ps(self) -> float:
        return self.network_latency.mean


class BatchedNetwork(Network):
    """The batched kernel's network: packetless transport over batched routers.

    Transactions flow through the topology bare — no per-injection
    :class:`~repro.noc.packet.Packet` wrapper — and the injection point caches
    the core-to-router resolution.  Latency accounting and statistics are
    identical to :class:`Network`.
    """

    router_cls = BatchedRouter

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cluster_cache: Dict[str, Router] = {}
        self._in_flight = 0

    def inject(self, core_name: str, transaction: Transaction) -> None:
        """Inject a transaction from a core into its cluster router."""
        if self._sink is None:
            raise RuntimeError("network has no sink; call set_sink() first")
        cluster = self._cluster_cache.get(core_name)
        if cluster is None:
            cluster = self.topology.cluster_for(core_name)
            self._cluster_cache[core_name] = cluster
        self.injected_packets += 1
        self._in_flight += 1
        cluster.receive(core_name, transaction)

    def _deliver_to_sink(self, transaction: Transaction) -> None:
        # A transaction is created and injected at the same timestamp (the
        # DMA issue loop injects synchronously), so created_ps IS the
        # injection time — no per-transaction timestamp map needed.
        self._in_flight -= 1
        self.network_latency.add(self.engine._now_ps - transaction.created_ps)
        sink = self._sink
        if sink is not None:
            sink(transaction)

    def in_flight(self) -> int:
        """Transactions injected but not yet delivered to the controller."""
        return self._in_flight
