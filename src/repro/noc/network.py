"""Network facade: the injection point cores use to reach the memory controller."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.memctrl.transaction import Transaction
from repro.noc.mesh import MeshTopology, build_mesh
from repro.noc.packet import Packet
from repro.noc.topology import ClusterSpec, TreeTopology, build_tree
from repro.sim.config import NocConfig
from repro.sim.engine import Engine
from repro.sim.stats import RunningMean

TransactionSink = Callable[[Transaction], None]


class Network:
    """The on-chip network connecting DMAs to the memory controller.

    Cores inject transactions via :meth:`inject`; the network wraps them into
    packets, routes them through the routers of the configured topology (the
    default two-level tree of Fig. 1, or a 2D mesh with XY routing), and
    finally hands the transaction to the memory-controller sink.
    """

    def __init__(
        self,
        engine: Engine,
        cluster_specs: List[ClusterSpec],
        config: Optional[NocConfig] = None,
        root_link_bytes_per_ns: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.config = config or NocConfig()
        root_bw = root_link_bytes_per_ns or self.config.link_bytes_per_ns * 4
        self.topology: Union[TreeTopology, MeshTopology]
        if self.config.topology == "mesh":
            self.topology = build_mesh(
                engine,
                cluster_specs,
                arbitration=self.config.arbitration,
                root_link_bytes_per_ns=root_bw,
                router_latency_ns=self.config.router_latency_ns,
                columns=self.config.mesh_columns,
            )
        else:
            self.topology = build_tree(
                engine,
                cluster_specs,
                arbitration=self.config.arbitration,
                root_link_bytes_per_ns=root_bw,
                router_latency_ns=self.config.router_latency_ns,
            )
        self._sink: Optional[TransactionSink] = None
        self.topology.root.set_sink(self._deliver_to_sink)
        self.injected_packets = 0
        self.network_latency = RunningMean()
        self._delivery_times: Dict[int, int] = {}

    def set_sink(self, sink: TransactionSink) -> None:
        """Connect the network output to the memory controller."""
        self._sink = sink

    def inject(self, core_name: str, transaction: Transaction) -> None:
        """Inject a transaction from a core into its cluster router."""
        if self._sink is None:
            raise RuntimeError("network has no sink; call set_sink() first")
        packet = Packet(transaction=transaction, injected_ps=self.engine.now_ps)
        cluster = self.topology.cluster_for(core_name)
        self.injected_packets += 1
        self._delivery_times[transaction.uid] = self.engine.now_ps
        cluster.receive(core_name, packet)

    def _deliver_to_sink(self, packet: Packet) -> None:
        injected = self._delivery_times.pop(packet.transaction.uid, packet.injected_ps)
        self.network_latency.add(self.engine.now_ps - injected)
        sink = self._sink
        if sink is not None:
            sink(packet.transaction)

    def in_flight(self) -> int:
        """Packets injected but not yet delivered to the memory controller."""
        return len(self._delivery_times)

    def average_latency_ps(self) -> float:
        return self.network_latency.mean
