"""On-disk result cache keyed by a stable hash of the run configuration.

A cache key is the SHA-256 of the canonical JSON form of everything that can
influence an :class:`~repro.system.experiment.ExperimentResult`: the fully
resolved, serialized :class:`~repro.scenario.Scenario` (platform with nested
DRAM timing, controller and NoC configs; workload kind and parameters;
policy; every override baked in), whether the NPI trace is kept, and the
plugin modules the run imports.  Two runs described by the same scenario
therefore share one cache entry, and any field change — a different seed,
one DRAM timing parameter, a new workload parameter — produces a different
key.

Entries are plain JSON files (via :mod:`repro.analysis.serialize`) sharded
into 256 two-hex-digit subdirectories, so a cache directory can be inspected
with a text editor and shipped between machines or CI runs (the tiered CI
pipeline restores it with ``actions/cache``).  Bump
:data:`CACHE_SCHEMA_VERSION` whenever simulation semantics change in a way
that silently alters results; old entries then simply stop matching.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.serialize import (
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.obs import MetricsRegistry
from repro.system.experiment import ExperimentResult

PathLike = Union[str, Path]

#: Version of the simulation semantics baked into every cache key.  Bump it
#: when engine, scheduler or workload changes make previously cached results
#: stale even though the configuration hash is unchanged.  Version 2: cache
#: keys moved from hand-built config fingerprints to serialized scenarios.
CACHE_SCHEMA_VERSION = 2


def _canonical_json(payload: Dict[str, object]) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(fingerprint: Dict[str, object]) -> str:
    """SHA-256 hex digest of a run fingerprint dictionary.

    The fingerprint is produced by :meth:`repro.runner.sweep.RunSpec.fingerprint`;
    the schema version is mixed in here so callers cannot forget it.
    """
    payload = dict(fingerprint)
    payload["cache_schema_version"] = CACHE_SCHEMA_VERSION
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of serialized :class:`ExperimentResult` files.

    The cache counts its own hits, misses and stores, and accumulates the
    wall-clock it spends deserializing (``read_s``) and serializing
    (``write_s``) entries, so sweeps can report both how much work they
    skipped and what the skipping itself cost (the orchestrator surfaces the
    sum as ``SweepStats.serialize_s``).  The counters live in a per-instance
    :class:`~repro.obs.MetricsRegistry` (``cache.metrics``); the historical
    attributes remain as compatibility properties over it.
    """

    def __init__(
        self, directory: PathLike, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.directory = Path(directory)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            "repro_result_cache_hits_total", "Result-cache entries served."
        )
        self._misses = self.metrics.counter(
            "repro_result_cache_misses_total",
            "Result-cache lookups that found no usable entry.",
        )
        self._stores = self.metrics.counter(
            "repro_result_cache_stores_total", "Result-cache entries written."
        )
        self._read_s = self.metrics.counter(
            "repro_result_cache_io_seconds_total",
            "Result-cache (de)serialization wall-clock by direction.",
            direction="read",
        )
        self._write_s = self.metrics.counter(
            "repro_result_cache_io_seconds_total",
            "Result-cache (de)serialization wall-clock by direction.",
            direction="write",
        )

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(float(value))

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(float(value))

    @property
    def stores(self) -> int:
        return int(self._stores.value)

    @stores.setter
    def stores(self, value: int) -> None:
        self._stores.set(float(value))

    @property
    def read_s(self) -> float:
        return self._read_s.value

    @read_s.setter
    def read_s(self, value: float) -> None:
        self._read_s.set(float(value))

    @property
    def write_s(self) -> float:
        return self._write_s.value

    @write_s.setter
    def write_s(self, value: float) -> None:
        self._write_s.set(float(value))

    @property
    def io_s(self) -> float:
        """Total wall-clock this cache has spent on entry (de)serialization."""
        return self.read_s + self.write_s

    def path_for(self, key: str) -> Path:
        """Location of the entry for ``key`` (whether or not it exists)."""
        return self.directory / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[ExperimentResult]:
        """Load a cached result, or ``None`` on a miss or unreadable entry."""
        path = self.path_for(key)
        began = time.perf_counter()
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        finally:
            self.read_s += time.perf_counter() - began
        began = time.perf_counter()
        try:
            result = experiment_result_from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            # A corrupt or stale-schema entry is treated as a miss; the fresh
            # run will overwrite it.
            self.misses += 1
            return None
        finally:
            self.read_s += time.perf_counter() - began
        self.hits += 1
        return result

    def put(self, key: str, result: ExperimentResult, include_trace: bool = True) -> Path:
        """Store a result under ``key`` and return the written path.

        The entry is written to a temporary file and renamed into place so
        that concurrent workers (or an interrupted run) never leave a
        half-written JSON file behind.
        """
        path = self.path_for(key)
        began = time.perf_counter()
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "cache_schema_version": CACHE_SCHEMA_VERSION,
            "result": experiment_result_to_dict(result, include_trace=include_trace),
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, sort_keys=True))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        finally:
            self.write_s += time.perf_counter() - began
        self.stores += 1
        return path

    def keys(self) -> List[str]:
        """Every cache key currently on disk, sorted.

        The results store's ``verify`` cross-checks a manifest's recorded
        keys against this set, so a report whose underlying results were
        evicted is flagged instead of silently trusted.
        """
        if not self.directory.is_dir():
            return []
        return sorted(entry.stem for entry in self.directory.glob("*/*.json"))

    def entries(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*/*.json"):
                entry.unlink()
                removed += 1
        return removed
