"""Sweep orchestration: parallel experiment execution with result caching.

Every figure and table of the paper's evaluation is a composition of
:func:`~repro.system.experiment.run_experiment` calls, and a full benchmark
sweep multiplies cases x policies x frequencies x durations.  This package
turns those compositions into declarative :class:`RunSpec` grids that

* fan out across worker processes (``--jobs``),
* skip any point whose result is already in the on-disk cache
  (``--cache-dir``), keyed by a stable hash of the fully resolved,
  serialized scenario, and
* import each spec's plugin modules inside every worker, so runtime
  registrations (policies, workloads, scenarios) survive ``spawn``.

The sequential path stays byte-identical: a parallel sweep produces exactly
the same :class:`~repro.system.experiment.ExperimentResult` values as running
each spec in-process, because every run is seeded from its own
:class:`~repro.sim.config.SimulationConfig` and shares no state with its
siblings.
"""

from repro.runner.cache import CACHE_SCHEMA_VERSION, ResultCache, cache_key
from repro.runner.executor import (
    RESILIENT_POLICY,
    STRICT_POLICY,
    ExecutionFault,
    Executor,
    FailurePolicy,
    InProcessExecutor,
    LeaseExpiredError,
    PayloadError,
    PoolExecutor,
    QuarantinedPoint,
    SpecTimeoutError,
    WorkerDiedError,
)
from repro.runner.pool import TaskOutcome, WorkerPool, estimate_cost, plan_batches
from repro.runner.queue import QueueExecutor, WorkQueue
from repro.runner.sweep import (
    AblationGrid,
    Observer,
    RunSpec,
    SweepStats,
    compare_policies_specs,
    frequency_sweep_specs,
    run_sweep,
    scenario_grid_specs,
    sweep_compare_policies,
    sweep_frequencies,
    sweep_scenario,
)

__all__ = [
    "AblationGrid",
    "CACHE_SCHEMA_VERSION",
    "ExecutionFault",
    "Executor",
    "FailurePolicy",
    "InProcessExecutor",
    "LeaseExpiredError",
    "Observer",
    "PayloadError",
    "PoolExecutor",
    "QuarantinedPoint",
    "QueueExecutor",
    "RESILIENT_POLICY",
    "ResultCache",
    "RunSpec",
    "STRICT_POLICY",
    "SpecTimeoutError",
    "SweepStats",
    "TaskOutcome",
    "WorkQueue",
    "WorkerDiedError",
    "WorkerPool",
    "cache_key",
    "compare_policies_specs",
    "estimate_cost",
    "frequency_sweep_specs",
    "plan_batches",
    "run_sweep",
    "scenario_grid_specs",
    "sweep_compare_policies",
    "sweep_frequencies",
    "sweep_scenario",
]
