"""The sweep orchestrator: declarative run grids, worker processes, caching.

A sweep is a list of :class:`RunSpec` points.  :func:`run_sweep` resolves
each point against the result cache, fans the remaining cold points out
across ``jobs`` worker processes (``spawn`` start method, so workers never
inherit mutable interpreter state and behave identically on every platform)
and returns results in spec order together with a :class:`SweepStats`
summary.

Every spec references a :class:`~repro.scenario.Scenario` — by catalog name,
file path or as an object — and its cache key is the SHA-256 of the fully
resolved, serialized scenario.  A grid over *platforms and workloads* (not
just numeric knobs) therefore flows through :func:`run_sweep` and its cache
unchanged: one spec per scenario file is all it takes.

Custom policies, workloads and traffic models registered at runtime survive
parallel sweeps through the plugin hook: ``RunSpec.plugin_modules`` names the
modules whose import performs the registrations, and every spawn worker
imports them before executing its spec.

Determinism: a run's randomness is derived entirely from its scenario's
seed, and each worker builds its simulation from scratch from the pickled
spec, so a parallel sweep is bit-identical to running the same specs
sequentially in one process (``tests/test_runner_sweep.py`` asserts this).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runner.cache import ResultCache, cache_key
from repro.scenario import Scenario, get_scenario, load_plugins, resolve_scenario
from repro.sim.config import SimulationConfig
from repro.system.experiment import ExperimentResult, run_experiment


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep: everything :func:`run_experiment` needs.

    ``scenario`` names the baseline; every other field is an override baked
    into the resolved scenario before execution (``settings`` applies
    dotted-path overrides exactly like the CLI's ``--set``).  ``label`` names
    the point in mapping-shaped sweep results; ``seed`` optionally overrides
    the configuration seed, for replication grids that vary nothing else.
    ``plugin_modules`` are imported in every worker process before the run,
    so runtime-registered policies and workloads work under ``--jobs N``.
    """

    scenario: Union[str, Scenario] = "case_a"
    policy: Optional[str] = None
    duration_ps: Optional[int] = None
    traffic_scale: Optional[float] = None
    config: Optional[SimulationConfig] = None
    adaptation_enabled: Optional[bool] = None
    dram_freq_mhz: Optional[float] = None
    dram_model: Optional[str] = None
    keep_trace: bool = True
    seed: Optional[int] = None
    label: Optional[str] = None
    settings: Tuple[Tuple[str, Any], ...] = ()
    plugin_modules: Tuple[str, ...] = ()

    def resolved_scenario(self) -> Scenario:
        """The fully resolved scenario this spec will simulate."""
        return resolve_scenario(
            self.scenario,
            policy=self.policy,
            config=self.config,
            duration_ps=self.duration_ps,
            seed=self.seed,
            traffic_scale=self.traffic_scale,
            adaptation_enabled=self.adaptation_enabled,
            dram_freq_mhz=self.dram_freq_mhz,
            dram_model=self.dram_model,
            settings=self.settings,
        )

    def fingerprint(self) -> Dict[str, object]:
        """Everything that can influence this spec's result, as plain JSON.

        The serialized scenario carries the platform, workload, policy and
        every override, so the cache key is exactly "the scenario that ran".
        """
        return {
            "scenario": self.resolved_scenario().to_dict(),
            "keep_trace": self.keep_trace,
            "plugin_modules": list(self.plugin_modules),
        }

    def key(self) -> str:
        """Stable cache key for this spec."""
        return cache_key(self.fingerprint())

    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        resolved = self.resolved_scenario()
        return f"{resolved.name}/{resolved.policy}"


@dataclass
class SweepStats:
    """What a sweep did: how many points ran, how many the cache served."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    cache_dir: Optional[str] = None

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def summary(self) -> str:
        """One-line human-readable summary for CLI / script output."""
        parts = [
            f"{self.total} run(s)",
            f"{self.cache_hits} cache hit(s)",
            f"{self.executed} executed",
            f"jobs={self.jobs}",
            f"{self.elapsed_s:.2f}s",
        ]
        if self.cache_dir:
            parts.append(f"cache={self.cache_dir}")
        return "sweep: " + ", ".join(parts)


def _execute_spec(spec: RunSpec) -> ExperimentResult:
    """Run one spec in the current process (also the worker entry point).

    Plugin modules are imported first so that registrations (policies,
    workloads, traffic models, scenarios) exist in this process — which is
    what makes runtime registrations visible inside ``spawn`` workers.  The
    resolved scenario already carries every override, so
    :func:`run_experiment` is called with the scenario alone.
    """
    load_plugins(spec.plugin_modules)
    return run_experiment(
        scenario=spec.resolved_scenario(),
        keep_trace=spec.keep_trace,
    )


def run_sweep(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[List[ExperimentResult], SweepStats]:
    """Execute a sweep, reusing cached points and parallelising the rest.

    Parameters
    ----------
    specs:
        The grid points, in the order results should be returned.
    jobs:
        Worker processes for the cold points.  ``1`` (the default) runs
        everything in-process; higher values use a ``spawn`` pool.
    cache / cache_dir:
        An existing :class:`ResultCache`, or a directory path to open one in.
        ``None`` disables caching.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)

    started = time.perf_counter()
    specs = list(specs)
    # Load every spec's plugin modules here in the parent too: computing a
    # spec's cache key resolves its scenario, which may itself be a plugin
    # registration (workers repeat the import for their own process).
    seen_plugins = set()
    for spec in specs:
        fresh = [m for m in spec.plugin_modules if m not in seen_plugins]
        if fresh:
            load_plugins(fresh)
            seen_plugins.update(fresh)
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    stats = SweepStats(
        total=len(specs),
        jobs=jobs,
        cache_dir=str(cache.directory) if cache is not None else None,
    )

    # Identical grid points (same cache key) execute once and share the
    # result, whether or not an on-disk cache is attached.
    cold: List[Tuple[List[int], RunSpec, str]] = []
    cold_by_key: Dict[str, Tuple[List[int], RunSpec, str]] = {}
    for index, spec in enumerate(specs):
        key = spec.key()
        duplicate = cold_by_key.get(key)
        if duplicate is not None:
            duplicate[0].append(index)
            stats.cache_hits += 1
            continue
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                stats.cache_hits += 1
                continue
        entry = ([index], spec, key)
        cold.append(entry)
        cold_by_key[key] = entry

    if cold:
        cold_specs = [spec for _, spec, _ in cold]
        if jobs == 1 or len(cold) == 1:
            cold_results = [_execute_spec(spec) for spec in cold_specs]
        else:
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(jobs, len(cold))) as pool:
                cold_results = pool.map(_execute_spec, cold_specs, chunksize=1)
        for (indices, spec, key), result in zip(cold, cold_results):
            for index in indices:
                results[index] = result
            stats.executed += 1
            if cache is not None:
                cache.put(key, result, include_trace=spec.keep_trace)

    stats.elapsed_s = time.perf_counter() - started
    return list(results), stats  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# Grid builders mirroring repro.system.experiment's sequential helpers
# --------------------------------------------------------------------------- #
def compare_policies_specs(
    policies: Sequence[str],
    scenario: Union[str, Scenario] = "case_a",
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    keep_trace: bool = True,
    plugin_modules: Sequence[str] = (),
) -> List[RunSpec]:
    """One spec per policy on the same scenario (Figs. 5, 6, 8, 9)."""
    base = RunSpec(
        scenario=scenario,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=keep_trace,
        plugin_modules=tuple(plugin_modules),
    )
    return [replace(base, policy=policy, label=policy) for policy in policies]


def frequency_sweep_specs(
    frequencies_mhz: Iterable[float],
    scenario: Union[str, Scenario] = "case_a",
    policy: Optional[str] = None,
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    plugin_modules: Sequence[str] = (),
) -> List[RunSpec]:
    """One spec per DRAM frequency for one policy (Fig. 7)."""
    base = RunSpec(
        scenario=scenario,
        policy=policy,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=False,
        plugin_modules=tuple(plugin_modules),
    )
    return [
        replace(base, dram_freq_mhz=freq, label=f"{freq:g}")
        for freq in frequencies_mhz
    ]


def scenario_grid_specs(
    scenario: Union[str, Scenario],
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    keep_trace: bool = False,
    plugin_modules: Sequence[str] = (),
) -> List[RunSpec]:
    """Expand a scenario's declared sweep axes into one spec per grid point.

    The axes live in the scenario file (``sweep: {"policy": [...], ...}``),
    so a whole experiment grid — over policies, frequencies, workload
    parameters, anything addressable by dotted path — ships as data.
    """
    spec = get_scenario(scenario)
    grid: List[RunSpec] = []
    for point in spec.sweep_points():
        label = ", ".join(f"{axis.split('.')[-1]}={value}" for axis, value in sorted(point.items()))
        grid.append(
            RunSpec(
                scenario=spec,
                duration_ps=duration_ps,
                traffic_scale=traffic_scale,
                keep_trace=keep_trace,
                settings=tuple(sorted(point.items())),
                label=label or spec.name,
                plugin_modules=tuple(plugin_modules),
            )
        )
    return grid


def sweep_compare_policies(
    policies: Sequence[str],
    scenario: Union[str, Scenario] = "case_a",
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    keep_trace: bool = True,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    plugin_modules: Sequence[str] = (),
) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
    """Parallel, cached drop-in for :func:`repro.system.experiment.compare_policies`."""
    specs = compare_policies_specs(
        policies,
        scenario=scenario,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=keep_trace,
        plugin_modules=plugin_modules,
    )
    results, stats = run_sweep(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
    return dict(zip(policies, results)), stats


def sweep_frequencies(
    frequencies_mhz: Iterable[float],
    scenario: Union[str, Scenario] = "case_a",
    policy: Optional[str] = None,
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    plugin_modules: Sequence[str] = (),
) -> Tuple[Dict[float, ExperimentResult], SweepStats]:
    """Parallel, cached drop-in for :func:`repro.system.experiment.frequency_sweep`."""
    frequencies = list(frequencies_mhz)
    specs = frequency_sweep_specs(
        frequencies,
        scenario=scenario,
        policy=policy,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        plugin_modules=plugin_modules,
    )
    results, stats = run_sweep(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
    return dict(zip(frequencies, results)), stats


def sweep_scenario(
    scenario: Union[str, Scenario],
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    plugin_modules: Sequence[str] = (),
) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
    """Run a scenario's declared sweep grid; results keyed by point label."""
    specs = scenario_grid_specs(
        scenario,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        plugin_modules=plugin_modules,
    )
    results, stats = run_sweep(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
    return dict(zip((spec.label or "" for spec in specs), results)), stats


@dataclass
class AblationGrid:
    """A labelled grid of config variations for ablation sweeps.

    Built by the ablation benchmarks: one base spec plus a mapping from label
    to the :class:`SimulationConfig` to substitute.  ``specs()`` yields them
    in insertion order so results line up with the labels.
    """

    base: RunSpec
    variants: Dict[str, SimulationConfig] = field(default_factory=dict)

    def add(self, label: str, config: SimulationConfig) -> None:
        self.variants[label] = config

    def specs(self) -> List[RunSpec]:
        return [
            replace(self.base, config=config, label=label)
            for label, config in self.variants.items()
        ]

    def run(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
    ) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
        results, stats = run_sweep(
            self.specs(), jobs=jobs, cache=cache, cache_dir=cache_dir
        )
        return dict(zip(self.variants, results)), stats
