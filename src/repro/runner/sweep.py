"""The sweep orchestrator: declarative run grids, worker processes, caching.

A sweep is a list of :class:`RunSpec` points.  :func:`run_sweep` resolves
each point against the result cache, fans the remaining cold points out
across ``jobs`` worker processes (``spawn`` start method, so workers never
inherit mutable interpreter state and behave identically on every platform)
and returns results in spec order together with a :class:`SweepStats`
summary.

Determinism: a run's randomness is derived entirely from its
:class:`~repro.sim.config.SimulationConfig` seed, and each worker builds its
simulation from scratch from the pickled spec, so a parallel sweep is
bit-identical to running the same specs sequentially in one process
(``tests/test_runner_sweep.py`` asserts this).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.serialize import simulation_config_to_dict
from repro.runner.cache import ResultCache, cache_key
from repro.sim.config import SimulationConfig
from repro.system.experiment import ExperimentResult, run_experiment
from repro.system.platform import simulation_config_for_case


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep: everything :func:`run_experiment` needs.

    ``label`` names the point in mapping-shaped sweep results (defaults to
    the policy for policy comparisons and the frequency for DVFS sweeps).
    ``seed`` optionally overrides the configuration seed, for replication
    grids that vary nothing else.
    """

    case: str = "A"
    policy: str = "priority_qos"
    duration_ps: Optional[int] = None
    traffic_scale: float = 1.0
    config: Optional[SimulationConfig] = None
    adaptation_enabled: Optional[bool] = None
    dram_freq_mhz: Optional[float] = None
    dram_model: str = "transaction"
    keep_trace: bool = True
    seed: Optional[int] = None
    label: Optional[str] = None

    def resolved_config(self) -> SimulationConfig:
        """The fully resolved configuration this spec will simulate."""
        config = self.config or simulation_config_for_case(self.case)
        if self.duration_ps is not None:
            config = config.with_overrides(duration_ps=self.duration_ps)
        if self.seed is not None:
            config = config.with_overrides(seed=self.seed)
        if self.dram_freq_mhz is not None:
            config = config.with_overrides(
                dram=config.dram.with_frequency(self.dram_freq_mhz)
            )
        return config

    def fingerprint(self) -> Dict[str, object]:
        """Everything that can influence this spec's result, as plain JSON."""
        return {
            "case": self.case,
            "policy": self.policy,
            "traffic_scale": self.traffic_scale,
            "adaptation_enabled": self.adaptation_enabled,
            "dram_model": self.dram_model,
            "keep_trace": self.keep_trace,
            "config": simulation_config_to_dict(self.resolved_config()),
        }

    def key(self) -> str:
        """Stable cache key for this spec."""
        return cache_key(self.fingerprint())

    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        return f"{self.case}/{self.policy}"


@dataclass
class SweepStats:
    """What a sweep did: how many points ran, how many the cache served."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    cache_dir: Optional[str] = None

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def summary(self) -> str:
        """One-line human-readable summary for CLI / script output."""
        parts = [
            f"{self.total} run(s)",
            f"{self.cache_hits} cache hit(s)",
            f"{self.executed} executed",
            f"jobs={self.jobs}",
            f"{self.elapsed_s:.2f}s",
        ]
        if self.cache_dir:
            parts.append(f"cache={self.cache_dir}")
        return "sweep: " + ", ".join(parts)


def _execute_spec(spec: RunSpec) -> ExperimentResult:
    """Run one spec in the current process (also the worker entry point).

    The resolved configuration already carries the duration, seed and DRAM
    frequency overrides, so :func:`run_experiment` is called with the
    remaining orthogonal knobs only.
    """
    return run_experiment(
        case=spec.case,
        policy=spec.policy,
        traffic_scale=spec.traffic_scale,
        config=spec.resolved_config(),
        adaptation_enabled=spec.adaptation_enabled,
        dram_model=spec.dram_model,
        keep_trace=spec.keep_trace,
    )


def run_sweep(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[List[ExperimentResult], SweepStats]:
    """Execute a sweep, reusing cached points and parallelising the rest.

    Parameters
    ----------
    specs:
        The grid points, in the order results should be returned.
    jobs:
        Worker processes for the cold points.  ``1`` (the default) runs
        everything in-process; higher values use a ``spawn`` pool.
    cache / cache_dir:
        An existing :class:`ResultCache`, or a directory path to open one in.
        ``None`` disables caching.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)

    started = time.perf_counter()
    specs = list(specs)
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    stats = SweepStats(
        total=len(specs),
        jobs=jobs,
        cache_dir=str(cache.directory) if cache is not None else None,
    )

    # Identical grid points (same cache key) execute once and share the
    # result, whether or not an on-disk cache is attached.
    cold: List[Tuple[List[int], RunSpec, str]] = []
    cold_by_key: Dict[str, Tuple[List[int], RunSpec, str]] = {}
    for index, spec in enumerate(specs):
        key = spec.key()
        duplicate = cold_by_key.get(key)
        if duplicate is not None:
            duplicate[0].append(index)
            stats.cache_hits += 1
            continue
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                stats.cache_hits += 1
                continue
        entry = ([index], spec, key)
        cold.append(entry)
        cold_by_key[key] = entry

    if cold:
        cold_specs = [spec for _, spec, _ in cold]
        if jobs == 1 or len(cold) == 1:
            cold_results = [_execute_spec(spec) for spec in cold_specs]
        else:
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(jobs, len(cold))) as pool:
                cold_results = pool.map(_execute_spec, cold_specs, chunksize=1)
        for (indices, spec, key), result in zip(cold, cold_results):
            for index in indices:
                results[index] = result
            stats.executed += 1
            if cache is not None:
                cache.put(key, result, include_trace=spec.keep_trace)

    stats.elapsed_s = time.perf_counter() - started
    return list(results), stats  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# Grid builders mirroring repro.system.experiment's sequential helpers
# --------------------------------------------------------------------------- #
def compare_policies_specs(
    policies: Sequence[str],
    case: str = "A",
    duration_ps: Optional[int] = None,
    traffic_scale: float = 1.0,
    config: Optional[SimulationConfig] = None,
    keep_trace: bool = True,
) -> List[RunSpec]:
    """One spec per policy on the same case (Figs. 5, 6, 8, 9)."""
    base = RunSpec(
        case=case,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=keep_trace,
    )
    return [replace(base, policy=policy, label=policy) for policy in policies]


def frequency_sweep_specs(
    frequencies_mhz: Iterable[float],
    case: str = "A",
    policy: str = "priority_qos",
    duration_ps: Optional[int] = None,
    traffic_scale: float = 1.0,
    config: Optional[SimulationConfig] = None,
) -> List[RunSpec]:
    """One spec per DRAM frequency for one policy (Fig. 7)."""
    base = RunSpec(
        case=case,
        policy=policy,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=False,
    )
    return [
        replace(base, dram_freq_mhz=freq, label=f"{freq:g}")
        for freq in frequencies_mhz
    ]


def sweep_compare_policies(
    policies: Sequence[str],
    case: str = "A",
    duration_ps: Optional[int] = None,
    traffic_scale: float = 1.0,
    config: Optional[SimulationConfig] = None,
    keep_trace: bool = True,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
    """Parallel, cached drop-in for :func:`repro.system.experiment.compare_policies`."""
    specs = compare_policies_specs(
        policies,
        case=case,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=keep_trace,
    )
    results, stats = run_sweep(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
    return dict(zip(policies, results)), stats


def sweep_frequencies(
    frequencies_mhz: Iterable[float],
    case: str = "A",
    policy: str = "priority_qos",
    duration_ps: Optional[int] = None,
    traffic_scale: float = 1.0,
    config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[Dict[float, ExperimentResult], SweepStats]:
    """Parallel, cached drop-in for :func:`repro.system.experiment.frequency_sweep`."""
    frequencies = list(frequencies_mhz)
    specs = frequency_sweep_specs(
        frequencies,
        case=case,
        policy=policy,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
    )
    results, stats = run_sweep(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
    return dict(zip(frequencies, results)), stats


@dataclass
class AblationGrid:
    """A labelled grid of config variations for ablation sweeps.

    Built by the ablation benchmarks: one base spec plus a mapping from label
    to the :class:`SimulationConfig` to substitute.  ``specs()`` yields them
    in insertion order so results line up with the labels.
    """

    base: RunSpec
    variants: Dict[str, SimulationConfig] = field(default_factory=dict)

    def add(self, label: str, config: SimulationConfig) -> None:
        self.variants[label] = config

    def specs(self) -> List[RunSpec]:
        return [
            replace(self.base, config=config, label=label)
            for label, config in self.variants.items()
        ]

    def run(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
    ) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
        results, stats = run_sweep(
            self.specs(), jobs=jobs, cache=cache, cache_dir=cache_dir
        )
        return dict(zip(self.variants, results)), stats
