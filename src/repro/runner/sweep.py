"""The sweep orchestrator: declarative run grids, worker processes, caching.

A sweep is a list of :class:`RunSpec` points.  :func:`run_sweep` resolves
each point against the result cache, fans the remaining cold points out
across ``jobs`` worker processes (``spawn`` start method, so workers never
inherit mutable interpreter state and behave identically on every platform)
and returns results in spec order together with a :class:`SweepStats`
summary.

Every spec references a :class:`~repro.scenario.Scenario` — by catalog name,
file path or as an object — and its cache key is the SHA-256 of the fully
resolved, serialized scenario.  A grid over *platforms and workloads* (not
just numeric knobs) therefore flows through :func:`run_sweep` and its cache
unchanged: one spec per scenario file is all it takes.

Cold points execute behind the :class:`~repro.runner.executor.Executor`
interface: in-process for ``jobs=1``, batched dispatch on a
:class:`~repro.runner.pool.WorkerPool` (warm — started once, shared by many
sweeps — or ephemeral) by default, or a caller-supplied executor such as the
lease-based :class:`~repro.runner.queue.QueueExecutor`.  Batches of roughly
equal estimated cost stream back in completion order, so cache writes and
progress reporting overlap the remaining execution; a
:class:`~repro.runner.executor.FailurePolicy` adds per-spec timeouts, retry
with deterministic backoff, and poison-point quarantine on top of any of
them.  :class:`SweepStats` splits the sweep's wall time into measured phases
(resolve / build / simulate / serialize / pool start-up) so a regression is
attributable to the phase that caused it.

Custom policies, workloads and traffic models registered at runtime survive
parallel sweeps through the plugin hook: ``RunSpec.plugin_modules`` names the
modules whose import performs the registrations, and every spawn worker
imports them once, in its initializer.

Determinism: a run's randomness is derived entirely from its scenario's
seed, and each worker builds its simulation from scratch from the pickled
spec, so a parallel sweep — batched or not, warm pool or cold — is
bit-identical to running the same specs sequentially in one process
(``tests/test_runner_sweep.py`` asserts this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs import MetricsRegistry
from repro.runner.cache import ResultCache, cache_key
from repro.runner.executor import (
    STRICT_POLICY,
    Executor,
    FailurePolicy,
    InProcessExecutor,
    Landed,
    PoolExecutor,
    QuarantinedPoint,
)
from repro.runner.pool import WorkerPool
from repro.scenario import (
    Scenario,
    get_scenario,
    load_plugins,
    resolve_scenario,
    settings_label,
)
from repro.sim.config import SimulationConfig
from repro.system.experiment import (
    ExperimentResult,
    RunTimings,
    run_experiment_timed,
)


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep: everything :func:`run_experiment` needs.

    ``scenario`` names the baseline; every other field is an override baked
    into the resolved scenario before execution (``settings`` applies
    dotted-path overrides exactly like the CLI's ``--set``).  ``label`` names
    the point in mapping-shaped sweep results; ``seed`` optionally overrides
    the configuration seed, for replication grids that vary nothing else.
    ``plugin_modules`` are imported in every worker process before the run,
    so runtime-registered policies and workloads work under ``--jobs N``.
    """

    scenario: Union[str, Scenario] = "case_a"
    policy: Optional[str] = None
    duration_ps: Optional[int] = None
    traffic_scale: Optional[float] = None
    config: Optional[SimulationConfig] = None
    adaptation_enabled: Optional[bool] = None
    dram_freq_mhz: Optional[float] = None
    dram_model: Optional[str] = None
    keep_trace: bool = True
    seed: Optional[int] = None
    label: Optional[str] = None
    settings: Tuple[Tuple[str, Any], ...] = ()
    plugin_modules: Tuple[str, ...] = ()

    def resolved_scenario(self) -> Scenario:
        """The fully resolved scenario this spec will simulate (memoized).

        Resolution is pure — a deterministic function of the spec's frozen
        fields — and every consumer (``key()``, ``display_label()``, the
        execution itself) needs the same answer, so the first call caches the
        result on the instance (``object.__setattr__``: the dataclass is
        frozen, but the cache is not a field and never participates in
        equality or hashing).  The cache rides along in the pickle, so a
        worker process inherits the parent's resolution instead of redoing
        it.
        """
        cached = self.__dict__.get("_resolved")
        if cached is None:
            cached = resolve_scenario(
                self.scenario,
                policy=self.policy,
                config=self.config,
                duration_ps=self.duration_ps,
                seed=self.seed,
                traffic_scale=self.traffic_scale,
                adaptation_enabled=self.adaptation_enabled,
                dram_freq_mhz=self.dram_freq_mhz,
                dram_model=self.dram_model,
                settings=self.settings,
            )
            object.__setattr__(self, "_resolved", cached)
        return cached

    def fingerprint(self) -> Dict[str, object]:
        """Everything that can influence this spec's result, as plain JSON.

        The serialized scenario carries the platform, workload, policy and
        every override, so the cache key is exactly "the scenario that ran".
        """
        return {
            "scenario": self.resolved_scenario().to_dict(),
            "keep_trace": self.keep_trace,
            "plugin_modules": list(self.plugin_modules),
        }

    def key(self) -> str:
        """Stable cache key for this spec (memoized like the resolution:
        the sweep computes it for dedup and the campaign scheduler reads it
        again to record the manifest — same spec, same key, hash once)."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = cache_key(self.fingerprint())
            object.__setattr__(self, "_key", cached)
        return cached

    def memo_fingerprint(self) -> Dict[str, object]:
        """The spec's identity as plain JSON, *without* resolving anything.

        Resolution is a pure function of these fields, so two specs with
        equal memo fingerprints resolve identically and share a cache key.
        The store's point index exploits exactly that: it remembers
        ``memo_key() -> cache key`` at record time, which lets a later
        campaign intersect its whole plan against recorded results without
        a single scenario resolution.  ``label`` is deliberately excluded —
        it names the point but cannot influence the measurement.
        """
        scenario = (
            self.scenario
            if isinstance(self.scenario, Scenario)
            else get_scenario(self.scenario)
        )
        return {
            "scenario": scenario.to_dict(),
            "policy": self.policy,
            "duration_ps": self.duration_ps,
            "traffic_scale": self.traffic_scale,
            "config": self.config.to_dict() if self.config is not None else None,
            "adaptation_enabled": self.adaptation_enabled,
            "dram_freq_mhz": self.dram_freq_mhz,
            "dram_model": self.dram_model,
            "keep_trace": self.keep_trace,
            "seed": self.seed,
            "settings": [[path, value] for path, value in self.settings],
            "plugin_modules": list(self.plugin_modules),
        }

    def memo_key(self) -> str:
        """Stable resolution-free key for this spec (memoized like ``key()``).

        Hashed through the same :func:`~repro.runner.cache.cache_key` mixer,
        so the cache schema version guards recorded memo mappings the same
        way it guards cached results.
        """
        cached = self.__dict__.get("_memo_key")
        if cached is None:
            cached = cache_key(self.memo_fingerprint())
            object.__setattr__(self, "_memo_key", cached)
        return cached

    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        resolved = self.resolved_scenario()
        return f"{resolved.name}/{resolved.policy}"


#: The disjoint wall-time attributions ``phases()`` reports, in display
#: order.  ``elapsed_s`` (the whole sweep) and ``sim_wall_s`` (a derived
#: critical-path estimate overlapping ``sim_cpu_s``) are deliberately not
#: phases.
_PHASE_FIELDS = (
    "resolve_s",
    "build_s",
    "sim_cpu_s",
    "serialize_s",
    "index_lookup_s",
    "pool_startup_s",
)

#: Count-shaped stats fields backed by registry counters.
_COUNT_FIELDS = ("cache_hits", "reused_points", "executed", "batches", "retries")


def _count_property(name: str) -> property:
    """An int-valued counter view (``stats.executed += 1`` keeps working)."""

    def getter(self) -> int:
        return int(self._counters[name].value)

    def setter(self, value: int) -> None:
        self._counters[name].set(float(value))

    return property(getter, setter)


def _phase_property(name: str) -> property:
    """A float-seconds counter view for one accumulated phase."""

    def getter(self) -> float:
        return self._phase_counters[name].value

    def setter(self, value: float) -> None:
        self._phase_counters[name].set(float(value))

    return property(getter, setter)


def _gauge_property(name: str, as_int: bool = False) -> property:
    def getter(self):
        value = self._gauges[name].value
        return int(value) if as_int else value

    def setter(self, value) -> None:
        self._gauges[name].set(float(value))

    return property(getter, setter)


class SweepStats:
    """What a sweep did, and where its time went.

    Counters (``total`` / ``cache_hits`` / ``executed`` / ``batches``) say
    how much work ran; the ``*_s`` phase fields say where the wall clock
    went, so a perf regression is attributable to one phase:

    * ``resolve_s`` — scenario resolution and cache-key hashing (parent
      process, plus any residual resolution inside workers).
    * ``build_s`` / ``sim_cpu_s`` — system construction and the simulation
      runs themselves.  Summed *across* workers, so with ``jobs > 1`` these
      can legitimately exceed ``elapsed_s`` — they are CPU time spent, not
      wall clock.
    * ``serialize_s`` — result-cache reads and writes in the parent.
    * ``index_lookup_s`` — store point-index probes (memo-key hashing,
      shard reads, recorded-result decoding) when a store memo was handed
      in; ``reused_points`` counts the specs those probes satisfied.
    * ``pool_startup_s`` — spawn cost paid by *this* sweep.  Zero when a
      warm :class:`~repro.runner.pool.WorkerPool` was handed in, which is
      the whole point of keeping one.

    ``sim_wall_s`` is *not* a phase: it estimates the simulation's wall-clock
    critical path — the largest per-worker chain of batch simulation times
    (for ``jobs=1`` simply the total) — and is never larger than
    ``sim_cpu_s``.  It answers "how long did simulating actually gate the
    sweep", where ``sim_cpu_s`` answers "how much simulating was done";
    earlier versions reported only the sum under the name ``sim_s``, which
    read like (and was routinely mistaken for) a wall-clock figure.

    Every field is a compatibility property over a per-instance
    :class:`~repro.obs.MetricsRegistry` (``stats.metrics``), so callers keep
    the historical mutable-field surface (``stats.executed += 1``) while
    export layers read one structured :meth:`~repro.obs.MetricsRegistry.
    snapshot` instead of scraping ad-hoc attributes.
    """

    def __init__(
        self,
        total: int = 0,
        cache_hits: int = 0,
        reused_points: int = 0,
        executed: int = 0,
        jobs: int = 1,
        batches: int = 0,
        retries: int = 0,
        quarantined: Optional[List[QuarantinedPoint]] = None,
        elapsed_s: float = 0.0,
        resolve_s: float = 0.0,
        build_s: float = 0.0,
        sim_cpu_s: float = 0.0,
        sim_wall_s: float = 0.0,
        serialize_s: float = 0.0,
        index_lookup_s: float = 0.0,
        pool_startup_s: float = 0.0,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self._counters = {
            name: self.metrics.counter(f"repro_sweep_{name}_total")
            for name in _COUNT_FIELDS
        }
        self._phase_counters = {
            name: self.metrics.counter(
                "repro_sweep_phase_seconds_total", phase=name[: -len("_s")]
            )
            for name in _PHASE_FIELDS
        }
        self._gauges = {
            "total": self.metrics.gauge("repro_sweep_points"),
            "jobs": self.metrics.gauge("repro_sweep_jobs"),
            "elapsed_s": self.metrics.gauge("repro_sweep_elapsed_seconds"),
            "sim_wall_s": self.metrics.gauge("repro_sweep_sim_wall_seconds"),
        }
        self.quarantined: List[QuarantinedPoint] = (
            [] if quarantined is None else quarantined
        )
        self.cache_dir = cache_dir
        self.total = total
        self.cache_hits = cache_hits
        self.reused_points = reused_points
        self.executed = executed
        self.jobs = jobs
        self.batches = batches
        self.retries = retries
        self.elapsed_s = elapsed_s
        self.resolve_s = resolve_s
        self.build_s = build_s
        self.sim_cpu_s = sim_cpu_s
        self.sim_wall_s = sim_wall_s
        self.serialize_s = serialize_s
        self.index_lookup_s = index_lookup_s
        self.pool_startup_s = pool_startup_s

    cache_hits = _count_property("cache_hits")
    reused_points = _count_property("reused_points")
    executed = _count_property("executed")
    batches = _count_property("batches")
    retries = _count_property("retries")
    resolve_s = _phase_property("resolve_s")
    build_s = _phase_property("build_s")
    sim_cpu_s = _phase_property("sim_cpu_s")
    serialize_s = _phase_property("serialize_s")
    index_lookup_s = _phase_property("index_lookup_s")
    pool_startup_s = _phase_property("pool_startup_s")
    total = _gauge_property("total", as_int=True)
    jobs = _gauge_property("jobs", as_int=True)
    elapsed_s = _gauge_property("elapsed_s")
    sim_wall_s = _gauge_property("sim_wall_s")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepStats({self.summary()})"

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def add_timings(self, timings: RunTimings) -> None:
        """Fold one run's phase breakdown into the sweep totals."""
        self.resolve_s += timings.resolve_s
        self.build_s += timings.build_s
        self.sim_cpu_s += timings.sim_s

    def phases(self) -> Dict[str, float]:
        """The measured phases as a name -> seconds mapping (for reports).

        Phases are disjoint attributions of work time, safe to add up;
        ``sim_wall_s`` (a derived critical-path estimate that overlaps
        ``sim_cpu_s``) and ``elapsed_s`` are deliberately excluded.
        """
        return {name[: -len("_s")]: getattr(self, name) for name in _PHASE_FIELDS}

    def summary(self) -> str:
        """One-line human-readable summary for CLI / script output.

        Phase times are CPU-time attributions (summed across workers) and
        say so explicitly; the simulation's wall-clock critical path prints
        separately as ``sim_wall ... (wall)`` — earlier versions printed it
        unlabelled next to the summed phases, where it read as just another
        addend.
        """
        parts = [
            f"{self.total} run(s)",
            f"{self.cache_hits} cache hit(s)",
            f"{self.executed} executed",
            f"jobs={self.jobs}",
            f"{self.elapsed_s:.2f}s",
        ]
        if self.reused_points:
            parts.insert(2, f"{self.reused_points} reused")
        if self.retries:
            parts.insert(3, f"{self.retries} retried")
        if self.quarantined:
            parts.insert(3, f"{len(self.quarantined)} quarantined")
        phase_parts = [
            f"{name} {seconds:.2f}s"
            for name, seconds in self.phases().items()
            if seconds >= 0.005
        ]
        if phase_parts:
            parts.append("[cpu: " + ", ".join(phase_parts) + "]")
        if self.sim_wall_s >= 0.005 and self.sim_wall_s != self.sim_cpu_s:
            parts.append(f"sim_wall {self.sim_wall_s:.2f}s (wall)")
        if self.cache_dir:
            parts.append(f"cache={self.cache_dir}")
        return "sweep: " + ", ".join(parts)


def _execute_spec(spec: RunSpec) -> ExperimentResult:
    """Run one spec in the current process (timings discarded).

    Plugin modules are loaded first so that registrations (policies,
    workloads, traffic models, scenarios) exist in this process; the call is
    a few dictionary lookups when the modules are already imported.
    Execution goes through :func:`run_experiment_timed` — the same path the
    sweep's sequential and batched modes use — so this convenience wrapper
    cannot drift from what sweeps actually run.
    """
    load_plugins(spec.plugin_modules)
    result, _ = run_experiment_timed(
        spec.resolved_scenario(), keep_trace=spec.keep_trace
    )
    return result


#: Per-spec landing callback:
#: ``observer(index, result, timings, from_cache, source)``.
#: ``timings`` is the run's phase breakdown for the spec that actually
#: executed and ``None`` otherwise (``from_cache=True``).  ``source`` names
#: where the result came from: ``"executed"`` (simulated live), ``"dedup"``
#: (duplicate of an executed spec in the same sweep), ``"cache"`` (result
#: cache) or ``"reused"`` (recorded point served by the store's point
#: index).  Invoked exactly once per spec index, in landing order.  This is
#: how campaign-level callers attribute one flattened sweep's work back to
#: the sub-grids it came from.
Observer = Callable[[int, ExperimentResult, Optional[RunTimings], bool, str], None]


def run_sweep(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    batching: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    observer: Optional[Observer] = None,
    executor: Optional[Executor] = None,
    failure_policy: Optional[FailurePolicy] = None,
    memo: Optional[Any] = None,
) -> Tuple[List[ExperimentResult], SweepStats]:
    """Execute a sweep, reusing cached points and parallelising the rest.

    Parameters
    ----------
    specs:
        The grid points, in the order results should be returned.
    jobs:
        Worker processes for the cold points.  ``1`` (the default) runs
        everything in-process; higher values spawn an ephemeral
        :class:`WorkerPool` for this call.  Ignored when ``pool`` is given.
    cache / cache_dir:
        An existing :class:`ResultCache`, or a directory path to open one in.
        ``None`` disables caching.
    pool:
        A caller-owned :class:`WorkerPool` to execute on.  The pool is
        started if needed (only that start-up lands in ``pool_startup_s``)
        and is *not* closed afterwards — that is what lets one warm pool
        serve a whole campaign of sweeps for a single spawn cost.
    batching:
        Group cold specs into cost-balanced batches (one IPC round trip per
        batch) instead of dispatching one spec per message.  Results are
        bit-identical either way; ``False`` exists for measurement and as an
        escape hatch.
    progress:
        Optional ``callback(done, cold_total)`` invoked in the parent as
        executed specs stream back, interleaved with execution.
    observer:
        Optional per-spec landing callback (see :data:`Observer`), called
        once per spec index with its result, its phase timings (``None`` for
        cached/deduplicated points) and whether it came from the cache.
    executor:
        An explicit :class:`~repro.runner.executor.Executor` to run the cold
        points on (e.g. a :class:`~repro.runner.queue.QueueExecutor`).  By
        default the historical selection applies: in-process for ``jobs=1``,
        otherwise batched dispatch on the (warm or ephemeral) pool.
    failure_policy:
        The :class:`~repro.runner.executor.FailurePolicy` shared by every
        executor: per-spec timeouts, retry with deterministic backoff, and
        poison-point quarantine.  The default is the historical strict
        contract — one attempt, any failure raises.  With a quarantining
        policy the returned list holds ``None`` at quarantined positions
        and ``stats.quarantined`` names them.
    memo:
        A :class:`~repro.store.StoreMemo` (or anything with its
        ``get(spec) -> Optional[(result, cache_key)]`` shape).  Each spec is
        looked up *before* its cache key is computed; a hit splices the
        recorded result in with zero scenario resolutions and zero
        simulator work, counts into ``stats.reused_points`` and back-fills
        the result cache so a later ``--resume`` sees it.  Probe time lands
        in ``stats.index_lookup_s``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)

    started = time.perf_counter()
    specs = list(specs)
    # Load every spec's plugin modules here in the parent too: computing a
    # spec's cache key resolves its scenario, which may itself be a plugin
    # registration (workers repeat the import for their own process).
    seen_plugins = set()
    for spec in specs:
        fresh = [m for m in spec.plugin_modules if m not in seen_plugins]
        if fresh:
            load_plugins(fresh)
            seen_plugins.update(fresh)
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    stats = SweepStats(
        total=len(specs),
        jobs=(
            pool.jobs
            if pool is not None
            else getattr(executor, "jobs", None) or jobs
        ),
        cache_dir=str(cache.directory) if cache is not None else None,
    )
    cache_io_before = cache.io_s if cache is not None else 0.0

    # Identical grid points (same cache key) execute once and share the
    # result, whether or not an on-disk cache is attached.  Key computation
    # resolves each distinct scenario once (memoized on the spec), which is
    # the parent's share of the resolve phase.
    resolve_started = time.perf_counter()
    cold: List[Tuple[List[int], RunSpec, str]] = []
    cold_by_key: Dict[str, Tuple[List[int], RunSpec, str]] = {}
    for index, spec in enumerate(specs):
        if memo is not None:
            # The store lookup comes first because it is the only probe that
            # needs no scenario resolution: it goes through the spec's memo
            # key, and a hit carries the recorded cache key with it.
            lookup_started = time.perf_counter()
            hit = memo.get(spec)
            stats.index_lookup_s += time.perf_counter() - lookup_started
            if hit is not None:
                result, key = hit
                # Seed the spec's memoized cache key so later readers (the
                # campaign scheduler records it in the manifest) get the
                # recorded key without resolving the scenario either.
                object.__setattr__(spec, "_key", key)
                results[index] = result
                stats.reused_points += 1
                if cache is not None and key not in cache:
                    cache.put(key, result, include_trace=spec.keep_trace)
                if observer is not None:
                    observer(index, result, None, True, "reused")
                continue
        key = spec.key()
        duplicate = cold_by_key.get(key)
        if duplicate is not None:
            duplicate[0].append(index)
            stats.cache_hits += 1
            continue
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                stats.cache_hits += 1
                if observer is not None:
                    observer(index, cached, None, True, "cache")
                continue
        entry = ([index], spec, key)
        cold.append(entry)
        cold_by_key[key] = entry
    stats.resolve_s += (
        time.perf_counter()
        - resolve_started
        - stats.index_lookup_s
        - ((cache.io_s - cache_io_before) if cache is not None else 0.0)
    )

    if cold:
        policy = failure_policy if failure_policy is not None else STRICT_POLICY
        chosen = executor
        if chosen is None:
            use_pool = pool is not None or (jobs > 1 and len(cold) > 1)
            chosen = (
                PoolExecutor(pool=pool, jobs=jobs, batching=batching)
                if use_pool
                else InProcessExecutor()
            )
        done = 0
        for event in chosen.execute(
            cold,
            stats,
            policy,
            cache_dir=str(cache.directory) if cache is not None else None,
        ):
            done += 1
            if isinstance(event, Landed):
                _land_result(
                    event.entry, event.result, event.timings, results, stats,
                    cache, progress, observer, done, len(cold),
                )
            else:
                # Quarantined: the position stays None in the results and the
                # point is recorded on the stats for callers to account.
                stats.quarantined.append(event)
                if progress is not None:
                    progress(done, len(cold))

    if cache is not None:
        stats.serialize_s += cache.io_s - cache_io_before
    stats.elapsed_s = time.perf_counter() - started
    return list(results), stats  # type: ignore[arg-type]


def _land_result(
    entry: Tuple[List[int], RunSpec, str],
    result: ExperimentResult,
    timings: RunTimings,
    results: List[Optional[ExperimentResult]],
    stats: SweepStats,
    cache: Optional[ResultCache],
    progress: Optional[Callable[[int, int], None]],
    observer: Optional[Observer],
    done: int,
    cold_total: int,
) -> None:
    """Account one executed cold point: stats, placement, cache, progress.

    The single landing path shared by the sequential and pooled modes, so
    their bookkeeping (phase totals, duplicate placement, cache writes,
    progress reporting) cannot drift apart.
    """
    indices, spec, key = entry
    # Driver-side attribution span: carries the point indices (the join key
    # for per-sub-grid aggregation in `repro trace`) with the worker-measured
    # execution time, since the worker itself does not know sweep indices.
    obs.complete(
        "executor.landed",
        timings.resolve_s + timings.build_s + timings.sim_s,
        label=spec.display_label(),
        indices=list(indices),
    )
    stats.add_timings(timings)
    for index in indices:
        results[index] = result
    if observer is not None:
        # The first index is the spec that executed; the rest were
        # deduplicated against it during key resolution.
        for position, index in enumerate(indices):
            observer(
                index,
                result,
                timings if position == 0 else None,
                position > 0,
                "dedup" if position else "executed",
            )
    stats.executed += 1
    if cache is not None:
        cache.put(key, result, include_trace=spec.keep_trace)
    if progress is not None:
        progress(done, cold_total)


# --------------------------------------------------------------------------- #
# Grid builders mirroring repro.system.experiment's sequential helpers
# --------------------------------------------------------------------------- #
def compare_policies_specs(
    policies: Sequence[str],
    scenario: Union[str, Scenario] = "case_a",
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    keep_trace: bool = True,
    plugin_modules: Sequence[str] = (),
) -> List[RunSpec]:
    """One spec per policy on the same scenario (Figs. 5, 6, 8, 9)."""
    base = RunSpec(
        scenario=scenario,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=keep_trace,
        plugin_modules=tuple(plugin_modules),
    )
    return [replace(base, policy=policy, label=policy) for policy in policies]


def frequency_sweep_specs(
    frequencies_mhz: Iterable[float],
    scenario: Union[str, Scenario] = "case_a",
    policy: Optional[str] = None,
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    plugin_modules: Sequence[str] = (),
) -> List[RunSpec]:
    """One spec per DRAM frequency for one policy (Fig. 7)."""
    base = RunSpec(
        scenario=scenario,
        policy=policy,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=False,
        plugin_modules=tuple(plugin_modules),
    )
    return [
        replace(base, dram_freq_mhz=freq, label=f"{freq:g}")
        for freq in frequencies_mhz
    ]


def scenario_grid_specs(
    scenario: Union[str, Scenario],
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    keep_trace: bool = False,
    plugin_modules: Sequence[str] = (),
    axis_set: Optional[str] = None,
) -> List[RunSpec]:
    """Expand a scenario's declared sweep axes into one spec per grid point.

    The axes live in the scenario file (``sweep: {"policy": [...], ...}``),
    so a whole experiment grid — over policies, frequencies, workload
    parameters, anything addressable by dotted path — ships as data.  For a
    scenario whose sweep declares *named* axis sets, ``axis_set`` picks the
    sub-grid to expand.
    """
    spec = get_scenario(scenario)
    grid: List[RunSpec] = []
    for point in spec.sweep_points(axis_set):
        label = settings_label(point)
        grid.append(
            RunSpec(
                scenario=spec,
                duration_ps=duration_ps,
                traffic_scale=traffic_scale,
                keep_trace=keep_trace,
                settings=tuple(sorted(point.items())),
                label=label or spec.name,
                plugin_modules=tuple(plugin_modules),
            )
        )
    return grid


def sweep_compare_policies(
    policies: Sequence[str],
    scenario: Union[str, Scenario] = "case_a",
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    keep_trace: bool = True,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    plugin_modules: Sequence[str] = (),
) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
    """Parallel, cached drop-in for :func:`repro.system.experiment.compare_policies`."""
    specs = compare_policies_specs(
        policies,
        scenario=scenario,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        keep_trace=keep_trace,
        plugin_modules=plugin_modules,
    )
    results, stats = run_sweep(
        specs, jobs=jobs, cache=cache, cache_dir=cache_dir, pool=pool
    )
    return dict(zip(policies, results)), stats


def sweep_frequencies(
    frequencies_mhz: Iterable[float],
    scenario: Union[str, Scenario] = "case_a",
    policy: Optional[str] = None,
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    plugin_modules: Sequence[str] = (),
) -> Tuple[Dict[float, ExperimentResult], SweepStats]:
    """Parallel, cached drop-in for :func:`repro.system.experiment.frequency_sweep`."""
    frequencies = list(frequencies_mhz)
    specs = frequency_sweep_specs(
        frequencies,
        scenario=scenario,
        policy=policy,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        config=config,
        plugin_modules=plugin_modules,
    )
    results, stats = run_sweep(
        specs, jobs=jobs, cache=cache, cache_dir=cache_dir, pool=pool
    )
    return dict(zip(frequencies, results)), stats


def sweep_scenario(
    scenario: Union[str, Scenario],
    duration_ps: Optional[int] = None,
    traffic_scale: Optional[float] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    plugin_modules: Sequence[str] = (),
    axis_set: Optional[str] = None,
) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
    """Run a scenario's declared sweep grid; results keyed by point label."""
    specs = scenario_grid_specs(
        scenario,
        duration_ps=duration_ps,
        traffic_scale=traffic_scale,
        plugin_modules=plugin_modules,
        axis_set=axis_set,
    )
    results, stats = run_sweep(
        specs, jobs=jobs, cache=cache, cache_dir=cache_dir, pool=pool
    )
    return dict(zip((spec.label or "" for spec in specs), results)), stats


@dataclass
class AblationGrid:
    """A labelled grid of config variations for ablation sweeps.

    Built by the ablation benchmarks: one base spec plus a mapping from label
    to the :class:`SimulationConfig` to substitute.  ``specs()`` yields them
    in insertion order so results line up with the labels.
    """

    base: RunSpec
    variants: Dict[str, SimulationConfig] = field(default_factory=dict)

    def add(self, label: str, config: SimulationConfig) -> None:
        self.variants[label] = config

    def specs(self) -> List[RunSpec]:
        return [
            replace(self.base, config=config, label=label)
            for label, config in self.variants.items()
        ]

    def run(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
    ) -> Tuple[Dict[str, ExperimentResult], SweepStats]:
        results, stats = run_sweep(
            self.specs(), jobs=jobs, cache=cache, cache_dir=cache_dir, pool=pool
        )
        return dict(zip(self.variants, results)), stats
