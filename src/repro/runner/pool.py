"""The warm worker pool: persistent spawn workers and batched dispatch plans.

Every ``run_sweep`` call used to build a fresh ``spawn`` pool, so a campaign
of several sweeps (the CLI's ``grid`` command, the benchmark harness, a
notebook iterating on a figure) paid interpreter start-up plus the full
``repro`` import once per sweep *per worker*.  :class:`WorkerPool` makes the
pool a first-class, reusable object: start it once (lazily, on first use),
hand it to as many ``run_sweep`` calls as you like, and the spawn cost — a
second or so for four workers importing the simulator stack — is paid exactly
once.  The pool is a context manager, so the common shape is::

    with WorkerPool(jobs=4) as pool:
        a, _ = run_sweep(grid_a, pool=pool)
        b, _ = run_sweep(grid_b, pool=pool)   # no second spawn

Workers import the whole simulator stack and every declared plugin module in
their initializer, so per-spec work inside a worker is just "resolve, build,
simulate" — no import-system round trips on the hot path.

This module also plans *batched dispatch*: instead of one IPC round trip per
spec (painful for grids of very short runs), specs are grouped into
contiguous chunks sized by :func:`estimate_cost` — simulated duration times
the number of active DMA agents, the two knobs that dominate event count —
so each worker message carries roughly equal simulated work and the sweep
still load-balances when one grid point is far heavier than the rest.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.scenario import load_plugins

T = TypeVar("T")

#: Batches per worker the dispatch planner aims for.  More than one batch per
#: worker keeps the pool load-balanced when batch costs are only estimates;
#: each extra batch costs one more IPC round trip.
OVERSUBSCRIBE = 4

#: Fallback agent count when a workload cannot be built in the parent (e.g. a
#: workload kind only registered inside workers via plugin modules).
DEFAULT_AGENT_ESTIMATE = 8


#: How long :meth:`WorkerPool.start` waits for every worker to finish its
#: initializer before giving up on the readiness handshake.  A worker that
#: dies during start-up surfaces through the pool's own error handling; the
#: handshake only exists so start-up cost is *measured* in
#: ``pool_startup_s`` rather than leaking into the first batch.
STARTUP_TIMEOUT_S = 120.0


def _worker_init(plugin_modules: Tuple[str, ...], ready: Any) -> None:
    """Per-worker one-time setup: import the simulator stack and plugins.

    Runs in the worker process right after spawn.  Importing
    ``repro.runner.sweep`` here pulls in the scenario, system and engine
    modules, so the import cost lands in pool start-up (measured as
    ``SweepStats.pool_startup_s``) instead of silently inflating the first
    batch; plugin imports run once per process instead of once per spec.
    Releasing the semaphore signals the parent's :meth:`WorkerPool.start`,
    which blocks until every worker is actually ready — release never
    blocks, so a worker respawned mid-campaign just signals into the void
    and starts serving batches immediately.
    """
    try:
        import repro.runner.sweep  # noqa: F401  (imports the full simulator stack)

        load_plugins(plugin_modules)
    except Exception:
        # Raising from an initializer would make the pool respawn workers in
        # a crash loop (and, because the replacement would also crash, hang
        # the parent).  A failed import is not cached in sys.modules, so the
        # import retries when the first batch runs and the real error
        # surfaces as an ordinary task failure with the actionable message.
        pass
    finally:
        ready.release()


class WorkerPool:
    """A persistent ``spawn`` worker pool, reusable across sweeps.

    The pool starts lazily: constructing one is free, and the first
    ``run_sweep`` (or an explicit :meth:`start`) pays the spawn cost.
    ``plugin_modules`` are imported once per worker at start-up; sweeps whose
    specs declare *additional* plugin modules still work — workers import
    those on first use through the idempotent-fast
    :func:`~repro.scenario.load_plugins`.
    """

    def __init__(self, jobs: int, plugin_modules: Sequence[str] = ()) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.plugin_modules = tuple(dict.fromkeys(plugin_modules))
        self._pool: Optional[multiprocessing.pool.Pool] = None
        #: Wall-clock cost of the most recent :meth:`start`.
        self.startup_s = 0.0
        #: How many times this pool has actually spawned workers.
        self.starts = 0

    @property
    def started(self) -> bool:
        return self._pool is not None

    def start(self) -> float:
        """Spawn the workers if needed; returns the start-up cost just paid.

        Returns ``0.0`` when the pool is already warm — callers can therefore
        unconditionally add the return value to their ``pool_startup_s``.
        """
        if self._pool is not None:
            return 0.0
        began = time.perf_counter()
        context = multiprocessing.get_context("spawn")
        # Readiness handshake: every worker releases once from its
        # initializer and the parent acquires jobs times, so start() returns
        # only when all workers have imported the simulator stack and the
        # spawn cost is fully attributed here instead of bleeding into the
        # first dispatched batch.  (A semaphore, not a barrier: release
        # never blocks, so a worker respawned later cannot stall on a
        # handshake nobody else is attending.)
        ready = context.Semaphore(0)
        self._pool = context.Pool(
            processes=self.jobs,
            initializer=_worker_init,
            initargs=(self.plugin_modules, ready),
        )
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        for _ in range(self.jobs):
            if not ready.acquire(timeout=max(0.0, deadline - time.monotonic())):
                break  # pragma: no cover - degraded: cost lands in batch 1
        self.startup_s = time.perf_counter() - began
        self.starts += 1
        return self.startup_s

    def imap_unordered(
        self, function: Callable[[T], Any], iterable: Iterable[T]
    ) -> Iterable[Any]:
        """Stream ``function`` over ``iterable``, yielding results as they land.

        Completion order is arbitrary — callers must carry their own indices
        (the sweep's batched dispatch does) — which is exactly what lets cache
        writes and progress reporting overlap the remaining execution.
        """
        self.start()
        assert self._pool is not None
        return self._pool.imap_unordered(function, iterable)

    def close(self) -> None:
        """Terminate the workers.  The pool can be started again later."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Batched dispatch planning
# --------------------------------------------------------------------------- #
def estimate_cost(spec: Any) -> float:
    """Estimated execution cost of one run spec (arbitrary relative units).

    Event count — and therefore wall time — scales with how long the
    simulation runs and how many DMA agents generate traffic, so the
    heuristic is ``simulated duration x active agents``.  The agent count
    comes from the resolved scenario's workload spec list, which is plain
    data and cheap to build; a workload that cannot be built in this process
    (a worker-only plugin registration) falls back to a fixed estimate
    rather than failing the plan.
    """
    scenario = spec.resolved_scenario()
    duration_ps = max(1, scenario.platform.sim.duration_ps)
    try:
        agents = len(scenario.build_workload().dmas)
    except Exception:
        agents = DEFAULT_AGENT_ESTIMATE
    return float(duration_ps) * max(1, agents)


def plan_batches(
    costed_items: Sequence[Tuple[T, float]],
    jobs: int,
    oversubscribe: int = OVERSUBSCRIBE,
) -> List[List[T]]:
    """Group items into contiguous batches of roughly equal estimated cost.

    Aims for about ``jobs x oversubscribe`` batches: enough slack that the
    pool stays balanced when estimates are off, few enough that IPC stays a
    rounding error.  Order within and across batches follows the input, so a
    dispatch plan is deterministic for a given grid.  An item costlier than
    the target gets a batch of its own; a grid of uniform short runs packs
    many specs per message.
    """
    if not costed_items:
        return []
    total = sum(cost for _, cost in costed_items)
    target = total / max(1, jobs * oversubscribe)
    batches: List[List[T]] = []
    current: List[T] = []
    current_cost = 0.0
    for item, cost in costed_items:
        if current and current_cost + cost > target:
            batches.append(current)
            current, current_cost = [], 0.0
        current.append(item)
        current_cost += cost
    if current:
        batches.append(current)
    return batches
