"""The warm worker pool: persistent spawn workers and batched dispatch plans.

Every ``run_sweep`` call used to build a fresh ``spawn`` pool, so a campaign
of several sweeps (the CLI's ``grid`` command, the benchmark harness, a
notebook iterating on a figure) paid interpreter start-up plus the full
``repro`` import once per sweep *per worker*.  :class:`WorkerPool` makes the
pool a first-class, reusable object: start it once (lazily, on first use),
hand it to as many ``run_sweep`` calls as you like, and the spawn cost — a
second or so for four workers importing the simulator stack — is paid exactly
once.  The pool is a context manager, so the common shape is::

    with WorkerPool(jobs=4) as pool:
        a, _ = run_sweep(grid_a, pool=pool)
        b, _ = run_sweep(grid_b, pool=pool)   # no second spawn

Workers import the whole simulator stack and every declared plugin module in
their initializer, so per-spec work inside a worker is just "resolve, build,
simulate" — no import-system round trips on the hot path.

The pool used to delegate to ``multiprocessing.Pool``, which has a
well-known failure mode: a worker killed mid-task (OOM killer, ``kill -9``)
leaves ``imap_unordered`` waiting forever, because the shared result queue
cannot say *whose* result will never arrive.  This implementation manages
explicit ``spawn`` :class:`~multiprocessing.Process` workers, each with its
own duplex :func:`~multiprocessing.Pipe`: the parent always knows exactly
which task each worker holds, a dead worker surfaces as EOF on *its own*
pipe the moment it dies, and the pool respawns it and keeps serving.
:meth:`session` exposes that machinery — per-task timeouts, delayed
resubmission, typed :class:`TaskOutcome` errors — to the executor layer;
:meth:`imap_unordered` keeps the historical streaming interface on top,
now raising :class:`~repro.runner.executor.WorkerDiedError` instead of
hanging when a worker disappears.

Every result crosses the pipe as a pickled payload plus its SHA-256, so a
payload corrupted in flight (or by the ``corrupt`` fault injector) is
*detected* — a typed :class:`~repro.runner.executor.PayloadError` outcome —
rather than deserialized into silent nonsense.

This module also plans *batched dispatch*: instead of one IPC round trip per
spec (painful for grids of very short runs), specs are grouped into
contiguous chunks sized by :func:`estimate_cost` — simulated duration times
the number of active DMA agents, the two knobs that dominate event count —
so each worker message carries roughly equal simulated work and the sweep
still load-balances when one grid point is far heavier than the rest.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.runner.executor import PayloadError, SpecTimeoutError, WorkerDiedError
from repro.runner.faults import CorruptResult, VanishResult
from repro.scenario import load_plugins

T = TypeVar("T")

#: Batches per worker the dispatch planner aims for.  More than one batch per
#: worker keeps the pool load-balanced when batch costs are only estimates;
#: each extra batch costs one more IPC round trip.
OVERSUBSCRIBE = 4

#: Fallback agent count when a workload cannot be built in the parent (e.g. a
#: workload kind only registered inside workers via plugin modules).
DEFAULT_AGENT_ESTIMATE = 8


#: How long :meth:`WorkerPool.start` waits for every worker to finish its
#: initializer before giving up on the readiness handshake.  A worker that
#: dies during start-up surfaces through the pool's own error handling; the
#: handshake only exists so start-up cost is *measured* in
#: ``pool_startup_s`` rather than leaking into the first batch.
STARTUP_TIMEOUT_S = 120.0

#: How often the session's wait loop wakes up with nothing to do — the
#: granularity of timeout enforcement and delayed-resubmission checks.
POLL_S = 0.05


def _send_envelope(conn: Any, task_id: int, status: str, value: Any) -> None:
    """Send one integrity-checked result message from worker to parent.

    The payload is pickled separately from the framing tuple and paired
    with its SHA-256; the parent re-hashes before unpickling.  A
    :class:`~repro.runner.faults.CorruptResult` marker garbles the payload
    *after* the digest is taken — the exact failure the check exists for.
    """
    corrupt = isinstance(value, CorruptResult)
    if corrupt:
        value = value.value
    try:
        payload = pickle.dumps(value)
    except Exception as exc:
        status = "error"
        payload = pickle.dumps(RuntimeError(f"unpicklable worker result: {exc!r}"))
    digest = hashlib.sha256(payload).hexdigest()
    if corrupt:
        middle = len(payload) // 2
        payload = payload[:middle] + bytes([payload[middle] ^ 0xFF]) + payload[middle + 1 :]
    conn.send((task_id, status, payload, digest))


def _worker_main(conn: Any, plugin_modules: Tuple[str, ...], ready: Any) -> None:
    """Worker process body: one-time setup, then a task-at-a-time loop.

    Importing ``repro.runner.sweep`` pulls in the scenario, system and
    engine modules, so the import cost lands in pool start-up (measured as
    ``SweepStats.pool_startup_s``) instead of silently inflating the first
    batch; plugin imports run once per process instead of once per spec.
    A failed import is deliberately swallowed: it is not cached in
    ``sys.modules``, so it retries when the first task runs and the real
    error surfaces as an ordinary task failure with the actionable
    message.  Releasing the semaphore signals :meth:`WorkerPool.start`;
    workers respawned mid-campaign get ``ready=None`` (the start-up
    semaphore may already be gone by the time the child unpickles it).
    """
    obs.install_from_env("pool-worker")
    try:
        with obs.span("worker.start", plugins=len(plugin_modules)):
            import repro.runner.sweep  # noqa: F401  (imports the full simulator stack)

            load_plugins(plugin_modules)
    except Exception:
        pass
    finally:
        if ready is not None:
            ready.release()
    while True:
        obs.flush()
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, function, argument = message
        try:
            with obs.span("worker.batch"):
                value = function(argument)
        except Exception as exc:
            try:
                payload_exc: Exception = exc
                pickle.dumps(payload_exc)
            except Exception:
                payload_exc = RuntimeError(f"unpicklable worker exception: {exc!r}")
            try:
                _send_envelope(conn, task_id, "error", payload_exc)
            except (BrokenPipeError, OSError):
                return
            continue
        if isinstance(value, VanishResult):
            # lost-heartbeat fault: the result exists but is never sent;
            # from the parent's view this worker is now a zombie, which is
            # what the timeout / lease machinery must handle.
            time.sleep(value.hang_s)
            continue
        try:
            _send_envelope(conn, task_id, "ok", value)
        except (BrokenPipeError, OSError):
            return


@dataclass
class TaskOutcome:
    """How one submitted task ended: a value, or a typed error.

    ``error`` is either an :class:`~repro.runner.executor.ExecutionFault`
    (worker death, timeout, corrupt payload — infrastructure) or the
    exception the task function itself raised (re-raised faithfully by
    strict callers).
    """

    task_id: int
    value: Any = None
    error: Optional[Exception] = None


@dataclass
class _Pending:
    """A submitted-but-unassigned task in the session queue."""

    task_id: int
    function: Callable[[Any], Any]
    argument: Any
    timeout_s: Optional[float]
    describe: str
    not_before: float = 0.0


@dataclass
class _Assigned:
    """What a busy worker is holding, until when, and for which session."""

    task: _Pending
    deadline: Optional[float] = None
    epoch: int = 0


class _Worker:
    """One spawned worker process and the parent's end of its pipe."""

    __slots__ = ("process", "conn", "assigned")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.assigned: Optional[_Assigned] = None


class TaskSession:
    """A stream of task submissions and outcomes over a pool's workers.

    The session assigns exactly one task per worker at a time, so when a
    worker dies the parent knows precisely which task died with it.
    Submissions are allowed while :meth:`outcomes` is being consumed —
    that is how the executor layer resubmits failed specs with backoff
    (``not_before``) without a second scheduling thread.
    """

    def __init__(self, pool: "WorkerPool") -> None:
        self.pool = pool
        self._queue: deque = deque()
        self._next_task_id = 0
        # Sessions are numbered so a result from an *abandoned* session (a
        # strict sweep raised mid-stream and stopped consuming) is
        # recognizably stale: the worker finishes its old task eventually,
        # and whichever session is listening then just clears it to idle.
        self.epoch = pool._next_epoch
        pool._next_epoch += 1

    def submit(
        self,
        function: Callable[[Any], Any],
        argument: Any,
        timeout_s: Optional[float] = None,
        describe: str = "",
        not_before: float = 0.0,
    ) -> int:
        """Queue one task; returns its id (echoed in the outcome).

        ``not_before`` is a ``time.monotonic()`` floor for assignment —
        the mechanism behind retry backoff.  ``describe`` names the work
        (spec labels) for error messages.
        """
        task_id = self._next_task_id
        self._next_task_id += 1
        self._queue.append(
            _Pending(task_id, function, argument, timeout_s, describe, not_before)
        )
        return task_id

    @property
    def pending(self) -> int:
        return len(self._queue) + sum(
            1
            for w in self.pool._workers
            if w.assigned is not None and w.assigned.epoch == self.epoch
        )

    def outcomes(self) -> Iterator[TaskOutcome]:
        """Yield task outcomes as they land, until nothing is pending.

        The loop: assign queued tasks to idle workers, wait on every
        worker pipe (dead workers surface as EOF), enforce deadlines, and
        repeat.  Workers that die or get killed for a timeout are
        respawned immediately so capacity never decays.
        """
        pool = self.pool
        pool.start()
        while self._queue or any(
            w.assigned is not None and w.assigned.epoch == self.epoch
            for w in pool._workers
        ):
            self._assign_idle()
            yield from self._reap(self._wait_timeout())

    def _assign_idle(self) -> None:
        now = time.monotonic()
        for worker in self.pool._workers:
            if worker.assigned is not None or not self._queue:
                continue
            pending = self._eligible(now)
            if pending is None:
                return
            deadline = now + pending.timeout_s if pending.timeout_s is not None else None
            worker.assigned = _Assigned(pending, deadline, self.epoch)
            try:
                worker.conn.send(
                    ((self.epoch, pending.task_id), pending.function, pending.argument)
                )
            except (BrokenPipeError, OSError):
                # Dead before it got the task: the reap pass will see the
                # EOF and fail this assignment through the normal path.
                pass

    def _eligible(self, now: float) -> Optional[_Pending]:
        """Pop the first queued task whose backoff floor has passed."""
        for _ in range(len(self._queue)):
            pending = self._queue.popleft()
            if pending.not_before <= now:
                return pending
            self._queue.append(pending)
        return None

    def _wait_timeout(self) -> float:
        timeout = POLL_S
        now = time.monotonic()
        for worker in self.pool._workers:
            if worker.assigned is not None and worker.assigned.deadline is not None:
                timeout = min(timeout, max(0.0, worker.assigned.deadline - now))
        return timeout

    def _reap(self, timeout: float) -> Iterator[TaskOutcome]:
        """One wait cycle: landed results, dead workers, expired deadlines."""
        pool = self.pool
        conns = [w.conn for w in pool._workers]
        ready = connection_wait(conns, timeout) if conns else []
        for worker in list(pool._workers):
            if worker.conn in ready:
                outcome = self._receive(worker)
                if outcome is not None:
                    yield outcome
        now = time.monotonic()
        for worker in list(pool._workers):
            assigned = worker.assigned
            if (
                assigned is not None
                and assigned.deadline is not None
                and now >= assigned.deadline
            ):
                pool._kill_worker(worker)
                pool._respawn(worker)
                if assigned.epoch == self.epoch:
                    yield TaskOutcome(
                        assigned.task.task_id,
                        error=SpecTimeoutError(
                            assigned.task.describe, assigned.task.timeout_s or 0.0
                        ),
                    )

    def _receive(self, worker: _Worker) -> Optional[TaskOutcome]:
        """Drain one message (or the EOF of a dead worker) from a pipe."""
        pool = self.pool
        assigned = worker.assigned
        try:
            task_key, status, payload, digest = worker.conn.recv()
        except (EOFError, OSError):
            # EOF can arrive before the child is reaped; a short join makes
            # the exit code available for the error message.
            worker.process.join(1.0)
            exitcode = worker.process.exitcode
            pool._kill_worker(worker)
            pool._respawn(worker)
            if assigned is None or assigned.epoch != self.epoch:
                return None  # died idle (or holding stale work): respawned
            return TaskOutcome(
                assigned.task.task_id,
                error=WorkerDiedError(assigned.task.describe, exitcode),
            )
        worker.assigned = None
        if (
            assigned is None
            or assigned.epoch != self.epoch
            or task_key != (assigned.epoch, assigned.task.task_id)
        ):
            # A straggler from an abandoned session: the worker is healthy
            # and idle again, but nobody wants this result.
            return None
        task_id = assigned.task.task_id
        describe = assigned.task.describe
        if hashlib.sha256(payload).hexdigest() != digest:
            return TaskOutcome(
                task_id,
                error=PayloadError(f"result payload failed integrity check: {describe}"),
            )
        try:
            value = pickle.loads(payload)
        except Exception:
            return TaskOutcome(
                task_id,
                error=PayloadError(f"result payload undecodable: {describe}"),
            )
        if status == "error":
            return TaskOutcome(task_id, error=value)
        return TaskOutcome(task_id, value=value)


class WorkerPool:
    """A persistent ``spawn`` worker pool, reusable across sweeps.

    The pool starts lazily: constructing one is free, and the first
    ``run_sweep`` (or an explicit :meth:`start`) pays the spawn cost.
    ``plugin_modules`` are imported once per worker at start-up; sweeps whose
    specs declare *additional* plugin modules still work — workers import
    those on first use through the idempotent-fast
    :func:`~repro.scenario.load_plugins`.
    """

    def __init__(self, jobs: int, plugin_modules: Sequence[str] = ()) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.plugin_modules = tuple(dict.fromkeys(plugin_modules))
        self._context = multiprocessing.get_context("spawn")
        self._workers: List[_Worker] = []
        self._next_epoch = 0
        #: Wall-clock cost of the most recent :meth:`start`.
        self.startup_s = 0.0
        #: How many times this pool has actually spawned workers.
        self.starts = 0
        #: Workers respawned after dying or being killed for a timeout.
        self.respawns = 0

    @property
    def started(self) -> bool:
        return bool(self._workers)

    def _spawn_one(self, ready: Any) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self.plugin_modules, ready),
            daemon=True,
        )
        process.start()
        # Close our copy of the child's end: the child's death must read as
        # EOF on the parent end, which it cannot while we hold this open.
        child_conn.close()
        return _Worker(process, parent_conn)

    def start(self) -> float:
        """Spawn the workers if needed; returns the start-up cost just paid.

        Returns ``0.0`` when the pool is already warm — callers can therefore
        unconditionally add the return value to their ``pool_startup_s``.
        """
        if self._workers:
            return 0.0
        pool_span = obs.span("pool.start", jobs=self.jobs)
        pool_span.__enter__()
        began = time.perf_counter()
        # Readiness handshake: every worker releases once from its body and
        # the parent acquires jobs times, so start() returns only when all
        # workers have imported the simulator stack and the spawn cost is
        # fully attributed here instead of bleeding into the first
        # dispatched batch.  (A semaphore, not a barrier: release never
        # blocks, so a worker respawned later cannot stall on a handshake
        # nobody else is attending.)
        ready = self._context.Semaphore(0)
        self._workers = [self._spawn_one(ready) for _ in range(self.jobs)]
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        for _ in range(self.jobs):
            if not ready.acquire(timeout=max(0.0, deadline - time.monotonic())):
                break  # pragma: no cover - degraded: cost lands in batch 1
        self.startup_s = time.perf_counter() - began
        self.starts += 1
        pool_span.set(startup_s=round(self.startup_s, 6))
        pool_span.__exit__(None, None, None)
        return self.startup_s

    def _kill_worker(self, worker: _Worker) -> None:
        """Forcefully retire one worker (dead already, or being timed out)."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(5.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn child
                worker.process.kill()
                worker.process.join(5.0)
        if worker in self._workers:
            self._workers.remove(worker)

    def _respawn(self, worker: _Worker) -> None:
        """Replace a retired worker so pool capacity never decays.

        The replacement gets no readiness semaphore (nobody would wait on
        it, and the parent would drop — and thereby unlink — it before the
        child could unpickle it); it starts serving once its import
        finishes.
        """
        self.respawns += 1
        obs.instant("pool.respawn", respawns=self.respawns)
        self._workers.append(self._spawn_one(None))

    def session(self) -> TaskSession:
        """Open a task session — the executor layer's submission interface."""
        return TaskSession(self)

    def imap_unordered(
        self, function: Callable[[T], Any], iterable: Iterable[T]
    ) -> Iterable[Any]:
        """Stream ``function`` over ``iterable``, yielding results as they land.

        Completion order is arbitrary — callers must carry their own indices
        (the sweep's batched dispatch does) — which is exactly what lets cache
        writes and progress reporting overlap the remaining execution.  Any
        task failure raises: the task's own exception, or
        :class:`~repro.runner.executor.WorkerDiedError` when the worker
        vanished mid-task (where the old ``multiprocessing.Pool`` simply
        hung forever).
        """
        session = self.session()
        for item in iterable:
            # Name the work for error messages: a failure must say *what*
            # was running, even through this untyped convenience path.
            text = repr(item)
            session.submit(
                function, item, describe=text if len(text) <= 120 else text[:117] + "..."
            )
        for outcome in session.outcomes():
            if outcome.error is not None:
                raise outcome.error
            yield outcome.value

    def close(self) -> None:
        """Terminate the workers.  The pool can be started again later."""
        for worker in list(self._workers):
            self._kill_worker(worker)
        self._workers = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Batched dispatch planning
# --------------------------------------------------------------------------- #
def estimate_cost(spec: Any) -> float:
    """Estimated execution cost of one run spec (arbitrary relative units).

    Event count — and therefore wall time — scales with how long the
    simulation runs and how many DMA agents generate traffic, so the
    heuristic is ``simulated duration x active agents``.  The agent count
    comes from the resolved scenario's workload spec list, which is plain
    data and cheap to build; a workload that cannot be built in this process
    (a worker-only plugin registration) falls back to a fixed estimate
    rather than failing the plan.
    """
    scenario = spec.resolved_scenario()
    duration_ps = max(1, scenario.platform.sim.duration_ps)
    try:
        agents = len(scenario.build_workload().dmas)
    except Exception:
        agents = DEFAULT_AGENT_ESTIMATE
    return float(duration_ps) * max(1, agents)


def plan_batches(
    costed_items: Sequence[Tuple[T, float]],
    jobs: int,
    oversubscribe: int = OVERSUBSCRIBE,
) -> List[List[T]]:
    """Group items into contiguous batches of roughly equal estimated cost.

    Aims for about ``jobs x oversubscribe`` batches: enough slack that the
    pool stays balanced when estimates are off, few enough that IPC stays a
    rounding error.  Order within and across batches follows the input, so a
    dispatch plan is deterministic for a given grid.  An item costlier than
    the target gets a batch of its own; a grid of uniform short runs packs
    many specs per message.
    """
    if not costed_items:
        return []
    total = sum(cost for _, cost in costed_items)
    target = total / max(1, jobs * oversubscribe)
    batches: List[List[T]] = []
    current: List[T] = []
    current_cost = 0.0
    for item, cost in costed_items:
        if current and current_cost + cost > target:
            batches.append(current)
            current, current_cost = [], 0.0
        current.append(item)
        current_cost += cost
    if current:
        batches.append(current)
    return batches
