"""The executor layer: one execution contract, three ways to run it.

``run_sweep`` historically hard-wired its two cold paths (sequential
in-process, batched warm pool).  This module lifts "execute these cold
specs" behind :class:`Executor`, so the sweep's bookkeeping — cache
writes, result placement, progress, observers — is written once while the
*mechanism* varies:

* :class:`InProcessExecutor` — the sequential path: no processes, no IPC.
* :class:`PoolExecutor` — batched dispatch on a (possibly warm)
  :class:`~repro.runner.pool.WorkerPool`.
* :class:`~repro.runner.queue.QueueExecutor` — workers lease batches from
  a file-backed work queue with heartbeats; the crash-resumable path.

All three share one :class:`FailurePolicy`: per-spec wall-clock timeouts,
retry with exponential backoff (jitter is *deterministic* — derived from
the spec key and attempt number, never from a clock or RNG — so two runs
of the same failing sweep behave identically), and poison-point
*quarantine*: after ``max_attempts`` failures a spec is recorded as a
:class:`QuarantinedPoint` and the sweep completes without it, instead of
aborting everything the other workers already produced.  The default
policy (:data:`STRICT_POLICY`) is one attempt and raise-on-failure —
exactly the semantics existing callers already rely on.

Executors yield a stream of :class:`Landed` / :class:`QuarantinedPoint`
events; they own parallelism, retries and the fault taxonomy below, while
the sweep driver owns what landing *means*.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.runner.faults import (
    CorruptResult,
    FaultInjector,
    VanishResult,
    apply_process_fault,
    wrap_result,
)
from repro.scenario import load_plugins
from repro.system.experiment import ExperimentResult, RunTimings, run_experiment_timed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool imports us)
    from repro.runner.pool import WorkerPool
    from repro.runner.sweep import RunSpec, SweepStats

#: One cold point, as the sweep driver hands it over: the spec indices that
#: share the result (head executed, tail deduplicated), the spec, its key.
ColdEntry = Tuple[List[int], "RunSpec", str]


# --------------------------------------------------------------------------- #
# Fault taxonomy
# --------------------------------------------------------------------------- #
class ExecutionFault(RuntimeError):
    """Base for infrastructure failures (as opposed to task exceptions)."""


class WorkerDiedError(ExecutionFault):
    """A worker process died (crash, OOM kill) while holding work."""

    def __init__(self, labels: str, exitcode: Optional[int] = None) -> None:
        detail = f"exit code {exitcode}" if exitcode is not None else "no exit code"
        super().__init__(f"worker died ({detail}) while running: {labels}")
        self.labels = labels
        self.exitcode = exitcode


class SpecTimeoutError(ExecutionFault):
    """A spec (or batch) exceeded its wall-clock timeout and was killed."""

    def __init__(self, labels: str, timeout_s: float) -> None:
        super().__init__(f"timed out after {timeout_s:g}s: {labels}")
        self.labels = labels
        self.timeout_s = timeout_s


class LeaseExpiredError(ExecutionFault):
    """A queue worker stopped heartbeating and its lease was stolen."""


class PayloadError(ExecutionFault):
    """A result payload failed its integrity check (corrupt in flight)."""


# --------------------------------------------------------------------------- #
# Failure policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailurePolicy:
    """What happens when a spec fails: how long to wait, how often to retry.

    ``backoff_for`` grows exponentially and adds *deterministic* jitter — a
    hash of the spec key and attempt number — so concurrent retries spread
    out without making any run irreproducible.  ``on_exhausted`` picks
    between the strict contract (``"raise"``: the sweep aborts with the
    last error) and the resilient one (``"quarantine"``: the sweep
    completes, the point is recorded as failed).
    """

    timeout_s: Optional[float] = None
    max_attempts: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    on_exhausted: str = "raise"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.on_exhausted not in ("raise", "quarantine"):
            raise ValueError(
                f"on_exhausted must be 'raise' or 'quarantine', got {self.on_exhausted!r}"
            )

    def backoff_for(self, attempt: int, key: str) -> float:
        """Delay before retry number ``attempt + 1`` of the spec ``key``."""
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
        )
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return base * (1.0 + self.jitter * fraction)


#: The historical ``run_sweep`` contract: one attempt, any failure raises.
STRICT_POLICY = FailurePolicy()

#: The fault-tolerant default for campaigns that opt in: three attempts per
#: spec, then quarantine — the campaign always completes.
RESILIENT_POLICY = FailurePolicy(max_attempts=3, on_exhausted="quarantine")


# --------------------------------------------------------------------------- #
# Execution events
# --------------------------------------------------------------------------- #
@dataclass
class Landed:
    """One cold spec executed successfully (possibly after retries)."""

    entry: ColdEntry
    result: ExperimentResult
    timings: RunTimings
    attempts: int = 1


@dataclass(frozen=True)
class QuarantinedPoint:
    """One cold spec that exhausted its attempts and was set aside.

    ``indices`` are the sweep positions the spec covered (including
    deduplicated duplicates); ``error`` is ``ClassName: message`` of the
    last failure — stable text, no pids or addresses, so it is safe to
    record in a manifest.
    """

    label: str
    key: str
    attempts: int
    error: str
    indices: Tuple[int, ...] = ()


ExecutionEvent = Union[Landed, QuarantinedPoint]


def describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _labels(entries: List[ColdEntry]) -> str:
    return ", ".join(entry[1].display_label() for entry in entries)


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class Executor:
    """The execution contract ``run_sweep`` drives.

    ``execute`` yields one event per cold entry — :class:`Landed` or
    :class:`QuarantinedPoint` — in completion order, updating the
    mechanism-owned stats fields (``batches``, ``pool_startup_s``,
    ``sim_wall_s``, ``retries``) as it goes.  Raising aborts the sweep
    (the strict policy's exhaustion path).
    """

    name = "executor"

    def execute(
        self,
        cold: List[ColdEntry],
        stats: "SweepStats",
        policy: FailurePolicy,
        cache_dir: Optional[str] = None,
    ) -> Iterator[ExecutionEvent]:
        raise NotImplementedError


def run_spec_guarded(spec: "RunSpec", injector: Optional[FaultInjector]) -> Any:
    """Execute one spec with fault hooks; the worker/in-process common core.

    Returns ``(result, timings)`` possibly wrapped in a payload-fault
    marker (:class:`~repro.runner.faults.CorruptResult` /
    :class:`~repro.runner.faults.VanishResult`) for the IPC layer.
    """
    load_plugins(spec.plugin_modules)
    plan = injector.fires() if injector is not None else None
    if plan is not None:
        apply_process_fault(plan)  # crash / hang / error act before the run
    with obs.span("point.run", label=spec.display_label()):
        result, timings = run_experiment_timed(
            spec.resolved_scenario(), keep_trace=spec.keep_trace
        )
    return wrap_result(plan, (result, timings))


def execute_batch_guarded(
    batch: List[Tuple[int, "RunSpec"]],
) -> Any:
    """Worker entry point: run one batch of (position, spec) pairs.

    Mirrors the historical ``_execute_batch`` but threads the fault
    injector through each spec.  A payload fault on *any* spec marks the
    whole batch's envelope (the batch is one IPC message, so that is the
    granularity corruption physically has).
    """
    injector = FaultInjector.from_env()
    executed: List[Tuple[int, ExperimentResult, RunTimings]] = []
    marker: Optional[Any] = None
    for position, spec in batch:
        value = run_spec_guarded(spec, injector)
        if isinstance(value, (CorruptResult, VanishResult)):
            marker = value
            value = value.value
        result, timings = value
        executed.append((position, result, timings))
    if isinstance(marker, CorruptResult):
        return CorruptResult(executed)
    if isinstance(marker, VanishResult):
        return VanishResult(executed, marker.hang_s)
    return executed


class InProcessExecutor(Executor):
    """Sequential execution in the driver process.

    Timeouts are documented-unenforced here: there is no second process to
    keep the clock, and killing the driver to stop a spec would defeat the
    point.  ``crash`` faults genuinely take the driver down — which is the
    scenario ``campaign run --resume`` exists for, not one retry can fix.
    """

    name = "inprocess"

    def execute(
        self,
        cold: List[ColdEntry],
        stats: "SweepStats",
        policy: FailurePolicy,
        cache_dir: Optional[str] = None,
    ) -> Iterator[ExecutionEvent]:
        injector = FaultInjector.from_env()
        for entry in cold:
            indices, spec, key = entry
            attempt = 0
            while True:
                attempt += 1
                try:
                    value = run_spec_guarded(spec, injector)
                    if not isinstance(value, tuple):
                        value = value.value  # payload faults are moot in-process
                    result, timings = value
                except Exception as exc:
                    event = self._on_failure(entry, attempt, exc, policy, stats)
                    if event is None:
                        continue
                    yield event
                    break
                yield Landed(entry, result, timings, attempt)
                break
        # One process, one chain: simulation wall time is the full sum.
        stats.sim_wall_s = stats.sim_cpu_s

    @staticmethod
    def _on_failure(
        entry: ColdEntry,
        attempt: int,
        exc: Exception,
        policy: FailurePolicy,
        stats: "SweepStats",
    ) -> Optional[QuarantinedPoint]:
        indices, spec, key = entry
        if attempt < policy.max_attempts:
            stats.retries += 1
            delay = policy.backoff_for(attempt, key)
            obs.instant(
                "executor.retry",
                label=spec.display_label(),
                attempt=attempt,
                backoff_s=round(delay, 6),
            )
            time.sleep(delay)
            return None
        if policy.on_exhausted == "quarantine":
            obs.instant(
                "executor.quarantine",
                label=spec.display_label(),
                attempts=attempt,
                error=type(exc).__name__,
            )
            return QuarantinedPoint(
                label=spec.display_label(),
                key=key,
                attempts=attempt,
                error=describe_error(exc),
                indices=tuple(indices),
            )
        raise exc


@dataclass
class _PoolTask:
    """Book-keeping for one in-flight pool submission."""

    positions: List[int]
    attempt: int = 1  # how many times each covered spec has been tried


class PoolExecutor(Executor):
    """Cost-batched dispatch on a :class:`~repro.runner.pool.WorkerPool`.

    Failure isolation works by *splitting*: when a batch fails (worker
    death, timeout, corrupt payload, task exception) every spec it covered
    is resubmitted as its own single-spec task after the policy backoff —
    the poison point fails alone on the next round while its innocent
    batch-mates complete.  Dead workers are respawned by the pool session
    itself, so remaining batches keep executing regardless of policy.
    """

    name = "pool"

    def __init__(
        self,
        pool: Optional["WorkerPool"] = None,
        jobs: int = 1,
        batching: bool = True,
    ) -> None:
        self.pool = pool
        self.jobs = jobs
        self.batching = batching

    def execute(
        self,
        cold: List[ColdEntry],
        stats: "SweepStats",
        policy: FailurePolicy,
        cache_dir: Optional[str] = None,
    ) -> Iterator[ExecutionEvent]:
        from repro.runner.pool import WorkerPool, estimate_cost, plan_batches

        own_pool = self.pool is None
        if own_pool:
            plugin_modules = [m for _, spec, _ in cold for m in spec.plugin_modules]
            pool = WorkerPool(min(self.jobs, len(cold)), plugin_modules=plugin_modules)
        else:
            pool = self.pool
        try:
            stats.pool_startup_s += pool.start()
            if self.batching:
                costed = [
                    ((position, spec), estimate_cost(spec))
                    for position, (_, spec, _) in enumerate(cold)
                ]
                batches = plan_batches(costed, pool.jobs)
            else:
                batches = [
                    [(position, spec)] for position, (_, spec, _) in enumerate(cold)
                ]
            stats.batches = len(batches)
            chains = [0.0] * max(1, pool.jobs)
            session = pool.session()
            pending = {}
            for batch in batches:
                positions = [position for position, _ in batch]
                task_id = session.submit(
                    execute_batch_guarded,
                    batch,
                    timeout_s=(
                        policy.timeout_s * len(batch)
                        if policy.timeout_s is not None
                        else None
                    ),
                    describe=_labels([cold[p] for p in positions]),
                )
                pending[task_id] = _PoolTask(positions)
            for outcome in session.outcomes():
                task = pending.pop(outcome.task_id)
                if outcome.error is None:
                    batch_sim_s = 0.0
                    for position, result, timings in outcome.value:
                        batch_sim_s += timings.sim_s
                        yield Landed(cold[position], result, timings, task.attempt)
                    chains[chains.index(min(chains))] += batch_sim_s
                    continue
                for event in self._retry_or_quarantine(
                    session, pending, cold, task, outcome.error, policy, stats
                ):
                    yield event
            stats.sim_wall_s = max(chains)
        finally:
            if own_pool:
                pool.close()

    def _retry_or_quarantine(
        self,
        session: Any,
        pending: dict,
        cold: List[ColdEntry],
        task: _PoolTask,
        error: Exception,
        policy: FailurePolicy,
        stats: "SweepStats",
    ) -> List[QuarantinedPoint]:
        """Handle one failed submission: resubmit singles, or give up."""
        events: List[QuarantinedPoint] = []
        for position in task.positions:
            indices, spec, key = cold[position]
            if task.attempt < policy.max_attempts:
                stats.retries += 1
                delay = policy.backoff_for(task.attempt, key)
                obs.instant(
                    "executor.retry",
                    label=spec.display_label(),
                    attempt=task.attempt,
                    backoff_s=round(delay, 6),
                    error=type(error).__name__,
                )
                task_id = session.submit(
                    execute_batch_guarded,
                    [(position, spec)],
                    timeout_s=policy.timeout_s,
                    describe=spec.display_label(),
                    not_before=time.monotonic() + delay,
                )
                pending[task_id] = _PoolTask([position], attempt=task.attempt + 1)
            elif policy.on_exhausted == "quarantine":
                obs.instant(
                    "executor.quarantine",
                    label=spec.display_label(),
                    attempts=task.attempt,
                    error=type(error).__name__,
                )
                events.append(
                    QuarantinedPoint(
                        label=spec.display_label(),
                        key=key,
                        attempts=task.attempt,
                        error=describe_error(error),
                        indices=tuple(indices),
                    )
                )
            else:
                raise error
        return events
