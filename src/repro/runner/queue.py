"""The file-backed work queue executor: leases, heartbeats, crash-resume.

:class:`QueueExecutor` is the third :class:`~repro.runner.executor.Executor`
implementation, built for the failure modes a pipe-based pool cannot
survive: the coordination state lives on the *filesystem*, not in process
memory, so any participant — worker or driver — can die at any instant and
the remaining state still describes exactly what was running where.

The protocol (all operations are atomic at the filesystem level):

* The driver writes one ``tasks/<id>.<attempt>.task`` file per cost-balanced
  batch of specs (pickled, with a ``not_before`` floor for retry backoff).
* A worker *claims* a task by creating ``leases/<id>.lease`` with
  ``O_CREAT | O_EXCL`` — the filesystem arbitrates, exactly one claimant
  wins.  The lease names the worker's pid, a deadline, and which spec the
  worker is currently on.
* While running, a heartbeat thread atomically rewrites the lease
  (temp file + ``os.replace``) extending the deadline every
  ``heartbeat_s``.  A worker that stops heartbeating — killed, hung
  kernel-deep, or the ``lost-heartbeat`` fault — lets its deadline lapse,
  and the driver *steals* the lease: kill the pid, requeue the work as
  attempt N+1.
* Results return as ``results/<id>.<attempt>.res`` envelopes — SHA-256 of
  the pickled payload, then the payload — written via temp + replace, so a
  result file either exists complete and verifiable or not at all.

Crash-resume is a property of the data path, not extra machinery: each
worker writes every finished spec *immediately* into the shared
:class:`~repro.runner.cache.ResultCache` (whose writes are atomic and
concurrent-safe), so a campaign killed mid-flight has every completed
simulation on disk.  Re-running with the same cache directory — what
``repro campaign run --resume`` does — turns all of them into cache hits
and simulates only the genuinely missing points.

One driver per queue directory is assumed (the driver creates a fresh
unique subdirectory per execution, so a stale queue from a killed run can
never confuse a resumed one).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.runner.cache import ResultCache
from repro.runner.executor import (
    ColdEntry,
    ExecutionFault,
    FailurePolicy,
    Landed,
    LeaseExpiredError,
    PayloadError,
    QuarantinedPoint,
    SpecTimeoutError,
    describe_error,
    run_spec_guarded,
)
from repro.runner.faults import CorruptResult, FaultInjector, VanishResult
from repro.system.experiment import RunTimings

#: Default lease lifetime: how long a worker may go silent before its work
#: is stolen.  Several heartbeats fit inside, so one missed beat (a paging
#: stall, a long GC) is forgiven; a dead worker is detected faster than
#: this through its exit code.
DEFAULT_LEASE_S = 10.0
DEFAULT_HEARTBEAT_S = 1.0
DEFAULT_POLL_S = 0.05


# --------------------------------------------------------------------------- #
# On-disk primitives
# --------------------------------------------------------------------------- #
def _atomic_write_bytes(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _write_envelope(path: Path, value: Any, corrupt: bool = False) -> None:
    """Persist one integrity-checked result payload (digest + pickle)."""
    payload = pickle.dumps(value)
    digest = hashlib.sha256(payload).hexdigest()
    if corrupt:
        middle = len(payload) // 2
        payload = payload[:middle] + bytes([payload[middle] ^ 0xFF]) + payload[middle + 1 :]
    _atomic_write_bytes(path, digest.encode("ascii") + b"\n" + payload)


def _read_envelope(path: Path) -> Any:
    """Load and verify one result envelope; :class:`PayloadError` if bad."""
    data = path.read_bytes()
    newline = data.find(b"\n")
    if newline != 64:
        raise PayloadError(f"malformed result envelope: {path.name}")
    digest, payload = data[:newline].decode("ascii"), data[newline + 1 :]
    if hashlib.sha256(payload).hexdigest() != digest:
        raise PayloadError(f"result payload failed integrity check: {path.name}")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise PayloadError(f"result payload undecodable: {path.name} ({exc!r})") from exc


class WorkQueue:
    """The filesystem layout and atomic operations both sides share."""

    def __init__(self, directory: str) -> None:
        self.directory = Path(directory)
        self.tasks = self.directory / "tasks"
        self.leases = self.directory / "leases"
        self.results = self.directory / "results"
        for sub in (self.tasks, self.leases, self.results):
            sub.mkdir(parents=True, exist_ok=True)

    # -- tasks ---------------------------------------------------------- #
    def task_path(self, task_id: int, attempt: int) -> Path:
        return self.tasks / f"{task_id:06d}.{attempt}.task"

    def put_task(
        self,
        task_id: int,
        attempt: int,
        items: List[Tuple[int, Any]],
        cache_dir: Optional[str],
        not_before: float = 0.0,
    ) -> None:
        payload = {
            "task_id": task_id,
            "attempt": attempt,
            "items": items,
            "cache_dir": cache_dir,
            "not_before": not_before,
        }
        _atomic_write_bytes(self.task_path(task_id, attempt), pickle.dumps(payload))

    def list_tasks(self) -> List[Path]:
        return sorted(self.tasks.glob("*.task"))

    def remove_task(self, task_id: int, attempt: int) -> None:
        try:
            self.task_path(task_id, attempt).unlink()
        except FileNotFoundError:
            pass

    # -- leases --------------------------------------------------------- #
    def lease_path(self, task_id: int) -> Path:
        return self.leases / f"{task_id:06d}.lease"

    def claim(self, task_id: int, lease: Dict[str, Any]) -> bool:
        """Atomically claim a task; False when someone else holds it."""
        try:
            fd = os.open(
                self.lease_path(task_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            obs.instant("queue.claim", task=task_id, won=False)
            return False
        with os.fdopen(fd, "w") as handle:
            json.dump(lease, handle)
        obs.instant("queue.claim", task=task_id, won=True)
        return True

    def renew(self, task_id: int, lease: Dict[str, Any]) -> None:
        """Heartbeat: atomically rewrite the lease with a fresh deadline."""
        obs.instant("queue.heartbeat", task=task_id)
        _atomic_write_bytes(
            self.lease_path(task_id), json.dumps(lease).encode("utf-8")
        )

    def read_lease(self, task_id: int) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.lease_path(task_id).read_text())
        except (OSError, ValueError):
            return None

    def release(self, task_id: int) -> None:
        try:
            self.lease_path(task_id).unlink()
        except FileNotFoundError:
            pass

    # -- results -------------------------------------------------------- #
    def result_path(self, task_id: int, attempt: int) -> Path:
        return self.results / f"{task_id:06d}.{attempt}.res"

    def put_result(
        self, task_id: int, attempt: int, value: Any, corrupt: bool = False
    ) -> None:
        _write_envelope(self.result_path(task_id, attempt), value, corrupt=corrupt)

    def results_for(self, task_id: int) -> List[Path]:
        return sorted(self.results.glob(f"{task_id:06d}.*.res"))

    # -- shutdown ------------------------------------------------------- #
    @property
    def closed_marker(self) -> Path:
        return self.directory / "closed"

    def close(self) -> None:
        self.closed_marker.touch()

    @property
    def closed(self) -> bool:
        return self.closed_marker.exists()


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
class _Heartbeat(threading.Thread):
    """Extends the lease every ``heartbeat_s`` until stopped.

    The thread also carries the per-spec progress fields (which spec the
    worker is on, since when) so the driver can enforce per-spec timeouts
    from the lease alone.  ``suppress()`` is the ``lost-heartbeat`` fault's
    hook: the worker keeps running, the lease silently goes stale.
    """

    def __init__(
        self,
        queue: WorkQueue,
        task_id: int,
        worker: str,
        lease_s: float,
        heartbeat_s: float,
    ) -> None:
        super().__init__(daemon=True)
        self.queue = queue
        self.task_id = task_id
        self.worker = worker
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._spec_position: Optional[int] = None
        self._spec_started: Optional[float] = None

    def lease(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "worker": self.worker,
                "pid": os.getpid(),
                "deadline": time.time() + self.lease_s,
                "task": self.task_id,
                "spec_position": self._spec_position,
                "spec_started": self._spec_started,
            }

    def on_spec(self, position: int) -> None:
        with self._lock:
            self._spec_position = position
            self._spec_started = time.time()
        if not self._stop.is_set():
            self.queue.renew(self.task_id, self.lease())

    def suppress(self) -> None:
        self._stop.set()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            try:
                self.queue.renew(self.task_id, self.lease())
            except OSError:  # pragma: no cover - queue dir torn down under us
                return


def _run_claimed_task(
    queue: WorkQueue,
    task: Dict[str, Any],
    worker: str,
    lease_s: float,
    heartbeat_s: float,
    injector: Optional[FaultInjector],
) -> None:
    """Execute one claimed task: specs, cache writes, result envelope."""
    task_id, attempt = task["task_id"], task["attempt"]
    heartbeat = _Heartbeat(queue, task_id, worker, lease_s, heartbeat_s)
    heartbeat.start()
    cache = ResultCache(task["cache_dir"]) if task["cache_dir"] else None
    executed = []
    corrupt = False
    vanish_s: Optional[float] = None
    try:
        for position, spec in task["items"]:
            heartbeat.on_spec(position)
            key = spec.key()
            if cache is not None:
                cached = cache.get(key)
                if cached is not None:
                    # Already recorded (a retry of work that finished before
                    # its envelope was lost): no simulation, zero timings.
                    executed.append((position, cached, RunTimings(0.0, 0.0, 0.0)))
                    continue
            value = run_spec_guarded(spec, injector)
            if isinstance(value, CorruptResult):
                corrupt = True
                value = value.value
            elif isinstance(value, VanishResult):
                # lost-heartbeat: stop renewing, stall — the driver must
                # steal the lease out from under us.
                heartbeat.suppress()
                vanish_s = value.hang_s
                value = value.value
            result, timings = value
            executed.append((position, result, timings))
            if cache is not None:
                # The crash-resume substrate: every finished spec is on disk
                # before the next one starts, whatever happens to anyone.
                cache.put(key, result, include_trace=spec.keep_trace)
        if vanish_s is not None:
            time.sleep(vanish_s)
        queue.put_result(task_id, attempt, ("ok", executed), corrupt=corrupt)
    except Exception as exc:
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"unpicklable worker exception: {exc!r}")
        queue.put_result(task_id, attempt, ("error", exc))
    finally:
        heartbeat.stop()
        queue.release(task_id)
        queue.remove_task(task_id, attempt)


def queue_worker_main(
    queue_dir: str,
    worker: str,
    plugin_modules: Tuple[str, ...],
    lease_s: float,
    heartbeat_s: float,
    poll_s: float,
    ready: Any,
) -> None:
    """Worker process body: claim, run, write results, repeat until closed.

    Import semantics mirror the pool worker: the simulator stack and the
    declared plugins load once up front, a failed import is swallowed so it
    surfaces later as an ordinary task failure, and the readiness semaphore
    only exists so spawn cost is measured by the driver (``None`` for
    respawned workers — the original semaphore may be gone by then).
    """
    obs.install_from_env("queue-worker")
    try:
        with obs.span("worker.start", plugins=len(plugin_modules)):
            import repro.runner.sweep  # noqa: F401  (imports the full simulator stack)

            from repro.scenario import load_plugins

            load_plugins(plugin_modules)
    except Exception:
        pass
    finally:
        if ready is not None:
            ready.release()
    queue = WorkQueue(queue_dir)
    injector = FaultInjector.from_env()
    while True:
        obs.flush()
        claimed = False
        for path in queue.list_tasks():
            try:
                task = pickle.loads(path.read_bytes())
            except (OSError, pickle.PickleError, EOFError):
                continue  # vanished or mid-replace: next scan sees it
            if task["not_before"] > time.time():
                continue
            if queue.lease_path(task["task_id"]).exists():
                continue
            probe = _Heartbeat(queue, task["task_id"], worker, lease_s, heartbeat_s)
            if not queue.claim(task["task_id"], probe.lease()):
                continue
            with obs.span(
                "worker.task", task=task["task_id"], attempt=task["attempt"]
            ):
                _run_claimed_task(queue, task, worker, lease_s, heartbeat_s, injector)
            claimed = True
            break
        if not claimed:
            if queue.closed:
                return
            time.sleep(poll_s)


# --------------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------------- #
@dataclass
class _QueueTask:
    """Driver bookkeeping for one outstanding task."""

    positions: List[int]
    attempt: int = 1


class QueueExecutor:
    """Lease-based execution over a file-backed work queue.

    Spawns ``jobs`` queue workers against a fresh subdirectory of
    ``queue_dir`` (a temporary directory when ``None``), then supervises:
    results are accepted from *any* attempt that passes the integrity
    check, expired leases are stolen (holder killed, work requeued with
    backoff), dead workers are respawned, and per-spec wall-clock timeouts
    are enforced from the lease's progress fields.  Failed multi-spec
    batches are split into single-spec tasks so a poison point quarantines
    alone.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: Optional[str] = None,
        jobs: int = 1,
        batching: bool = True,
        lease_s: float = DEFAULT_LEASE_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        poll_s: float = DEFAULT_POLL_S,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.queue_dir = queue_dir
        self.jobs = jobs
        self.batching = batching
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        #: Workers respawned after dying mid-run (for tests / stats).
        self.respawns = 0
        self._next_task_id = 0

    def execute(
        self,
        cold: List[ColdEntry],
        stats: Any,
        policy: FailurePolicy,
        cache_dir: Optional[str] = None,
    ) -> Iterator[Any]:
        from repro.runner.pool import estimate_cost, plan_batches

        if self.queue_dir is not None:
            Path(self.queue_dir).mkdir(parents=True, exist_ok=True)
        # A fresh, uniquely named run directory: a queue left behind by a
        # killed driver can never feed tasks or results into this run.
        run_dir = tempfile.mkdtemp(prefix="run-", dir=self.queue_dir)
        queue = WorkQueue(run_dir)
        jobs = min(self.jobs, len(cold)) if cold else self.jobs
        if self.batching:
            costed = [
                ((position, spec), estimate_cost(spec))
                for position, (_, spec, _) in enumerate(cold)
            ]
            batches = plan_batches(costed, jobs)
        else:
            batches = [[(position, spec)] for position, (_, spec, _) in enumerate(cold)]
        stats.batches = len(batches)
        pending: Dict[int, _QueueTask] = {}
        self._next_task_id = 0
        for batch in batches:
            pending[self._next_task_id] = _QueueTask([position for position, _ in batch])
            queue.put_task(self._next_task_id, 1, batch, cache_dir)
            self._next_task_id += 1

        plugin_modules = tuple(
            dict.fromkeys(m for _, spec, _ in cold for m in spec.plugin_modules)
        )
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        ready = context.Semaphore(0)
        began = time.perf_counter()
        workers = [
            self._spawn(context, queue, i, plugin_modules, ready) for i in range(jobs)
        ]
        deadline = time.monotonic() + 120.0
        for _ in range(jobs):
            if not ready.acquire(timeout=max(0.0, deadline - time.monotonic())):
                break  # pragma: no cover - degraded start-up
        stats.pool_startup_s += time.perf_counter() - began

        respawn_budget = jobs + len(cold) * policy.max_attempts
        chains = [0.0] * max(1, jobs)
        try:
            while pending:
                progressed = False
                for event in self._collect_results(
                    queue, pending, cold, policy, stats, cache_dir
                ):
                    progressed = True
                    if isinstance(event, Landed):
                        chains[chains.index(min(chains))] += event.timings.sim_s
                    yield event
                yield from self._police_leases(
                    queue, pending, workers, cold, policy, stats, cache_dir
                )
                workers, died = self._reap_workers(
                    context, queue, workers, plugin_modules, pending, respawn_budget
                )
                respawn_budget -= died
                if not progressed and pending:
                    time.sleep(self.poll_s)
            stats.sim_wall_s = max(chains)
        finally:
            queue.close()
            for process in workers:
                process.join(5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(5.0)

    def _spawn(
        self,
        context: Any,
        queue: WorkQueue,
        index: int,
        plugin_modules: Tuple[str, ...],
        ready: Any,
    ) -> Any:
        process = context.Process(
            target=queue_worker_main,
            args=(
                str(queue.directory),
                f"qw-{index}",
                plugin_modules,
                self.lease_s,
                self.heartbeat_s,
                self.poll_s,
                ready,
            ),
            daemon=True,
        )
        process.start()
        return process

    # -- supervision passes --------------------------------------------- #
    def _collect_results(
        self,
        queue: WorkQueue,
        pending: Dict[int, _QueueTask],
        cold: List[ColdEntry],
        policy: FailurePolicy,
        stats: Any,
        cache_dir: Optional[str],
    ) -> Iterator[Any]:
        for task_id in list(pending):
            task = pending[task_id]
            for path in queue.results_for(task_id):
                try:
                    status, value = _read_envelope(path)
                except PayloadError as exc:
                    path.unlink()
                    yield from self._failed(
                        queue, pending, task_id, cold, exc, policy, stats, cache_dir
                    )
                    break
                path.unlink()
                if status == "error":
                    yield from self._failed(
                        queue, pending, task_id, cold, value, policy, stats, cache_dir
                    )
                    break
                del pending[task_id]
                queue.release(task_id)
                queue.remove_task(task_id, task.attempt)
                for position, result, timings in value:
                    yield Landed(cold[position], result, timings, task.attempt)
                break

    def _police_leases(
        self,
        queue: WorkQueue,
        pending: Dict[int, _QueueTask],
        workers: List[Any],
        cold: List[ColdEntry],
        policy: FailurePolicy,
        stats: Any,
        cache_dir: Optional[str],
    ) -> Iterator[Any]:
        now = time.time()
        pids = {process.pid: process for process in workers}
        for task_id in list(pending):
            lease = queue.read_lease(task_id)
            if lease is None:
                continue
            error: Optional[ExecutionFault] = None
            labels = ", ".join(
                cold[p][1].display_label() for p in pending[task_id].positions
            )
            if lease.get("deadline", 0.0) <= now:
                error = LeaseExpiredError(
                    f"lease expired (worker {lease.get('worker')} stopped "
                    f"heartbeating): {labels}"
                )
            elif (
                policy.timeout_s is not None
                and lease.get("spec_started") is not None
                and now - lease["spec_started"] > policy.timeout_s
            ):
                error = SpecTimeoutError(labels, policy.timeout_s)
            if error is None:
                continue
            holder = pids.get(lease.get("pid"))
            if holder is not None and holder.is_alive():
                # Kill before releasing: a live holder would otherwise
                # resurrect the lease with its next heartbeat.
                try:
                    os.kill(holder.pid, signal.SIGKILL)
                except (OSError, TypeError):  # pragma: no cover - already gone
                    pass
                holder.join(5.0)
            obs.instant(
                "queue.steal", task=task_id, reason=type(error).__name__
            )
            queue.release(task_id)
            yield from self._failed(
                queue, pending, task_id, cold, error, policy, stats, cache_dir
            )

    def _reap_workers(
        self,
        context: Any,
        queue: WorkQueue,
        workers: List[Any],
        plugin_modules: Tuple[str, ...],
        pending: Dict[int, _QueueTask],
        respawn_budget: int,
    ) -> Tuple[List[Any], int]:
        """Replace dead workers; a dead holder's lease is released at once.

        Lease expiry would catch the loss eventually, but a worker whose
        process has exited is *known* dead — waiting out the deadline is
        pure latency.  The requeue itself still flows through the lease
        police pass (the released lease reads as an expired claim there is
        no holder for), keeping one failure path.
        """
        alive = [process for process in workers if process.is_alive()]
        died = len(workers) - len(alive)
        if died:
            dead_pids = {p.pid for p in workers} - {p.pid for p in alive}
            for task_id in list(pending):
                lease = queue.read_lease(task_id)
                if lease is not None and lease.get("pid") in dead_pids:
                    lease["deadline"] = 0.0  # expire immediately
                    queue.renew(task_id, lease)
            if respawn_budget <= 0:
                raise ExecutionFault(
                    "queue workers keep dying; respawn budget exhausted"
                )
            # No readiness semaphore for respawns: nobody waits on it, and
            # the parent would drop (unlink) it before the child unpickles.
            for index in range(died):
                self.respawns += 1
                alive.append(
                    self._spawn(
                        context, queue, len(alive) + index + 1000, plugin_modules, None
                    )
                )
        return alive, died

    def _failed(
        self,
        queue: WorkQueue,
        pending: Dict[int, _QueueTask],
        task_id: int,
        cold: List[ColdEntry],
        error: Exception,
        policy: FailurePolicy,
        stats: Any,
        cache_dir: Optional[str],
    ) -> Iterator[QuarantinedPoint]:
        """One task attempt failed: split, requeue with backoff, or give up."""
        task = pending.pop(task_id)
        queue.release(task_id)
        queue.remove_task(task_id, task.attempt)
        for position in task.positions:
            indices, spec, key = cold[position]
            if task.attempt < policy.max_attempts:
                stats.retries += 1
                delay = policy.backoff_for(task.attempt, key)
                obs.instant(
                    "executor.retry",
                    label=spec.display_label(),
                    attempt=task.attempt,
                    backoff_s=round(delay, 6),
                    error=type(error).__name__,
                )
                not_before = time.time() + delay
                next_id = self._next_task_id
                self._next_task_id += 1
                pending[next_id] = _QueueTask([position], attempt=task.attempt + 1)
                queue.put_task(
                    next_id, task.attempt + 1, [(position, spec)], cache_dir, not_before
                )
            elif policy.on_exhausted == "quarantine":
                obs.instant(
                    "executor.quarantine",
                    label=spec.display_label(),
                    attempts=task.attempt,
                    error=type(error).__name__,
                )
                yield QuarantinedPoint(
                    label=spec.display_label(),
                    key=key,
                    attempts=task.attempt,
                    error=describe_error(error),
                    indices=tuple(indices),
                )
            else:
                raise error
