"""Deterministic fault injection for exercising the executor layer.

Robustness code is only as trustworthy as the faults it has been run
against, and "kill a worker at just the right moment" is not something a
test can do reliably with signals and sleeps.  This module makes faults a
*declarative, deterministic* input instead: a single environment variable
(:data:`ENV_FAULT`, e.g. ``crash:spec=3``) describes which fault fires on
which spec, and a shared state directory (:data:`ENV_FAULT_DIR`) gives every
process in a sweep — driver, pool workers, queue workers, respawned
replacements — one global, crash-safe counter of spec executions, so
"the 3rd spec" means the same thing no matter which process runs it and no
matter how many times workers die and respawn.

The counter is a directory of ``tick-N`` marker files created with
``O_CREAT | O_EXCL``: claiming tick *N* is an atomic filesystem operation,
so exactly one spec execution in the whole process tree observes each tick.
A fault plan fires on a contiguous tick window (``spec`` .. ``spec +
times - 1``); because a retried spec draws a *new* tick, ``times`` bounds
how often the fault fires in total and a respawned worker cannot crash-loop
on the same spec forever — which is exactly the shape retry logic needs:
"fail twice, then succeed".

Fault kinds (:data:`FAULT_KINDS`):

* ``crash`` — the worker process exits immediately (``os._exit``), as if
  the OOM killer got it.  Batch results computed but not yet sent are lost.
* ``hang`` — the spec blocks for ``hang_s`` seconds before running,
  exercising wall-clock timeouts and lease expiry.
* ``error`` — the spec raises :class:`InjectedFaultError`, exercising the
  ordinary task-exception retry path (usable in-process, where a real
  crash would take the driver down).
* ``corrupt`` — the result is computed but its serialized payload is
  garbled in flight, exercising the integrity check on the IPC envelope.
* ``lost-heartbeat`` — the worker silently stops reporting: a pool worker
  computes the result but never sends it; a queue worker stops extending
  its lease.  Exercises timeout kills and lease stealing.

The markers :class:`CorruptResult` and :class:`VanishResult` are how a
worker's task function tells its IPC layer to misbehave on the way out —
the corruption has to happen where the bytes are, not where the fault was
decided.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Optional

#: Environment variable holding the fault plan, e.g. ``crash:spec=3,times=2``.
ENV_FAULT = "REPRO_FAULT"

#: Environment variable naming the shared state directory for the global
#: spec-tick counter.  Without it each process counts privately, which is
#: only deterministic for single-process executors.
ENV_FAULT_DIR = "REPRO_FAULT_DIR"

FAULT_KINDS = ("crash", "hang", "error", "corrupt", "lost-heartbeat")

#: Exit code used by ``crash`` faults — distinctive enough to grep for in a
#: test failure, and outside the range Python itself uses.
CRASH_EXIT_CODE = 86


class InjectedFaultError(RuntimeError):
    """Raised by ``error`` faults: a deterministic, retryable task failure."""


class CorruptResult:
    """Marker: send ``value``'s payload bytes garbled, keeping the original
    digest, so the receiver's integrity check must catch it."""

    def __init__(self, value: Any) -> None:
        self.value = value


class VanishResult:
    """Marker: the result was computed but must never be delivered; the
    worker then blocks for ``hang_s`` (a zombie from the driver's view)."""

    def __init__(self, value: Any, hang_s: float) -> None:
        self.value = value
        self.hang_s = hang_s


@dataclass(frozen=True)
class FaultPlan:
    """One declarative fault: *what* fires, *when*, and *how often*.

    ``spec`` is the 1-based global spec tick the fault first fires on;
    ``times`` widens that to a contiguous window of ticks, which under
    retry semantics reads as "the next ``times`` executions fail".
    """

    kind: str
    spec: int = 1
    times: int = 1
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.spec < 1:
            raise ValueError(f"fault spec tick must be >= 1, got {self.spec}")
        if self.times < 1:
            raise ValueError(f"fault times must be >= 1, got {self.times}")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``kind[:key=value,...]`` — the :data:`ENV_FAULT` format."""
        head, _, rest = text.strip().partition(":")
        plan = cls(kind=head.replace("_", "-"))
        if not rest:
            return plan
        updates: dict = {}
        for part in rest.split(","):
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in ("spec", "times", "hang_s"):
                raise ValueError(
                    f"bad fault option {part!r} in {text!r}; "
                    "expected spec=N, times=N or hang_s=SECONDS"
                )
            updates[key] = float(value) if key == "hang_s" else int(value)
        return replace(plan, **updates)

    def to_env(self) -> str:
        """The inverse of :meth:`parse`, for handing a plan to a subprocess."""
        return f"{self.kind}:spec={self.spec},times={self.times},hang_s={self.hang_s:g}"

    def fires_on(self, tick: int) -> bool:
        return self.spec <= tick < self.spec + self.times


class FaultInjector:
    """Allocates spec ticks and answers "does a fault fire here?".

    With a state directory the tick counter is global across every process
    sharing it (atomic ``O_EXCL`` marker files); without one it is private
    to this instance, which suffices for in-process execution.
    """

    def __init__(self, plan: FaultPlan, state_dir: Optional[str] = None) -> None:
        self.plan = plan
        self.state_dir = Path(state_dir) if state_dir else None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self._local_tick = 0
        self._probe_from = 1

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultInjector"]:
        env = os.environ if environ is None else environ
        text = env.get(ENV_FAULT)
        if not text:
            return None
        return cls(FaultPlan.parse(text), state_dir=env.get(ENV_FAULT_DIR))

    def next_tick(self) -> int:
        """Claim the next global spec tick (1-based), atomically."""
        if self.state_dir is None:
            self._local_tick += 1
            return self._local_tick
        tick = self._probe_from
        while True:
            try:
                fd = os.open(
                    self.state_dir / f"tick-{tick:06d}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                tick += 1
                continue
            os.close(fd)
            # Later probes can start past what this process has seen; other
            # processes may have claimed further ticks, which the loop skips.
            self._probe_from = tick + 1
            return tick

    def fires(self) -> Optional[FaultPlan]:
        """Allocate a tick for one spec execution; the plan if it fires."""
        if self.plan.fires_on(self.next_tick()):
            return self.plan
        return None


def apply_process_fault(plan: FaultPlan) -> None:
    """Apply the process-level fault kinds at a spec boundary.

    ``crash`` never returns; ``hang`` blocks (long enough that a timeout or
    lease deadline must be what ends it); ``error`` raises.  The payload
    kinds (``corrupt`` / ``lost-heartbeat``) are no-ops here — they are
    applied by the IPC layer via the result markers.
    """
    if plan.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif plan.kind == "hang":
        time.sleep(plan.hang_s)
    elif plan.kind == "error":
        raise InjectedFaultError(
            f"injected fault: error on spec tick window {plan.spec}..{plan.spec + plan.times - 1}"
        )


def wrap_result(plan: Optional[FaultPlan], value: Any) -> Any:
    """Wrap a computed task result in the payload-fault marker, if any."""
    if plan is None:
        return value
    if plan.kind == "corrupt":
        return CorruptResult(value)
    if plan.kind == "lost-heartbeat":
        return VanishResult(value, plan.hang_s)
    return value
