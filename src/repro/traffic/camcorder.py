"""The camcorder use-case workload (Fig. 2 of the paper).

The paper evaluates SARA with memory traffic of a next-generation MPSoC
running a camcorder application at 30 fps: the camera sensor writes frames,
the image processor converts them, the video codec encodes them, the rotator
and GPU prepare the preview, the display refreshes the panel, and a set of
system cores (DSP, GPS, WiFi, USB, modem, audio) runs concurrently.  The
original traffic traces are proprietary, so this module provides a synthetic
but structurally faithful equivalent: every DMA is described by a
:class:`DmaSpec` carrying its traffic class (bursty frame-sourced, constant
rate or Poisson), its average demand, its transaction size and its QoS target
type from Table 2.

Rates are stated at ``traffic_scale = 1.0`` and scale linearly; the default
figures sum to roughly 11 GB/s of sustained demand against an LPDDR4-1866
dual-channel device, which produces the same qualitative contention the paper
reports (bursty media cores transiently overwhelming constant-rate and
latency-sensitive cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.memctrl.transaction import QueueClass
from repro.sim.clock import MS

MB = 1_000_000
#: One 30 fps frame period in picoseconds.
FRAME_PERIOD_30FPS_PS = 33 * MS

#: Cores switched off in test case B (Table 1).
CASE_B_INACTIVE_CORES = ("gps", "camera", "rotator", "jpeg")


@dataclass(frozen=True)
class DmaSpec:
    """Declarative description of one DMA's traffic and QoS target."""

    name: str
    core: str
    queue_class: QueueClass
    cluster: str
    is_write: bool
    traffic: str  # registry key, e.g. "frame_burst" | "constant" | "poisson"
    bytes_per_s: float
    transaction_bytes: int
    meter: str  # "frame_progress" | "latency" | "bandwidth" | "occupancy" | "processing_time"
    address_pattern: str = "sequential"  # registry key, e.g. "sequential" | "random" | "strided"
    region_base: int = 0
    region_bytes: int = 64 * 1024 * 1024
    target_bytes_per_s: Optional[float] = None
    latency_limit_ns: Optional[float] = None
    window_ps: Optional[int] = None
    max_outstanding: int = 8
    start_offset_ps: int = 0
    stride_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        # ``traffic`` and ``address_pattern`` are registry keys (see
        # repro.scenario.registry); they are resolved — and unknown names
        # rejected with the list of registered kinds — when the system is
        # built, so that plugin-registered models work here too.
        if not self.traffic:
            raise ValueError("traffic class must be a non-empty registry key")
        if not self.address_pattern:
            raise ValueError("address pattern must be a non-empty registry key")
        if self.stride_bytes is not None and self.stride_bytes <= 0:
            raise ValueError("stride_bytes must be positive when set")
        if self.meter not in {
            "frame_progress",
            "latency",
            "bandwidth",
            "occupancy",
            "processing_time",
        }:
            raise ValueError(f"unknown meter type '{self.meter}'")
        if self.bytes_per_s <= 0:
            raise ValueError("bytes_per_s must be positive")
        if self.transaction_bytes <= 0:
            raise ValueError("transaction_bytes must be positive")
        if self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")

    @property
    def effective_target_bytes_per_s(self) -> float:
        """The bandwidth/progress target (defaults to the offered rate)."""
        return self.target_bytes_per_s or self.bytes_per_s

    def scaled(self, factor: float) -> "DmaSpec":
        """Return a copy with demand and targets scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        target = self.target_bytes_per_s
        return replace(
            self,
            bytes_per_s=self.bytes_per_s * factor,
            target_bytes_per_s=target * factor if target is not None else None,
        )


@dataclass(frozen=True)
class CamcorderWorkload:
    """A fully resolved workload: frame period plus every active DMA."""

    case: str
    frame_period_ps: int
    traffic_scale: float
    dmas: Tuple[DmaSpec, ...] = field(default_factory=tuple)

    def cores(self) -> List[str]:
        """Active core names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for spec in self.dmas:
            seen.setdefault(spec.core, None)
        return list(seen)

    def specs_for_core(self, core: str) -> List[DmaSpec]:
        return [spec for spec in self.dmas if spec.core == core]

    def total_demand_bytes_per_s(self) -> float:
        return sum(spec.bytes_per_s for spec in self.dmas)

    def meter_type_of(self, core: str) -> str:
        specs = self.specs_for_core(core)
        if not specs:
            raise KeyError(f"core '{core}' is not part of this workload")
        return specs[0].meter


def _base_specs(frame_period_ps: int) -> List[DmaSpec]:
    """The full (case A) camcorder DMA list at traffic_scale = 1.0."""
    gps_window_ps = 10 * MS
    modem_window_ps = 5 * MS
    return [
        # -------------------------- media cluster -------------------------- #
        DmaSpec(
            name="camera.write", core="camera", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=True, traffic="constant",
            bytes_per_s=800 * MB, transaction_bytes=2048, meter="occupancy",
        ),
        DmaSpec(
            name="image_processor.read", core="image_processor",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=False,
            traffic="frame_burst", bytes_per_s=1100 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="image_processor.write0", core="image_processor",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=True,
            traffic="frame_burst", bytes_per_s=800 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="image_processor.write1", core="image_processor",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=True,
            traffic="frame_burst", bytes_per_s=800 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="video_codec.read0", core="video_codec",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=False,
            traffic="frame_burst", bytes_per_s=950 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="video_codec.read1", core="video_codec",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=False,
            traffic="frame_burst", bytes_per_s=950 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="video_codec.write", core="video_codec",
            queue_class=QueueClass.MEDIA, cluster="media", is_write=True,
            traffic="frame_burst", bytes_per_s=1200 * MB, transaction_bytes=2048,
            meter="frame_progress",
        ),
        DmaSpec(
            name="rotator.read", core="rotator", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=False, traffic="frame_burst",
            bytes_per_s=89 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="rotator.write", core="rotator", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=True, traffic="frame_burst",
            bytes_per_s=89 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="jpeg.read", core="jpeg", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=False, traffic="frame_burst",
            bytes_per_s=120 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="jpeg.write", core="jpeg", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=True, traffic="frame_burst",
            bytes_per_s=40 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="display.read", core="display", queue_class=QueueClass.MEDIA,
            cluster="media", is_write=False, traffic="constant",
            bytes_per_s=2400 * MB, transaction_bytes=2048, meter="occupancy",
        ),
        # ------------------------- compute cluster ------------------------- #
        DmaSpec(
            name="gpu.read0", core="gpu", queue_class=QueueClass.GPU,
            cluster="compute", is_write=False, traffic="frame_burst",
            bytes_per_s=1100 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="gpu.read1", core="gpu", queue_class=QueueClass.GPU,
            cluster="compute", is_write=False, traffic="frame_burst",
            bytes_per_s=1100 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="gpu.write", core="gpu", queue_class=QueueClass.GPU,
            cluster="compute", is_write=True, traffic="frame_burst",
            bytes_per_s=1000 * MB, transaction_bytes=2048, meter="frame_progress",
        ),
        DmaSpec(
            name="dsp.read", core="dsp", queue_class=QueueClass.DSP,
            cluster="compute", is_write=False, traffic="poisson",
            bytes_per_s=80 * MB, transaction_bytes=256, meter="latency",
            latency_limit_ns=1500.0, max_outstanding=4,
        ),
        DmaSpec(
            name="dsp.write", core="dsp", queue_class=QueueClass.DSP,
            cluster="compute", is_write=True, traffic="poisson",
            bytes_per_s=40 * MB, transaction_bytes=256, meter="latency",
            latency_limit_ns=1500.0, max_outstanding=4,
        ),
        DmaSpec(
            name="cpu.read", core="cpu", queue_class=QueueClass.CPU,
            cluster="compute", is_write=False, traffic="poisson",
            bytes_per_s=1200 * MB, transaction_bytes=2048, meter="bandwidth",
            target_bytes_per_s=600 * MB, address_pattern="random",
        ),
        DmaSpec(
            name="cpu.write", core="cpu", queue_class=QueueClass.CPU,
            cluster="compute", is_write=True, traffic="poisson",
            bytes_per_s=600 * MB, transaction_bytes=2048, meter="bandwidth",
            target_bytes_per_s=300 * MB, address_pattern="random",
        ),
        # -------------------------- system cluster ------------------------- #
        DmaSpec(
            name="gps.read", core="gps", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=False, traffic="frame_burst",
            bytes_per_s=25 * MB, transaction_bytes=512, meter="processing_time",
            window_ps=gps_window_ps,
        ),
        DmaSpec(
            name="modem.write", core="modem", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=True, traffic="frame_burst",
            bytes_per_s=200 * MB, transaction_bytes=2048, meter="processing_time",
            window_ps=modem_window_ps,
        ),
        DmaSpec(
            name="wifi.write", core="wifi", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=True, traffic="constant",
            bytes_per_s=200 * MB, transaction_bytes=2048, meter="bandwidth",
        ),
        DmaSpec(
            name="usb.read", core="usb", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=False, traffic="constant",
            bytes_per_s=800 * MB, transaction_bytes=2048, meter="bandwidth",
        ),
        DmaSpec(
            name="audio.read", core="audio", queue_class=QueueClass.SYSTEM,
            cluster="system", is_write=False, traffic="poisson",
            bytes_per_s=4 * MB, transaction_bytes=256, meter="latency",
            latency_limit_ns=10_000.0, max_outstanding=2,
        ),
    ]


def camcorder_workload(
    case: str = "A",
    traffic_scale: float = 1.0,
    frame_period_ps: int = FRAME_PERIOD_30FPS_PS,
) -> CamcorderWorkload:
    """Build the camcorder workload for test case A or B.

    Case A activates every core; case B switches off the GPS, camera, rotator
    and JPEG cores, matching Table 1.  ``traffic_scale`` scales every DMA's
    demand (and bandwidth targets) linearly, which is the knob experiments use
    to trade fidelity against runtime.
    """
    case = case.upper()
    if case not in {"A", "B"}:
        raise ValueError(f"unknown test case '{case}' (expected 'A' or 'B')")
    if traffic_scale <= 0:
        raise ValueError("traffic_scale must be positive")
    if frame_period_ps <= 0:
        raise ValueError("frame_period_ps must be positive")

    specs = _base_specs(frame_period_ps)
    if case == "B":
        specs = [spec for spec in specs if spec.core not in CASE_B_INACTIVE_CORES]
    # Give every DMA its own disjoint address region so that cores interfere
    # only through shared bandwidth, not through shared rows.
    region = 64 * 1024 * 1024
    placed = []
    for index, spec in enumerate(specs):
        placed.append(
            replace(
                spec.scaled(traffic_scale),
                region_base=index * region,
                region_bytes=region,
            )
        )
    return CamcorderWorkload(
        case=case,
        frame_period_ps=frame_period_ps,
        traffic_scale=traffic_scale,
        dmas=tuple(placed),
    )
