"""Constant-rate traffic (camera sensor writes, display panel refills, WiFi/USB)."""

from __future__ import annotations

from repro.traffic.generator import TrafficGenerator


class ConstantRateGenerator(TrafficGenerator):
    """Releases a fixed-size chunk at a fixed interval.

    The chunk interval is derived from the requested byte rate, which models
    cores whose data production or consumption is paced by external hardware
    (an image sensor, an LCD panel, a radio) rather than by frame boundaries.
    """

    def __init__(self, bytes_per_s: float, chunk_bytes: int, start_offset_ps: int = 0) -> None:
        super().__init__()
        if bytes_per_s <= 0:
            raise ValueError("bytes_per_s must be positive")
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if start_offset_ps < 0:
            raise ValueError("start_offset_ps must be non-negative")
        self.bytes_per_s = bytes_per_s
        self.chunk_bytes = chunk_bytes
        self.start_offset_ps = start_offset_ps
        self.interval_ps = max(1, round(chunk_bytes / bytes_per_s * 1e12))

    def average_bytes_per_s(self) -> float:
        return self.bytes_per_s

    def _schedule_first(self) -> None:
        # Generator ticks are fire-and-forget; schedule_call skips the Event
        # handle allocation on what is one event per released chunk.
        self.engine.schedule_call(
            self.engine.now_ps + self.start_offset_ps, self._on_tick
        )

    def _on_tick(self) -> None:
        self._release(self.chunk_bytes)
        next_tick_ps = self.engine.now_ps + self.interval_ps
        if self._within_horizon(next_tick_ps):
            self.engine.schedule_call(next_tick_ps, self._on_tick)
