"""Synthetic memory-traffic generation.

The paper drives its evaluation with memory traffic of a next-generation
MPSoC running the camcorder use case of Fig. 2.  Those traces are
proprietary, so this package provides the closest synthetic equivalent:
per-DMA traffic generators for the three traffic classes the paper describes
(bursty frame-sourced traffic, constant sensor/panel rates and random
latency-sensitive requests) plus the camcorder workload specification that
assigns rates, transaction sizes and QoS targets to every core of Table 2.
"""

from repro.traffic.addresses import (
    AddressStream,
    RandomAddressStream,
    SequentialAddressStream,
    StridedAddressStream,
)
from repro.traffic.bursty import FrameBurstGenerator
from repro.traffic.camcorder import CamcorderWorkload, DmaSpec, camcorder_workload
from repro.traffic.constant import ConstantRateGenerator
from repro.traffic.generator import TrafficGenerator
from repro.traffic.poisson import PoissonGenerator

__all__ = [
    "AddressStream",
    "CamcorderWorkload",
    "ConstantRateGenerator",
    "DmaSpec",
    "FrameBurstGenerator",
    "PoissonGenerator",
    "RandomAddressStream",
    "SequentialAddressStream",
    "StridedAddressStream",
    "TrafficGenerator",
    "camcorder_workload",
]
