"""Traffic-generator interface.

A generator models *demand*: it releases work (bytes that must be moved
to/from DRAM) over simulated time by invoking a sink callback.  The DMA that
owns the generator turns released bytes into individual memory transactions,
subject to its transaction size and outstanding-request window.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.sim.engine import Engine

ReleaseSink = Callable[[int], None]


class TrafficGenerator(abc.ABC):
    """Base class for demand generators."""

    def __init__(self) -> None:
        self._engine: Optional[Engine] = None
        self._sink: Optional[ReleaseSink] = None
        self._stop_ps: Optional[int] = None
        self.released_bytes = 0

    def start(self, engine: Engine, sink: ReleaseSink, stop_ps: Optional[int] = None) -> None:
        """Begin releasing work into ``sink`` until ``stop_ps`` (or forever)."""
        if self._engine is not None:
            raise RuntimeError("generator already started")
        self._engine = engine
        self._sink = sink
        self._stop_ps = stop_ps
        self._schedule_first()

    @property
    def engine(self) -> Engine:
        if self._engine is None:
            raise RuntimeError("generator not started")
        return self._engine

    def _within_horizon(self, time_ps: int) -> bool:
        return self._stop_ps is None or time_ps <= self._stop_ps

    def _release(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            return
        self.released_bytes += size_bytes
        if self._sink is not None:
            self._sink(size_bytes)

    @abc.abstractmethod
    def _schedule_first(self) -> None:
        """Schedule the generator's first release event."""

    @abc.abstractmethod
    def average_bytes_per_s(self) -> float:
        """Long-run average demand, used to derive default QoS targets."""
