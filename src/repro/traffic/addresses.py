"""Address streams assigning DRAM addresses to generated transactions.

Media DMAs walk their shared buffers sequentially (which is what makes
row-buffer-hit optimisation worthwhile), while CPU-like agents touch memory
much more randomly.  Each stream stays inside its own address region so that
different cores use disjoint buffers, as in the camcorder dataflow of Fig. 2.
"""

from __future__ import annotations

import abc

import numpy as np


class AddressStream(abc.ABC):
    """Produces the address of each successive transaction of a DMA."""

    @abc.abstractmethod
    def next_address(self, size_bytes: int) -> int:
        """Return the base address for the next transaction of this size."""


class SequentialAddressStream(AddressStream):
    """Walks an address region sequentially, wrapping at the region end."""

    def __init__(self, base: int, region_bytes: int) -> None:
        if base < 0:
            raise ValueError("base address must be non-negative")
        if region_bytes <= 0:
            raise ValueError("region size must be positive")
        self.base = base
        self.region_bytes = region_bytes
        self._offset = 0

    def next_address(self, size_bytes: int) -> int:
        if size_bytes <= 0:
            raise ValueError("transaction size must be positive")
        address = self.base + self._offset
        self._offset += size_bytes
        if self._offset >= self.region_bytes:
            self._offset = 0
        return address


class StridedAddressStream(AddressStream):
    """Walks a region with a fixed stride (e.g. a rotator reading columns)."""

    def __init__(self, base: int, region_bytes: int, stride_bytes: int) -> None:
        if stride_bytes <= 0:
            raise ValueError("stride must be positive")
        if region_bytes <= 0:
            raise ValueError("region size must be positive")
        self.base = base
        self.region_bytes = region_bytes
        self.stride_bytes = stride_bytes
        self._offset = 0

    def next_address(self, size_bytes: int) -> int:
        if size_bytes <= 0:
            raise ValueError("transaction size must be positive")
        address = self.base + self._offset
        self._offset = (self._offset + self.stride_bytes) % self.region_bytes
        return address


class RandomAddressStream(AddressStream):
    """Uniformly random aligned addresses within a region (CPU-like traffic)."""

    def __init__(
        self,
        rng: np.random.Generator,
        base: int,
        region_bytes: int,
        align_bytes: int = 64,
    ) -> None:
        if region_bytes <= 0:
            raise ValueError("region size must be positive")
        if align_bytes <= 0:
            raise ValueError("alignment must be positive")
        self.rng = rng
        self.base = base
        self.region_bytes = region_bytes
        self.align_bytes = align_bytes

    def next_address(self, size_bytes: int) -> int:
        if size_bytes <= 0:
            raise ValueError("transaction size must be positive")
        slots = max(1, self.region_bytes // self.align_bytes)
        slot = int(self.rng.integers(0, slots))
        return self.base + slot * self.align_bytes
