"""Random request traffic (DSP, audio, CPU) with exponential inter-arrival times."""

from __future__ import annotations

import numpy as np

from repro.traffic.generator import TrafficGenerator


class PoissonGenerator(TrafficGenerator):
    """Releases fixed-size chunks with exponentially distributed gaps.

    Latency-sensitive agents such as the DSP issue relatively small, loosely
    correlated requests; a Poisson arrival process is the standard stand-in
    when real traces are unavailable.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        bytes_per_s: float,
        chunk_bytes: int,
        start_offset_ps: int = 0,
    ) -> None:
        super().__init__()
        if bytes_per_s <= 0:
            raise ValueError("bytes_per_s must be positive")
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if start_offset_ps < 0:
            raise ValueError("start_offset_ps must be non-negative")
        self.rng = rng
        self.bytes_per_s = bytes_per_s
        self.chunk_bytes = chunk_bytes
        self.start_offset_ps = start_offset_ps
        self.mean_interval_ps = max(1.0, chunk_bytes / bytes_per_s * 1e12)

    def average_bytes_per_s(self) -> float:
        return self.bytes_per_s

    def _next_gap_ps(self) -> int:
        return max(1, int(self.rng.exponential(self.mean_interval_ps)))

    def _schedule_first(self) -> None:
        # Fire-and-forget ticks: no Event handle needed (see ConstantRate).
        self.engine.schedule_call(
            self.engine.now_ps + self.start_offset_ps + self._next_gap_ps(),
            self._on_arrival,
        )

    def _on_arrival(self) -> None:
        self._release(self.chunk_bytes)
        next_arrival_ps = self.engine.now_ps + self._next_gap_ps()
        if self._within_horizon(next_arrival_ps):
            self.engine.schedule_call(next_arrival_ps, self._on_arrival)
