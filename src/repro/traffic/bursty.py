"""Bursty frame-sourced traffic (video codec, rotator, image processor, GPU).

The paper notes that these cores "have all the frame data available at the
beginning of a frame period and thus create bursty traffic": the generator
therefore releases the whole frame's worth of bytes at each frame boundary
and the DMA drains the backlog as fast as its outstanding window and the
memory system allow.
"""

from __future__ import annotations

from repro.traffic.generator import TrafficGenerator


class FrameBurstGenerator(TrafficGenerator):
    """Releases ``bytes_per_frame`` at the start of every frame period."""

    def __init__(
        self,
        bytes_per_frame: int,
        frame_period_ps: int,
        start_offset_ps: int = 0,
    ) -> None:
        super().__init__()
        if bytes_per_frame <= 0:
            raise ValueError("bytes_per_frame must be positive")
        if frame_period_ps <= 0:
            raise ValueError("frame_period_ps must be positive")
        if start_offset_ps < 0:
            raise ValueError("start_offset_ps must be non-negative")
        self.bytes_per_frame = bytes_per_frame
        self.frame_period_ps = frame_period_ps
        self.start_offset_ps = start_offset_ps

    def average_bytes_per_s(self) -> float:
        return self.bytes_per_frame / (self.frame_period_ps / 1e12)

    def _schedule_first(self) -> None:
        # Fire-and-forget ticks: no Event handle needed (see ConstantRate).
        self.engine.schedule_call(
            self.engine.now_ps + self.start_offset_ps, self._on_frame_start
        )

    def _on_frame_start(self) -> None:
        self._release(self.bytes_per_frame)
        next_frame_ps = self.engine.now_ps + self.frame_period_ps
        if self._within_horizon(next_frame_ps):
            self.engine.schedule_call(next_frame_ps, self._on_frame_start)
