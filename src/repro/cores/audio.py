"""The audio subsystem: a latency core (Table 2).

Audio traffic is tiny but any sustained latency excursion produces audible
glitches, so the meter is an average-latency meter with a generous limit.
"""

from __future__ import annotations

from repro.cores.base import Core


class AudioCore(Core):
    """Audio DMA moving sample buffers with a latency bound."""

    performance_type = "latency"
