"""The cellular modem: a processing-time core (Table 2).

Baseband subframes arrive on a fixed radio schedule and must be moved through
DRAM before the next subframe; the meter is the same processing-window
construction as the GPS but with a shorter deadline and higher rate.
"""

from __future__ import annotations

from repro.cores.base import Core


class ModemCore(Core):
    """Cellular modem with per-subframe processing deadlines."""

    performance_type = "processing time"
