"""The image processor (ISP): a frame-rate core (Table 2).

The ISP reads raw camera frames and writes processed video and preview
buffers.  Its traffic is bursty (a whole frame becomes available at once) and
its health is frame progress.  Fig. 7 studies this core's priority-level
distribution as DRAM frequency is lowered.
"""

from __future__ import annotations

from repro.cores.base import Core


class ImageProcessorCore(Core):
    """Image signal processor converting camera frames for encode and preview."""

    performance_type = "frame rate"
