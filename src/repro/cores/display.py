"""The display controller: a buffer-occupancy core (Table 2).

The LCD panel drains the read buffer at a constant pixel rate while the
display DMA refills it from DRAM.  Health follows Eqn. 3: the refill rate
must not fall below the panel's read rate, otherwise the buffer drains and
the panel underruns — the dramatic failure (NPI 0.13) of Fig. 5(a).
"""

from __future__ import annotations

from repro.cores.base import Core


class DisplayCore(Core):
    """Display controller refilling the panel's read buffer at a constant rate."""

    performance_type = "buffer occupancy"
