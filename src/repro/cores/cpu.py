"""The CPU cluster: best-effort application traffic.

The CPU is not listed in Table 2 (its QoS is best-effort), but Table 1 gives
it a dedicated memory-controller transaction queue, and its random cache-miss
traffic is part of the background load every policy must absorb.
"""

from __future__ import annotations

from repro.cores.base import Core


class CpuCore(Core):
    """General-purpose CPU cluster issuing random cache-line-sized requests."""

    performance_type = "bandwidth"
