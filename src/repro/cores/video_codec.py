"""The video codec: a frame-rate core (Table 2).

The encoder reads the current frame and its reference frames and writes the
reconstructed frame plus the bitstream; it is the heaviest bursty consumer of
DRAM bandwidth in the camcorder use case.
"""

from __future__ import annotations

from repro.cores.base import Core


class VideoCodecCore(Core):
    """Hardware video encoder/decoder with bursty frame-sourced traffic."""

    performance_type = "frame rate"
