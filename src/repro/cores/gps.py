"""The GPS baseband: a processing-time core (Table 2).

Positioning correlators deliver a batch of samples every processing window;
the batch must be moved to/from DRAM before the window closes.  Under FCFS
the GPS is the first core to fail in Fig. 5(a) because its small transactions
queue behind the bandwidth-hungry system cores sharing its interconnect.
"""

from __future__ import annotations

from repro.cores.base import Core


class GpsCore(Core):
    """GPS baseband processor with periodic processing deadlines."""

    performance_type = "processing time"
