"""The WiFi MAC: a bandwidth core (Table 2).

The radio sustains a fixed throughput; its NPI is simply achieved bandwidth
over target bandwidth.
"""

from __future__ import annotations

from repro.cores.base import Core


class WifiCore(Core):
    """WiFi MAC/baseband streaming packet buffers to DRAM."""

    performance_type = "bandwidth"
