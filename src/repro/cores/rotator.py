"""The frame rotator: a frame-rate core (Table 2).

The rotator reads and writes 1080p YUV420 preview images at 30 fps, which the
paper quotes as 89 MB/s per DMA (178 MB/s total) — the one workload figure
given explicitly in the evaluation section, kept verbatim in the synthetic
camcorder workload.
"""

from __future__ import annotations

from repro.cores.base import Core


class RotatorCore(Core):
    """Frame rotator preparing the preview orientation."""

    performance_type = "frame rate"
