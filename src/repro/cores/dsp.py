"""The DSP: a latency-bound core (Table 2).

The DSP demands that the *average* memory latency of its transactions stays
below a fixed limit (Eqn. 1): NPI = latency limit / average latency.  It is
the paper's canonical example of a core that baseline policies starve because
its bandwidth footprint is tiny but its latency requirement is strict.
"""

from __future__ import annotations

from repro.cores.base import Core


class DspCore(Core):
    """Digital signal processor issuing small, latency-critical requests."""

    performance_type = "latency"
