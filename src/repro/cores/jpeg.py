"""The JPEG encoder: a frame-rate core (Table 2).

The JPEG block encodes snapshot stills captured while the video records; its
traffic is bursty and sporadic compared to the continuously running encoder.
"""

from __future__ import annotations

from repro.cores.base import Core


class JpegCore(Core):
    """JPEG still-image encoder for camcorder snapshots."""

    performance_type = "frame rate"
