"""Heterogeneous cores of the simulated MPSoC.

One module per core of Table 2 (plus the CPU).  Every core class carries a
``performance_type`` attribute mirroring the table's "type of target
performance" column; the per-core traffic parameters live in the camcorder
workload specification (:mod:`repro.traffic.camcorder`), and the system
builder (:mod:`repro.system.builder`) combines the two.
"""

from typing import Dict, Type

from repro.cores.audio import AudioCore
from repro.cores.base import Core, Dma
from repro.cores.camera import CameraCore
from repro.cores.cpu import CpuCore
from repro.cores.display import DisplayCore
from repro.cores.dsp import DspCore
from repro.cores.gps import GpsCore
from repro.cores.gpu import GpuCore
from repro.cores.image_processor import ImageProcessorCore
from repro.cores.jpeg import JpegCore
from repro.cores.modem import ModemCore
from repro.cores.rotator import RotatorCore
from repro.cores.usb import UsbCore
from repro.cores.video_codec import VideoCodecCore
from repro.cores.wifi import WifiCore
from repro.memctrl.transaction import QueueClass

#: Registry mapping workload core names to core classes.
CORE_CLASSES: Dict[str, Type[Core]] = {
    "audio": AudioCore,
    "camera": CameraCore,
    "cpu": CpuCore,
    "display": DisplayCore,
    "dsp": DspCore,
    "gps": GpsCore,
    "gpu": GpuCore,
    "image_processor": ImageProcessorCore,
    "jpeg": JpegCore,
    "modem": ModemCore,
    "rotator": RotatorCore,
    "usb": UsbCore,
    "video_codec": VideoCodecCore,
    "wifi": WifiCore,
}


def create_core(name: str, cluster: str, queue_class: QueueClass) -> Core:
    """Instantiate the right core class for a workload core name.

    Unknown names fall back to the generic :class:`Core`, which lets users add
    their own cores to a workload without touching this registry (see the
    ``custom_core.py`` example).
    """
    core_cls = CORE_CLASSES.get(name, Core)
    return core_cls(name=name, cluster=cluster, queue_class=queue_class)


__all__ = [
    "AudioCore",
    "CORE_CLASSES",
    "CameraCore",
    "Core",
    "CpuCore",
    "DisplayCore",
    "Dma",
    "DspCore",
    "GpsCore",
    "GpuCore",
    "ImageProcessorCore",
    "JpegCore",
    "ModemCore",
    "RotatorCore",
    "UsbCore",
    "VideoCodecCore",
    "WifiCore",
    "create_core",
]
