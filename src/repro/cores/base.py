"""Core and DMA base classes.

A *core* is one heterogeneous agent of the MPSoC (GPU, display, DSP, ...); it
owns one or more *DMAs*, each of which turns a traffic generator's released
work into memory transactions, carries its own performance meter, and attaches
the priority supplied by its SARA adapter to every transaction it issues.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.npi import PerformanceMeter
from repro.memctrl.transaction import BatchTransaction, QueueClass, Transaction
from repro.sim.engine import Engine
from repro.traffic.addresses import AddressStream
from repro.traffic.generator import TrafficGenerator

InjectFn = Callable[[str, Transaction], None]
PriorityProvider = Callable[[], int]


class Dma:
    """A direct-memory-access engine issuing transactions for its core."""

    def __init__(
        self,
        name: str,
        core: str,
        queue_class: QueueClass,
        is_write: bool,
        transaction_bytes: int,
        generator: TrafficGenerator,
        addresses: AddressStream,
        meter: PerformanceMeter,
        max_outstanding: int = 8,
    ) -> None:
        if transaction_bytes <= 0:
            raise ValueError("transaction_bytes must be positive")
        if max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        self.name = name
        self.core = core
        self.queue_class = queue_class
        self.is_write = is_write
        self.transaction_bytes = transaction_bytes
        self.generator = generator
        self.addresses = addresses
        self.meter = meter
        self.max_outstanding = max_outstanding

        self._engine: Optional[Engine] = None
        self._inject: Optional[InjectFn] = None
        self._priority_provider: PriorityProvider = lambda: 0
        self._backlog_bytes = 0
        self._outstanding = 0

        self.issued_transactions = 0
        self.completed_transactions = 0
        self.issued_bytes = 0
        self.completed_bytes = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def connect(self, engine: Engine, inject: InjectFn) -> None:
        """Connect the DMA to the simulation engine and the NoC injection point."""
        self._engine = engine
        self._inject = inject

    def set_priority_provider(self, provider: PriorityProvider) -> None:
        """Install the SARA adapter's priority source (defaults to priority 0)."""
        self._priority_provider = provider

    def start(self, stop_ps: Optional[int] = None) -> None:
        """Start the DMA's traffic generator."""
        if self._engine is None or self._inject is None:
            raise RuntimeError(f"DMA '{self.name}' must be connected before starting")
        self.generator.start(self._engine, self._on_release, stop_ps)

    # ------------------------------------------------------------------ #
    # Traffic flow
    # ------------------------------------------------------------------ #
    @property
    def backlog_bytes(self) -> int:
        """Released work not yet turned into transactions."""
        return self._backlog_bytes

    @property
    def outstanding(self) -> int:
        """Transactions in flight (injected but not completed)."""
        return self._outstanding

    def _on_release(self, size_bytes: int) -> None:
        self._backlog_bytes += size_bytes
        self._try_issue()

    def _realtime_behind(self, now_ps: int) -> bool:
        # raw_npi, not npi: clamping to [NPI_FLOOR, NPI_CAP] cannot change
        # which side of 1.0 the value falls on, so the decision is identical
        # and the clamp call is saved on every issue attempt.
        return self.meter.is_frame_based and self.meter.raw_npi(now_ps) < 1.0

    def _try_issue(self) -> None:
        engine = self._engine
        inject = self._inject
        if engine is None or inject is None:
            return
        while (
            self._backlog_bytes >= self.transaction_bytes
            and self._outstanding < self.max_outstanding
        ):
            now = engine.now_ps
            transaction = Transaction(
                source=self.core,
                dma=self.name,
                queue_class=self.queue_class,
                address=self.addresses.next_address(self.transaction_bytes),
                size_bytes=self.transaction_bytes,
                is_write=self.is_write,
                priority=self._priority_provider(),
                realtime_behind=self._realtime_behind(now),
                created_ps=now,
            )
            self._backlog_bytes -= self.transaction_bytes
            self._outstanding += 1
            self.issued_transactions += 1
            self.issued_bytes += self.transaction_bytes
            inject(self.core, transaction)

    def on_complete(self, transaction: Transaction) -> None:
        """Completion callback registered with the memory controller."""
        if self._engine is None:
            raise RuntimeError(f"DMA '{self.name}' received a completion before connect()")
        self._outstanding = max(0, self._outstanding - 1)
        self.completed_transactions += 1
        self.completed_bytes += transaction.size_bytes
        latency = transaction.latency_ps if transaction.latency_ps is not None else 0
        self.meter.record_completion(
            transaction.size_bytes, latency, self._engine.now_ps
        )
        self._try_issue()


class BatchedDma(Dma):
    """The batched kernel's DMA: slotted transactions, hoisted issue loop.

    Issues :class:`~repro.memctrl.transaction.BatchTransaction` objects and
    hoists the per-iteration lookups of the scalar loop out of it.  Both
    hoists are exact: nothing inside the loop can change the values —

    * the priority provider is a pure read of the SARA adapter's current
      priority, which only changes in the framework's sampling tick (a
      separate engine event);
    * the realtime-behind flag reads the DMA's own meter at a fixed ``now``.
      The meter's lazy window maintenance mutates internal state, but it is
      idempotent at a given timestamp, so calling it once up front leaves the
      meter exactly as the scalar kernel's call-per-iteration would;
    * injection is fire-and-forget into the NoC — a completion (the only
      thing that changes ``_outstanding`` or the backlog) can only arrive via
      a later engine event, never synchronously from ``inject``.
    """

    def _try_issue(self) -> None:
        engine = self._engine
        inject = self._inject
        if engine is None or inject is None:
            return
        backlog = self._backlog_bytes
        size = self.transaction_bytes
        outstanding = self._outstanding
        if backlog < size or outstanding >= self.max_outstanding:
            return
        now = engine._now_ps
        priority = self._priority_provider()
        behind = self._realtime_behind(now)
        core = self.core
        name = self.name
        queue_class = self.queue_class
        is_write = self.is_write
        next_address = self.addresses.next_address
        max_outstanding = self.max_outstanding
        issued = 0
        while backlog >= size and outstanding < max_outstanding:
            transaction = BatchTransaction(
                core,
                name,
                queue_class,
                next_address(size),
                size,
                is_write,
                priority,
                behind,
                now,
            )
            backlog -= size
            self._backlog_bytes = backlog
            outstanding += 1
            self._outstanding = outstanding
            issued += 1
            inject(core, transaction)
        self.issued_transactions += issued
        self.issued_bytes += issued * size

    def on_complete(self, transaction: Transaction) -> None:
        """Completion callback, with the scalar path's checks flattened.

        BatchTransaction stamps ``completed_ps`` before this runs (the
        controller's completion handler), and completions only arrive through
        the controller, so the latency property's None-guard is dead here.
        """
        self._outstanding = max(0, self._outstanding - 1)
        self.completed_transactions += 1
        size = transaction.size_bytes
        self.completed_bytes += size
        self.meter.record_completion(
            size, transaction.completed_ps - transaction.created_ps, self._engine._now_ps
        )
        self._try_issue()


class Core:
    """A heterogeneous core: a named collection of DMAs with one QoS notion."""

    #: Table-2 style description of the core's target-performance type.
    performance_type = "generic"

    def __init__(self, name: str, cluster: str, queue_class: QueueClass) -> None:
        self.name = name
        self.cluster = cluster
        self.queue_class = queue_class
        self.dmas: List[Dma] = []

    def add_dma(self, dma: Dma) -> None:
        if dma.core != self.name:
            raise ValueError(
                f"DMA '{dma.name}' belongs to core '{dma.core}', not '{self.name}'"
            )
        self.dmas.append(dma)

    def npi(self, now_ps: int) -> float:
        """The core's intrinsic health: the worst NPI across its DMAs."""
        if not self.dmas:
            raise RuntimeError(f"core '{self.name}' has no DMAs")
        return min(dma.meter.npi(now_ps) for dma in self.dmas)

    def total_completed_bytes(self) -> int:
        return sum(dma.completed_bytes for dma in self.dmas)

    def total_issued_bytes(self) -> int:
        return sum(dma.issued_bytes for dma in self.dmas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, cluster={self.cluster!r}, "
            f"dmas={len(self.dmas)})"
        )
