"""The USB host controller: a bandwidth core (Table 2).

USB mass-storage offload of the recorded video is a steady, fairly heavy
bandwidth consumer on the system interconnect; under FCFS it is one of the
cores that crowd out the GPS.
"""

from __future__ import annotations

from repro.cores.base import Core


class UsbCore(Core):
    """USB host controller streaming recorded data to external storage."""

    performance_type = "bandwidth"
