"""The camera front-end: a buffer-occupancy core (Table 2).

The image sensor fills the camera write buffer at a constant rate; the camera
DMA must drain it to DRAM at least as fast or frames are dropped.  The meter
is the write-side mirror of the display's occupancy meter.
"""

from __future__ import annotations

from repro.cores.base import Core


class CameraCore(Core):
    """Camera sensor interface writing frames to DRAM at a constant rate."""

    performance_type = "buffer occupancy"
