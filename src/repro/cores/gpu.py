"""The GPU: a frame-rate core (Table 2).

The GPU renders the user interface and preview composition.  Its health is
the frame progress of Eqn. 2: the fraction of the current frame's data moved
compared against a reference that grows linearly over the frame period.
"""

from __future__ import annotations

from repro.cores.base import Core


class GpuCore(Core):
    """Graphics processor with bursty, frame-sourced traffic."""

    performance_type = "frame rate"
