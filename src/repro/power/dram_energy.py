"""DRAM energy estimation from a :class:`~repro.dram.device.DramDevice`'s counters.

The device records row-buffer outcomes (hit / miss / closed), bytes read and
written, and per-channel bus busy time.  From those counters this module
computes an event-energy breakdown:

* every non-hit access pays one activation + precharge pair,
* every byte pays core read/write energy plus I/O energy,
* every rank pays background (standby) power, split between the time its
  channel's bus was busy and the time it was idle,
* every rank pays average refresh power for the whole duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.device import DramDevice
from repro.power.params import MW, NJ, PJ, PS, DramPowerParams


@dataclass(frozen=True)
class DramEnergyBreakdown:
    """Energy consumed by the DRAM device over one run, in joules."""

    activation_j: float
    read_j: float
    write_j: float
    io_j: float
    background_j: float
    refresh_j: float
    elapsed_s: float

    @property
    def dynamic_j(self) -> float:
        """Energy that scales with the amount of traffic served."""
        return self.activation_j + self.read_j + self.write_j + self.io_j

    @property
    def static_j(self) -> float:
        """Energy that accrues with time regardless of traffic."""
        return self.background_j + self.refresh_j

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.static_j

    @property
    def average_power_w(self) -> float:
        """Average power over the run."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_j / self.elapsed_s

    def energy_per_byte_pj(self, total_bytes: int) -> float:
        """Total energy divided by bytes served, in picojoules per byte."""
        if total_bytes <= 0:
            return 0.0
        return self.total_j / PJ / total_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of every component (for serialisation / reports)."""
        return {
            "activation_j": self.activation_j,
            "read_j": self.read_j,
            "write_j": self.write_j,
            "io_j": self.io_j,
            "background_j": self.background_j,
            "refresh_j": self.refresh_j,
            "dynamic_j": self.dynamic_j,
            "static_j": self.static_j,
            "total_j": self.total_j,
            "elapsed_s": self.elapsed_s,
        }


def _bus_busy_fraction(device: DramDevice, elapsed_ps: int) -> float:
    """Fraction of channel-time the data buses spent transferring data."""
    total_busy = sum(channel.busy_time_ps for channel in device.channels)
    capacity = elapsed_ps * len(device.channels)
    if capacity <= 0:
        return 0.0
    return min(1.0, total_busy / capacity)


def estimate_dram_energy(
    device: DramDevice,
    elapsed_ps: int,
    params: Optional[DramPowerParams] = None,
) -> DramEnergyBreakdown:
    """Estimate the DRAM energy of a finished run.

    Parameters
    ----------
    device:
        The DRAM device after the simulation has run; its counters are read
        but not modified.
    elapsed_ps:
        Simulated duration the background/refresh power applies to.
    params:
        Power parameters; defaults scale the LPDDR4 defaults to the device's
        current I/O frequency so that DVFS sweeps see background power shrink
        at lower frequencies.
    """
    if elapsed_ps <= 0:
        raise ValueError("elapsed_ps must be positive")
    if params is None:
        params = DramPowerParams().scaled_to(device.config.io_freq_mhz)

    elapsed_s = elapsed_ps * PS
    activations = device.row_misses + device.row_closed
    activation_j = activations * params.activate_precharge_nj * NJ
    read_j = device.read_bytes * params.read_pj_per_byte * PJ
    write_j = device.write_bytes * params.write_pj_per_byte * PJ
    io_j = (device.read_bytes + device.write_bytes) * params.io_pj_per_byte * PJ

    ranks_total = device.config.channels * device.config.ranks_per_channel
    busy_fraction = _bus_busy_fraction(device, elapsed_ps)
    background_w = ranks_total * (
        params.active_standby_mw_per_rank * MW * busy_fraction
        + params.idle_standby_mw_per_rank * MW * (1.0 - busy_fraction)
    )
    background_j = background_w * elapsed_s
    refresh_j = ranks_total * params.refresh_mw_per_rank * MW * elapsed_s

    return DramEnergyBreakdown(
        activation_j=activation_j,
        read_j=read_j,
        write_j=write_j,
        io_j=io_j,
        background_j=background_j,
        refresh_j=refresh_j,
        elapsed_s=elapsed_s,
    )
