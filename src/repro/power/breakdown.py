"""Whole-memory-system energy roll-up and text reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.power.dram_energy import DramEnergyBreakdown, estimate_dram_energy
from repro.power.noc_energy import NocEnergyBreakdown, estimate_noc_energy
from repro.power.params import PJ, DramPowerParams, NocPowerParams


@dataclass(frozen=True)
class EnergyReport:
    """Combined DRAM + NoC energy of one simulation run."""

    dram: DramEnergyBreakdown
    noc: NocEnergyBreakdown
    served_bytes: int

    @property
    def total_j(self) -> float:
        return self.dram.total_j + self.noc.total_j

    @property
    def average_power_w(self) -> float:
        elapsed = max(self.dram.elapsed_s, self.noc.elapsed_s)
        if elapsed <= 0:
            return 0.0
        return self.total_j / elapsed

    @property
    def energy_per_byte_pj(self) -> float:
        """Memory-system energy per byte of DRAM traffic served."""
        if self.served_bytes <= 0:
            return 0.0
        return self.total_j / PJ / self.served_bytes

    @property
    def energy_per_bit_pj(self) -> float:
        if self.served_bytes <= 0:
            return 0.0
        return self.energy_per_byte_pj / 8.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "dram": self.dram.as_dict(),
            "noc": self.noc.as_dict(),
            "served_bytes": self.served_bytes,
            "total_j": self.total_j,
            "average_power_w": self.average_power_w,
            "energy_per_byte_pj": self.energy_per_byte_pj,
        }


def estimate_system_energy(
    system,
    dram_params: Optional[DramPowerParams] = None,
    noc_params: Optional[NocPowerParams] = None,
    elapsed_ps: Optional[int] = None,
) -> EnergyReport:
    """Estimate the memory-system energy of a finished :class:`repro.System`.

    ``elapsed_ps`` defaults to the engine's current simulated time, i.e. the
    run that just finished.
    """
    elapsed = elapsed_ps if elapsed_ps is not None else system.engine.now_ps
    if elapsed <= 0:
        raise ValueError("the system has not run yet; nothing to estimate")
    dram = estimate_dram_energy(system.dram, elapsed, params=dram_params)
    noc = estimate_noc_energy(system.network, elapsed, params=noc_params)
    return EnergyReport(dram=dram, noc=noc, served_bytes=system.dram.total_bytes)


def format_energy_report(report: EnergyReport) -> str:
    """Human-readable multi-line summary of an :class:`EnergyReport`."""
    dram = report.dram
    noc = report.noc
    lines = [
        "Memory-system energy breakdown",
        "-" * 46,
        f"{'DRAM activation/precharge':<32}{dram.activation_j * 1e3:10.3f} mJ",
        f"{'DRAM read array':<32}{dram.read_j * 1e3:10.3f} mJ",
        f"{'DRAM write array':<32}{dram.write_j * 1e3:10.3f} mJ",
        f"{'DRAM I/O':<32}{dram.io_j * 1e3:10.3f} mJ",
        f"{'DRAM background':<32}{dram.background_j * 1e3:10.3f} mJ",
        f"{'DRAM refresh':<32}{dram.refresh_j * 1e3:10.3f} mJ",
        f"{'NoC dynamic':<32}{noc.dynamic_j * 1e3:10.3f} mJ",
        f"{'NoC leakage':<32}{noc.leakage_j * 1e3:10.3f} mJ",
        "-" * 46,
        f"{'Total':<32}{report.total_j * 1e3:10.3f} mJ",
        f"{'Average power':<32}{report.average_power_w * 1e3:10.3f} mW",
        f"{'Energy per byte served':<32}{report.energy_per_byte_pj:10.3f} pJ/B",
    ]
    return "\n".join(lines)
