"""On-chip-network energy estimation from router forwarding counters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.noc.network import Network
from repro.power.params import MW, PJ, PS, NocPowerParams


@dataclass(frozen=True)
class NocEnergyBreakdown:
    """Energy consumed by the on-chip network over one run, in joules."""

    dynamic_j: float
    leakage_j: float
    elapsed_s: float
    forwarded_bytes: int
    forwarded_packets: int

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.leakage_j

    @property
    def average_power_w(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_j / self.elapsed_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "dynamic_j": self.dynamic_j,
            "leakage_j": self.leakage_j,
            "total_j": self.total_j,
            "elapsed_s": self.elapsed_s,
            "forwarded_bytes": float(self.forwarded_bytes),
            "forwarded_packets": float(self.forwarded_packets),
        }


def estimate_noc_energy(
    network: Network,
    elapsed_ps: int,
    params: Optional[NocPowerParams] = None,
) -> NocEnergyBreakdown:
    """Estimate the NoC energy of a finished run.

    Every router traversal (hop) of every packet pays per-byte dynamic energy
    plus a per-packet overhead; every router pays leakage power for the full
    duration.  Router forwarding counters already accumulate per hop, so the
    sums below automatically weight multi-hop paths correctly.
    """
    if elapsed_ps <= 0:
        raise ValueError("elapsed_ps must be positive")
    params = params or NocPowerParams()

    routers = network.topology.routers()
    forwarded_bytes = sum(router.forwarded_bytes for router in routers)
    forwarded_packets = sum(router.forwarded_packets for router in routers)

    dynamic_j = (
        forwarded_bytes * params.hop_pj_per_byte
        + forwarded_packets * params.packet_overhead_pj
    ) * PJ
    elapsed_s = elapsed_ps * PS
    leakage_j = len(routers) * params.leakage_mw_per_router * MW * elapsed_s

    return NocEnergyBreakdown(
        dynamic_j=dynamic_j,
        leakage_j=leakage_j,
        elapsed_s=elapsed_s,
        forwarded_bytes=forwarded_bytes,
        forwarded_packets=forwarded_packets,
    )
