"""Power-model parameter sets for DRAM and the on-chip network.

The defaults are representative of a two-channel LPDDR4 part and a mobile
SoC interconnect.  They are intentionally expressed as *energies per event*
and *powers per component* rather than datasheet IDD currents: the simulator
counts events (activations, bytes transferred, router hops), so event
energies can be applied directly, and the qualitative results — row-buffer
hits save activation energy, higher DRAM frequency costs background power —
do not depend on matching one specific vendor's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DramPowerParams:
    """Energy/power parameters of the DRAM device.

    Attributes
    ----------
    vdd_v:
        Core supply voltage the per-event energies are referenced to.
        Energies scale with ``(v / vdd_v) ** 2`` when a different operating
        voltage is supplied to :meth:`scaled_to`.
    activate_precharge_nj:
        Energy of one row activation plus the precharge that eventually
        closes it (nanojoules).  This is the energy the row-buffer-hit
        optimisation of Policy 2 saves.
    read_pj_per_byte / write_pj_per_byte:
        Core array energy per byte read or written (picojoules).
    io_pj_per_byte:
        I/O and termination energy per byte moved across the bus.
    active_standby_mw_per_rank / idle_standby_mw_per_rank:
        Background power per rank while the rank is busy transferring data
        versus sitting idle with banks precharged.
    refresh_mw_per_rank:
        Average refresh power per rank (the periodic REF bursts smeared over
        time).
    reference_freq_mhz:
        I/O frequency the background powers are quoted at; background power
        scales linearly with frequency relative to this point.
    """

    vdd_v: float = 1.1
    activate_precharge_nj: float = 2.2
    read_pj_per_byte: float = 18.0
    write_pj_per_byte: float = 20.5
    io_pj_per_byte: float = 4.5
    active_standby_mw_per_rank: float = 22.0
    idle_standby_mw_per_rank: float = 7.5
    refresh_mw_per_rank: float = 1.8
    reference_freq_mhz: float = 1866.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ValueError(f"DRAM power parameter {name} must be positive")

    def scaled_to(self, freq_mhz: float, voltage_v: float | None = None) -> "DramPowerParams":
        """Return parameters re-scaled to another operating point.

        Dynamic (per-event) energies scale with the square of the voltage
        ratio; background powers scale linearly with frequency and with the
        square of the voltage ratio, the usual first-order CMOS model the
        DVFS governors rely on.
        """
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        voltage = self.vdd_v if voltage_v is None else voltage_v
        if voltage <= 0:
            raise ValueError("voltage_v must be positive")
        v_ratio_sq = (voltage / self.vdd_v) ** 2
        f_ratio = freq_mhz / self.reference_freq_mhz
        return replace(
            self,
            vdd_v=voltage,
            activate_precharge_nj=self.activate_precharge_nj * v_ratio_sq,
            read_pj_per_byte=self.read_pj_per_byte * v_ratio_sq,
            write_pj_per_byte=self.write_pj_per_byte * v_ratio_sq,
            io_pj_per_byte=self.io_pj_per_byte * v_ratio_sq,
            active_standby_mw_per_rank=self.active_standby_mw_per_rank * v_ratio_sq * f_ratio,
            idle_standby_mw_per_rank=self.idle_standby_mw_per_rank * v_ratio_sq * f_ratio,
            refresh_mw_per_rank=self.refresh_mw_per_rank * v_ratio_sq,
            reference_freq_mhz=freq_mhz,
        )


@dataclass(frozen=True)
class NocPowerParams:
    """Energy/power parameters of the on-chip network.

    Attributes
    ----------
    hop_pj_per_byte:
        Dynamic energy per byte per router traversal (buffer write + switch +
        link).
    packet_overhead_pj:
        Fixed per-packet energy per hop (header processing, arbitration).
    leakage_mw_per_router:
        Static power of one router.
    """

    hop_pj_per_byte: float = 1.1
    packet_overhead_pj: float = 350.0
    leakage_mw_per_router: float = 3.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ValueError(f"NoC power parameter {name} must be positive")


#: Joules per picojoule.
PJ = 1e-12
#: Joules per nanojoule.
NJ = 1e-9
#: Watts per milliwatt.
MW = 1e-3
#: Seconds per picosecond.
PS = 1e-12
