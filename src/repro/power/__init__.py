"""Energy and power estimation for the simulated memory system.

The paper motivates row-buffer-hit optimisation partly through power: every
avoided activation/precharge pair saves energy as well as time (Section 3.3).
This subpackage turns the simulator's event counters into an energy estimate
so that the benchmarks can report an energy figure next to every bandwidth
figure, and so that the DVFS governors in :mod:`repro.dvfs` have a cost model
to trade performance against.

The model is an *event-energy* model in the style of DRAMPower: each class of
event (row activation + precharge, read burst byte, write burst byte, I/O
toggling) carries a fixed energy, and standby/refresh power accrues with
time.  Default parameters are representative of an LPDDR4-x2-channel part;
they can be replaced wholesale through :class:`DramPowerParams`.

Public API
----------

* :class:`DramPowerParams`, :class:`NocPowerParams` — parameter sets.
* :func:`estimate_dram_energy` — energy breakdown of a
  :class:`~repro.dram.device.DramDevice` after a run.
* :func:`estimate_noc_energy` — energy breakdown of a
  :class:`~repro.noc.network.Network` after a run.
* :func:`estimate_system_energy` / :class:`EnergyReport` — whole-memory-system
  roll-up with derived metrics (average power, energy per bit).
"""

from repro.power.breakdown import EnergyReport, estimate_system_energy, format_energy_report
from repro.power.dram_energy import DramEnergyBreakdown, estimate_dram_energy
from repro.power.noc_energy import NocEnergyBreakdown, estimate_noc_energy
from repro.power.params import DramPowerParams, NocPowerParams

__all__ = [
    "DramEnergyBreakdown",
    "DramPowerParams",
    "EnergyReport",
    "NocEnergyBreakdown",
    "NocPowerParams",
    "estimate_dram_energy",
    "estimate_noc_energy",
    "estimate_system_energy",
    "format_energy_report",
]
