"""Simulation-kernel selection: the scalar reference vs the batched core.

The simulator ships two interchangeable execution kernels:

* ``"scalar"`` — the original object-per-event implementation.  Every
  scheduling decision scans Python lists, every transaction is a dataclass
  with a coherency hook, every NoC hop allocates a packet.  It is the
  readable reference the paper-facing code was written against.
* ``"batched"`` — the event-batched vectorized core.  Candidate sets are
  kept as columnar numpy arrays scored with masked vector ops, addresses are
  decoded once per transaction, NoC hops are packetless, and the engine run
  loop is inlined.  Results are **bit-identical** to the scalar kernel: the
  batched components replicate every observable state transition (policy
  round-robin turns, aging services, float accumulation order, uid
  sequence), and ``tests/test_batched_kernel.py`` plus the CI parity job
  assert equality of full result dictionaries across every bundled scenario.

The kernel is *not* part of :class:`~repro.sim.config.SimulationConfig`:
both kernels produce the same results, so the choice is an execution detail
(like the number of worker processes), not an experiment parameter.  Keeping
it out of the config keeps scenario files, result fingerprints and cache
keys unchanged — a sweep may mix kernels and still share its result cache.

Selection order: an explicit ``kernel=`` argument to
:func:`repro.system.builder.build_system` /
:func:`repro.system.experiment.run_experiment` wins, then the
``REPRO_SIM_KERNEL`` environment variable, then the default ("batched").
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit kernel is requested.
KERNEL_ENV_VAR = "REPRO_SIM_KERNEL"

#: The kernels this build knows how to construct.
KNOWN_KERNELS = ("scalar", "batched")

#: Used when neither the caller nor the environment chooses.
DEFAULT_KERNEL = "batched"


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve the kernel name to use for a run.

    ``None`` falls back to ``$REPRO_SIM_KERNEL``, then to
    :data:`DEFAULT_KERNEL`.  Unknown names raise ``ValueError`` so a typo in
    CI configuration fails loudly instead of silently benchmarking the wrong
    kernel.
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR) or DEFAULT_KERNEL
    if kernel not in KNOWN_KERNELS:
        raise ValueError(
            f"unknown simulation kernel '{kernel}' (known: {', '.join(KNOWN_KERNELS)})"
        )
    return kernel
