"""Time-series recording used to reproduce the paper's NPI-versus-time plots."""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """An append-only series of ``(time_ps, value)`` samples."""

    name: str
    times_ps: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time_ps: int, value: float) -> None:
        if self.times_ps and time_ps < self.times_ps[-1]:
            raise ValueError(
                f"time series '{self.name}' must be appended in time order: "
                f"{time_ps} < {self.times_ps[-1]}"
            )
        self.times_ps.append(time_ps)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def minimum(self) -> float:
        """Smallest recorded value (0.0 for an empty series)."""
        return min(self.values) if self.values else 0.0

    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def after(self, time_ps: int) -> "TimeSeries":
        """A new series containing only the samples at or after ``time_ps``."""
        # Samples are appended in time order (enforced by append), so the
        # first surviving sample can be found by bisection and the rest
        # copied with a slice instead of an element-by-element scan.
        start = bisect_left(self.times_ps, time_ps)
        trimmed = TimeSeries(self.name)
        trimmed.times_ps = self.times_ps[start:]
        trimmed.values = self.values[start:]
        return trimmed

    def final(self) -> float:
        return self.values[-1] if self.values else 0.0

    def value_at(self, time_ps: int) -> float:
        """Most recent value at or before ``time_ps`` (0.0 before first sample)."""
        result = 0.0
        for t, v in zip(self.times_ps, self.values):
            if t > time_ps:
                break
            result = v
        return result

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below a threshold."""
        if not self.values:
            return 0.0
        below = sum(1 for value in self.values if value < threshold)
        return below / len(self.values)

    def as_pairs(self) -> List[Tuple[int, float]]:
        return list(zip(self.times_ps, self.values))


class TraceRecorder:
    """A registry of named time series produced during one simulation run."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        """Return the series with this name, creating it on first use."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def record(self, name: str, time_ps: int, value: float) -> None:
        self.series(name).append(time_ps, value)

    def names(self) -> Sequence[str]:
        return sorted(self._series)

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)
