"""Simulated-time units and clock-domain helpers.

All simulated time in this package is expressed as an integer number of
picoseconds.  Integer time keeps event ordering exact and reproducible, and a
picosecond granularity comfortably resolves LPDDR4 command timing (a 1866 MHz
clock period is roughly 536 ps).
"""

from __future__ import annotations

from dataclasses import dataclass

#: One picosecond, the base unit of simulated time.
PS = 1
#: One nanosecond in picoseconds.
NS = 1_000
#: One microsecond in picoseconds.
US = 1_000_000
#: One millisecond in picoseconds.
MS = 1_000_000_000
#: One second in picoseconds.
SECOND = 1_000_000_000_000


def freq_mhz_to_period_ps(freq_mhz: float) -> int:
    """Return the clock period in picoseconds for a frequency in MHz.

    The result is rounded to the nearest picosecond; a zero or negative
    frequency is rejected because it cannot describe a real clock.
    """
    if freq_mhz <= 0:
        raise ValueError(f"clock frequency must be positive, got {freq_mhz} MHz")
    return max(1, round(1_000_000 / freq_mhz))


@dataclass(frozen=True)
class Clock:
    """A clock domain defined by its frequency in MHz.

    The clock converts between cycle counts and simulated picoseconds.  It is
    immutable; DVFS-style frequency changes are modelled by building a new
    :class:`Clock` (see ``repro.dram.device.DramDevice.set_frequency``).
    """

    freq_mhz: float

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise ValueError(
                f"clock frequency must be positive, got {self.freq_mhz} MHz"
            )

    @property
    def period_ps(self) -> int:
        """Clock period in picoseconds (rounded to the nearest integer)."""
        return freq_mhz_to_period_ps(self.freq_mhz)

    def cycles_to_ps(self, cycles: float) -> int:
        """Convert a (possibly fractional) cycle count to picoseconds."""
        if cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {cycles}")
        return round(cycles * self.period_ps)

    def ps_to_cycles(self, time_ps: int) -> float:
        """Convert a duration in picoseconds to a fractional cycle count."""
        if time_ps < 0:
            raise ValueError(f"duration must be non-negative, got {time_ps}")
        return time_ps / self.period_ps

    def scaled(self, freq_mhz: float) -> "Clock":
        """Return a new clock at a different frequency (used for DVFS sweeps)."""
        return Clock(freq_mhz)
