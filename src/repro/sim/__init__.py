"""Discrete-event simulation kernel used by every substrate in the package.

The kernel is deliberately small: an event queue ordered by integer
picosecond timestamps (:mod:`repro.sim.engine`), helpers to convert between
clock frequencies and simulated time (:mod:`repro.sim.clock`), statistics and
time-series recording (:mod:`repro.sim.stats`, :mod:`repro.sim.trace`),
deterministic random-stream derivation (:mod:`repro.sim.random`) and the
configuration dataclasses that describe a simulated platform
(:mod:`repro.sim.config`).
"""

from repro.sim.clock import Clock, MS, NS, PS, US, SECOND
from repro.sim.config import (
    DramConfig,
    DramTimingConfig,
    MemoryControllerConfig,
    NocConfig,
    SimulationConfig,
)
from repro.sim.engine import Engine, Event
from repro.sim.random import derive_rng, derive_seed
from repro.sim.stats import Counter, Histogram, RunningMean, WindowedRate
from repro.sim.trace import TimeSeries, TraceRecorder

__all__ = [
    "Clock",
    "Counter",
    "DramConfig",
    "DramTimingConfig",
    "Engine",
    "Event",
    "Histogram",
    "MS",
    "MemoryControllerConfig",
    "NS",
    "NocConfig",
    "PS",
    "RunningMean",
    "SECOND",
    "SimulationConfig",
    "TimeSeries",
    "TraceRecorder",
    "US",
    "WindowedRate",
    "derive_rng",
    "derive_seed",
]
