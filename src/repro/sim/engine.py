"""Discrete-event simulation engine.

The engine keeps a binary heap of :class:`Event` objects ordered by
``(time_ps, sequence)``.  Components schedule callbacks; the engine fires them
in timestamp order until a time horizon is reached or the queue drains.

Two hot-path shortcuts keep per-event overhead low under heavy sweeps:

* Events scheduled for the *current* timestamp (``delay_ps == 0`` bursts,
  completion cascades) bypass the heap entirely and go into a FIFO bucket.
  Sequence numbers guarantee that anything already on the heap for the same
  timestamp still fires first, so execution order is identical to the pure
  heap — just without an O(log n) push/pop per event.
* Cancelled events leave a tombstone on the heap that is skipped when popped
  — cheaper and simpler than heap surgery.  The engine counts live
  tombstones and compacts the heap in place once they exceed both a fixed
  floor and half of the queue, so a workload that cancels heavily cannot
  bloat the heap indefinitely.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional

#: Compaction never triggers below this many tombstones (a small heap is
#: cheap to carry and compacting it would thrash).
COMPACT_MIN_TOMBSTONES = 64


class Event:
    """A scheduled callback.

    Events compare by ``(time_ps, sequence)`` so that two events scheduled for
    the same timestamp fire in scheduling order, which keeps simulations
    deterministic regardless of heap internals.
    """

    __slots__ = ("time_ps", "sequence", "callback", "args", "cancelled", "engine")

    def __init__(
        self,
        time_ps: int,
        sequence: int,
        callback: Callable[..., None],
        args: tuple,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time_ps = time_ps
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the heap top."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.engine is not None:
            self.engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ps, self.sequence) < (other.time_ps, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_ps}ps, seq={self.sequence}, {state})"


class Engine:
    """Event-driven simulation kernel with integer-picosecond time."""

    def __init__(self) -> None:
        # The heap stores ``(time_ps, sequence, event)`` tuples so that heap
        # sifting compares plain integers at C speed instead of calling
        # Event.__lt__ per comparison.
        self._queue: List[tuple] = []
        # Events scheduled for exactly the current timestamp.  Invariant:
        # every event in the bucket has ``time_ps == self._now_ps`` — time
        # only advances once the bucket is empty, because a bucket event
        # always sorts before any heap event at a later time.
        self._bucket: Deque[Event] = deque()
        self._now_ps: int = 0
        self._sequence: int = 0
        self._fired: int = 0
        self._cancelled: int = 0
        self._running = False

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._queue) + len(self._bucket)

    @property
    def fired_events(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def cancelled_pending(self) -> int:
        """Number of tombstones currently queued."""
        return self._cancelled

    def schedule_at(
        self, time_ps: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time_ps < self._now_ps:
            raise ValueError(
                f"cannot schedule event in the past: {time_ps} < now {self._now_ps}"
            )
        event = Event(time_ps, self._sequence, callback, args, self)
        self._sequence += 1
        if time_ps == self._now_ps:
            # Same-timestamp fast path: FIFO order equals sequence order, and
            # heap events at this timestamp all carry smaller sequences, so
            # the run loop can merge the two sources exactly.
            self._bucket.append(event)
        else:
            heapq.heappush(self._queue, (time_ps, event.sequence, event))
        return event

    def schedule(
        self, delay_ps: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative delay in picoseconds."""
        if delay_ps < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ps}")
        return self.schedule_at(self._now_ps + delay_ps, callback, *args)

    def _note_cancelled(self) -> None:
        """Account for a new tombstone and compact the heap if it dominates."""
        self._cancelled += 1
        if (
            self._cancelled >= COMPACT_MIN_TOMBSTONES
            and self._cancelled * 2 >= len(self._queue) + len(self._bucket)
        ):
            self.drain_cancelled()

    def _next_event(self) -> Optional[Event]:
        """Pop the next live event in ``(time_ps, sequence)`` order."""
        queue = self._queue
        bucket = self._bucket
        pop = heapq.heappop
        while queue or bucket:
            if bucket and (
                not queue
                or queue[0][0] > self._now_ps
                or queue[0][1] > bucket[0].sequence
            ):
                event = bucket.popleft()
            else:
                event = pop(queue)[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            # Detach the engine reference: a cancel() after the event fired
            # must not count a tombstone that is no longer queued (and the
            # compaction trigger must not chase it).
            event.engine = None
            return event
        return None

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until_ps:
            Stop once simulated time would advance past this horizon.  Events
            scheduled exactly at the horizon still fire.  ``None`` runs until
            the queue drains.
        max_events:
            Optional safety valve on the number of events executed in this
            call.

        Returns
        -------
        int
            The number of events executed during this call.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        try:
            while self._queue or self._bucket:
                if max_events is not None and executed >= max_events:
                    break
                event = self._next_event()
                if event is None:
                    break
                if until_ps is not None and event.time_ps > until_ps:
                    # Put the event back; it belongs to a later run() call.
                    event.engine = self
                    if event.time_ps == self._now_ps:
                        self._bucket.appendleft(event)
                    else:
                        heapq.heappush(
                            self._queue, (event.time_ps, event.sequence, event)
                        )
                    break
                self._now_ps = event.time_ps
                event.callback(*event.args)
                executed += 1
                self._fired += 1
            if until_ps is not None and self._now_ps < until_ps:
                # Advance the clock to the horizon even if the queue drained
                # early so callers can rely on `now_ps == until_ps`.
                self._now_ps = until_ps
        finally:
            self._running = False
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        event = self._next_event()
        if event is None:
            return False
        self._now_ps = event.time_ps
        event.callback(*event.args)
        self._fired += 1
        return True

    def drain_cancelled(self) -> int:
        """Remove cancelled tombstones in place; returns how many were removed.

        This runs automatically once tombstones outnumber live events (see
        :data:`COMPACT_MIN_TOMBSTONES`) but can also be called explicitly.
        The heap list keeps its identity so iterators held by the run loop
        stay valid.
        """
        before = len(self._queue) + len(self._bucket)
        live = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(live)
        self._queue[:] = live
        live_bucket = [event for event in self._bucket if not event.cancelled]
        self._bucket.clear()
        self._bucket.extend(live_bucket)
        self._cancelled = 0
        return before - len(self._queue) - len(self._bucket)
