"""Discrete-event simulation engine.

The engine keeps a binary heap of ``(time_ps, sequence, callback, args,
event)`` entries ordered by ``(time_ps, sequence)``.  Components schedule
callbacks; the engine fires them in timestamp order until a time horizon is
reached or the queue drains.

Three hot-path shortcuts keep per-event overhead low under heavy sweeps:

* Events scheduled for the *current* timestamp (``delay_ps == 0`` bursts,
  completion cascades) bypass the heap entirely and go into a FIFO bucket.
  Sequence numbers guarantee that anything already on the heap for the same
  timestamp still fires first, so execution order is identical to the pure
  heap — just without an O(log n) push/pop per event.
* :meth:`Engine.schedule_call` queues a bare callback without allocating an
  :class:`Event` handle at all (the ``event`` slot of its entry is ``None``).
  The batched kernel's fire-and-forget hot paths — link deliveries, DRAM
  completions — use it; anything that might be cancelled must go through
  :meth:`Engine.schedule_at`.
* Cancelled events leave a tombstone on the heap that is skipped when popped
  — cheaper and simpler than heap surgery.  The engine counts live
  tombstones and compacts the heap in place once they exceed both a fixed
  floor and half of the queue, so a workload that cancels heavily cannot
  bloat the heap indefinitely.

Entries never tie on ``(time_ps, sequence)`` (sequences are unique), so heap
sifting compares plain integers only and the trailing tuple elements never
participate in comparisons.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional

#: Compaction never triggers below this many tombstones (a small heap is
#: cheap to carry and compacting it would thrash).
COMPACT_MIN_TOMBSTONES = 64


class Event:
    """A cancellable handle to a scheduled callback.

    Only :meth:`Engine.schedule_at` / :meth:`Engine.schedule` allocate these;
    the handle exists so callers can :meth:`cancel` before the fire time.
    """

    __slots__ = ("time_ps", "sequence", "callback", "args", "cancelled", "engine")

    def __init__(
        self,
        time_ps: int,
        sequence: int,
        callback: Callable[..., None],
        args: tuple,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time_ps = time_ps
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the heap top."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.engine is not None:
            self.engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ps, self.sequence) < (other.time_ps, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_ps}ps, seq={self.sequence}, {state})"


class Engine:
    """Event-driven simulation kernel with integer-picosecond time."""

    def __init__(self) -> None:
        # Both containers hold (time_ps, sequence, callback, args, event)
        # tuples; ``event`` is None for schedule_call entries.
        self._queue: List[tuple] = []
        # Entries scheduled for exactly the current timestamp.  Invariant:
        # every entry in the bucket has ``time_ps == self._now_ps`` — time
        # only advances once the bucket is empty, because a bucket entry
        # always sorts before any heap entry at a later time.
        self._bucket: Deque[tuple] = deque()
        self._now_ps: int = 0
        self._sequence: int = 0
        self._fired: int = 0
        self._cancelled: int = 0
        self._running = False

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._queue) + len(self._bucket)

    @property
    def fired_events(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def cancelled_pending(self) -> int:
        """Number of tombstones currently queued."""
        return self._cancelled

    def schedule_at(
        self, time_ps: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time_ps < self._now_ps:
            raise ValueError(
                f"cannot schedule event in the past: {time_ps} < now {self._now_ps}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time_ps, sequence, callback, args, self)
        entry = (time_ps, sequence, callback, args, event)
        if time_ps == self._now_ps:
            # Same-timestamp fast path: FIFO order equals sequence order, and
            # heap entries at this timestamp all carry smaller sequences, so
            # the run loop can merge the two sources exactly.
            self._bucket.append(entry)
        else:
            heapq.heappush(self._queue, entry)
        return event

    def schedule_call(
        self, time_ps: int, callback: Callable[..., None], args: tuple = ()
    ) -> None:
        """Schedule a fire-and-forget ``callback(*args)`` with no Event handle.

        Identical ordering semantics to :meth:`schedule_at` (one shared
        sequence counter), but nothing is allocated besides the queue entry —
        and consequently the call cannot be cancelled.  Hot paths that never
        cancel (link deliveries, DRAM completion callbacks) use this.
        """
        if time_ps < self._now_ps:
            raise ValueError(
                f"cannot schedule event in the past: {time_ps} < now {self._now_ps}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        entry = (time_ps, sequence, callback, args, None)
        if time_ps == self._now_ps:
            self._bucket.append(entry)
        else:
            heapq.heappush(self._queue, entry)

    def schedule(
        self, delay_ps: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative delay in picoseconds."""
        if delay_ps < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ps}")
        return self.schedule_at(self._now_ps + delay_ps, callback, *args)

    def _note_cancelled(self) -> None:
        """Account for a new tombstone and compact the heap if it dominates."""
        self._cancelled += 1
        if (
            self._cancelled >= COMPACT_MIN_TOMBSTONES
            and self._cancelled * 2 >= len(self._queue) + len(self._bucket)
        ):
            self.drain_cancelled()

    def _next_entry(self) -> Optional[tuple]:
        """Pop the next live entry in ``(time_ps, sequence)`` order."""
        queue = self._queue
        bucket = self._bucket
        pop = heapq.heappop
        while queue or bucket:
            if bucket and (
                not queue
                or queue[0][0] > self._now_ps
                or queue[0][1] > bucket[0][1]
            ):
                entry = bucket.popleft()
            else:
                entry = pop(queue)
            event = entry[4]
            if event is not None:
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                # Detach the engine reference: a cancel() after the event
                # fired must not count a tombstone that is no longer queued
                # (and the compaction trigger must not chase it).
                event.engine = None
            return entry
        return None

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until_ps:
            Stop once simulated time would advance past this horizon.  Events
            scheduled exactly at the horizon still fire.  ``None`` runs until
            the queue drains.
        max_events:
            Optional safety valve on the number of events executed in this
            call.

        Returns
        -------
        int
            The number of events executed during this call.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        try:
            while self._queue or self._bucket:
                if max_events is not None and executed >= max_events:
                    break
                entry = self._next_entry()
                if entry is None:
                    break
                time_ps = entry[0]
                if until_ps is not None and time_ps > until_ps:
                    # Put the entry back; it belongs to a later run() call.
                    event = entry[4]
                    if event is not None:
                        event.engine = self
                    if time_ps == self._now_ps:
                        self._bucket.appendleft(entry)
                    else:
                        heapq.heappush(self._queue, entry)
                    break
                self._now_ps = time_ps
                entry[2](*entry[3])
                executed += 1
                self._fired += 1
            if until_ps is not None and self._now_ps < until_ps:
                # Advance the clock to the horizon even if the queue drained
                # early so callers can rely on `now_ps == until_ps`.
                self._now_ps = until_ps
        finally:
            self._running = False
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        entry = self._next_entry()
        if entry is None:
            return False
        self._now_ps = entry[0]
        entry[2](*entry[3])
        self._fired += 1
        return True

    def drain_cancelled(self) -> int:
        """Remove cancelled tombstones in place; returns how many were removed.

        This runs automatically once tombstones outnumber live events (see
        :data:`COMPACT_MIN_TOMBSTONES`) but can also be called explicitly.
        The heap list keeps its identity so iterators held by the run loop
        stay valid.
        """
        before = len(self._queue) + len(self._bucket)
        live = [
            entry
            for entry in self._queue
            if entry[4] is None or not entry[4].cancelled
        ]
        heapq.heapify(live)
        self._queue[:] = live
        live_bucket = [
            entry
            for entry in self._bucket
            if entry[4] is None or not entry[4].cancelled
        ]
        self._bucket.clear()
        self._bucket.extend(live_bucket)
        self._cancelled = 0
        return before - len(self._queue) - len(self._bucket)


class BatchedEngine(Engine):
    """The batched kernel's engine: identical semantics, inlined run loop.

    Scheduling, cancellation, tombstone compaction and the same-timestamp
    bucket behave exactly as in :class:`Engine` (all of that is inherited).
    Only :meth:`run` is replaced: the heap/bucket merge of ``_next_entry`` is
    inlined into the loop with every per-event attribute lookup hoisted into
    locals, which removes one Python function call plus several attribute
    loads per event — measurable at millions of events per sweep, invisible
    in behaviour.  Event order, clock updates and counters are bit-identical
    to the scalar engine; ``tests/test_batched_kernel.py`` asserts it on the
    edge cases (empty queue, horizon put-back, tombstones interleaved with
    bucket batches).
    """

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        queue = self._queue
        bucket = self._bucket
        pop = heapq.heappop
        try:
            while queue or bucket:
                if max_events is not None and executed >= max_events:
                    break
                # Inlined _next_entry(): pop the next live entry in
                # (time_ps, sequence) order, skipping tombstones.
                entry = None
                while queue or bucket:
                    if bucket and (
                        not queue
                        or queue[0][0] > self._now_ps
                        or queue[0][1] > bucket[0][1]
                    ):
                        candidate = bucket.popleft()
                    else:
                        candidate = pop(queue)
                    event = candidate[4]
                    if event is not None:
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event.engine = None
                    entry = candidate
                    break
                if entry is None:
                    break
                time_ps = entry[0]
                if until_ps is not None and time_ps > until_ps:
                    # Put the entry back; it belongs to a later run() call.
                    event = entry[4]
                    if event is not None:
                        event.engine = self
                    if time_ps == self._now_ps:
                        bucket.appendleft(entry)
                    else:
                        heapq.heappush(queue, entry)
                    break
                self._now_ps = time_ps
                entry[2](*entry[3])
                executed += 1
                self._fired += 1
            if until_ps is not None and self._now_ps < until_ps:
                self._now_ps = until_ps
        finally:
            self._running = False
        return executed
