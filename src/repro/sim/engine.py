"""Discrete-event simulation engine.

The engine keeps a binary heap of :class:`Event` objects ordered by
``(time_ps, sequence)``.  Components schedule callbacks; the engine fires them
in timestamp order until a time horizon is reached or the queue drains.
Events may be cancelled, which leaves a tombstone on the heap that is skipped
when popped — cheaper and simpler than heap surgery.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.

    Events compare by ``(time_ps, sequence)`` so that two events scheduled for
    the same timestamp fire in scheduling order, which keeps simulations
    deterministic regardless of heap internals.
    """

    __slots__ = ("time_ps", "sequence", "callback", "args", "cancelled")

    def __init__(
        self,
        time_ps: int,
        sequence: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time_ps = time_ps
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the heap top."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ps, self.sequence) < (other.time_ps, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_ps}ps, seq={self.sequence}, {state})"


class Engine:
    """Event-driven simulation kernel with integer-picosecond time."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now_ps: int = 0
        self._sequence: int = 0
        self._fired: int = 0
        self._running = False

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including cancelled tombstones)."""
        return len(self._queue)

    @property
    def fired_events(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule_at(
        self, time_ps: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time_ps < self._now_ps:
            raise ValueError(
                f"cannot schedule event in the past: {time_ps} < now {self._now_ps}"
            )
        event = Event(time_ps, self._sequence, callback, args)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule(
        self, delay_ps: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative delay in picoseconds."""
        if delay_ps < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ps}")
        return self.schedule_at(self._now_ps + delay_ps, callback, *args)

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until_ps:
            Stop once simulated time would advance past this horizon.  Events
            scheduled exactly at the horizon still fire.  ``None`` runs until
            the queue drains.
        max_events:
            Optional safety valve on the number of events executed in this
            call.

        Returns
        -------
        int
            The number of events executed during this call.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until_ps is not None and event.time_ps > until_ps:
                    break
                heapq.heappop(self._queue)
                self._now_ps = event.time_ps
                event.callback(*event.args)
                executed += 1
                self._fired += 1
            if until_ps is not None and self._now_ps < until_ps:
                # Advance the clock to the horizon even if the queue drained
                # early so callers can rely on `now_ps == until_ps`.
                self._now_ps = until_ps
        finally:
            self._running = False
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now_ps = event.time_ps
            event.callback(*event.args)
            self._fired += 1
            return True
        return False

    def drain_cancelled(self) -> int:
        """Remove cancelled tombstones from the heap; returns how many."""
        before = len(self._queue)
        live = [event for event in self._queue if not event.cancelled]
        heapq.heapify(live)
        self._queue = live
        return before - len(live)
