"""Configuration dataclasses describing a simulated platform.

The defaults reproduce Table 1 of the paper: an LPDDR4 device at a maximum
I/O bus frequency of 1866 MHz with CL-tRCD-tRP = 36-34-34,
tWTR-tRTP-tWR = 19-14-34, tRRD-tFAW = 19-75, organised as 2 channels x
2 ranks x 8 banks, in front of a memory controller with 42 total entries
split over 5 transaction queues.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Type, TypeVar

_C = TypeVar("_C")


def _fields_from_mapping(cls: Type[_C], data: Mapping[str, object], path: str) -> Dict[str, object]:
    """Validate a mapping against a config dataclass's fields.

    Missing keys fall back to the dataclass defaults (so partial
    configurations in scenario files stay short); unknown keys are rejected
    with the dotted path of the offending entry and the list of known keys,
    which is what makes scenario schema errors actionable.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"{path}: expected a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{path}: unknown key(s) {unknown} (known: {sorted(known)})"
        )
    return {name: data[name] for name in known if name in data}


def _construct(cls: Type[_C], kwargs: Dict[str, object], path: str) -> _C:
    """Build a config dataclass, rewriting validation errors to carry ``path``."""
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from None


@dataclass(frozen=True)
class DramTimingConfig:
    """LPDDR4 command timing in DRAM clock cycles (Table 1 of the paper)."""

    cl: int = 36
    t_rcd: int = 34
    t_rp: int = 34
    t_wtr: int = 19
    t_rtp: int = 14
    t_wr: int = 34
    t_rrd: int = 19
    t_faw: int = 75
    burst_length: int = 16

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ValueError(f"DRAM timing parameter {name} must be positive")

    def row_miss_cycles(self) -> int:
        """Cycles to serve a request whose bank has a different row open."""
        return self.t_rp + self.t_rcd + self.cl

    def row_closed_cycles(self) -> int:
        """Cycles to serve a request whose bank has no row open."""
        return self.t_rcd + self.cl

    def row_hit_cycles(self) -> int:
        """Cycles to serve a request hitting the currently open row."""
        return self.cl


@dataclass(frozen=True)
class DramConfig:
    """Organisation and speed of the DRAM subsystem."""

    io_freq_mhz: float = 1866.0
    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    row_size_bytes: int = 8192
    bus_bytes_per_cycle: int = 8
    capacity_bytes: int = 2 * 1024**3
    timing: DramTimingConfig = field(default_factory=DramTimingConfig)

    def __post_init__(self) -> None:
        if self.io_freq_mhz <= 0:
            raise ValueError("DRAM I/O frequency must be positive")
        for name in ("channels", "ranks_per_channel", "banks_per_rank"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.row_size_bytes <= 0 or self.row_size_bytes & (self.row_size_bytes - 1):
            raise ValueError("row_size_bytes must be a positive power of two")
        if self.bus_bytes_per_cycle <= 0:
            raise ValueError("bus_bytes_per_cycle must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    def peak_bandwidth_bytes_per_s(self) -> float:
        """Aggregate peak data-bus bandwidth across all channels."""
        return (
            self.channels
            * self.bus_bytes_per_cycle
            * self.io_freq_mhz
            * 1_000_000.0
        )

    def with_frequency(self, io_freq_mhz: float) -> "DramConfig":
        """Return a copy at a different I/O frequency (for DVFS sweeps)."""
        return replace(self, io_freq_mhz=io_freq_mhz)


@dataclass(frozen=True)
class MemoryControllerConfig:
    """Memory-controller front-end organisation (Table 1)."""

    total_entries: int = 42
    transaction_queues: int = 5
    aging_threshold_cycles: int = 10_000
    row_buffer_delta: int = 6
    scheduler_window_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.total_entries <= 0:
            raise ValueError("total_entries must be positive")
        if self.transaction_queues <= 0:
            raise ValueError("transaction_queues must be positive")
        if self.aging_threshold_cycles <= 0:
            raise ValueError("aging_threshold_cycles must be positive")
        if not 0 <= self.row_buffer_delta <= 7:
            raise ValueError("row_buffer_delta must be a 3-bit priority level")
        if (
            self.scheduler_window_entries is not None
            and self.scheduler_window_entries <= 0
        ):
            raise ValueError("scheduler_window_entries must be positive when set")

    @property
    def entries_per_queue(self) -> int:
        return max(1, self.total_entries // self.transaction_queues)


#: Every scheduling policy that may be used for NoC switch arbitration.  The
#: set mirrors the memory-controller policy registry (a consistency test in
#: tests/test_memctrl_new_policies.py keeps the two in sync); it is duplicated
#: here so that configuration validation does not import the policy package.
KNOWN_ARBITRATIONS = frozenset(
    {
        "fcfs",
        "round_robin",
        "fr_fcfs",
        "frame_rate_qos",
        "priority_qos",
        "priority_rowbuffer",
        "atlas",
        "tcm",
        "sms",
        "edf",
    }
)

#: Interconnect topologies the system builder can construct.
KNOWN_TOPOLOGIES = frozenset({"tree", "mesh"})


@dataclass(frozen=True)
class NocConfig:
    """On-chip-network arbiter, link and topology parameters."""

    link_bytes_per_ns: float = 32.0
    router_latency_ns: float = 5.0
    arbitration: str = "round_robin"
    topology: str = "tree"
    mesh_columns: int = 2

    def __post_init__(self) -> None:
        if self.link_bytes_per_ns <= 0:
            raise ValueError("link_bytes_per_ns must be positive")
        if self.router_latency_ns < 0:
            raise ValueError("router_latency_ns must be non-negative")
        if self.topology not in KNOWN_TOPOLOGIES:
            raise ValueError(
                f"unknown NoC topology '{self.topology}' "
                f"(known: {sorted(KNOWN_TOPOLOGIES)})"
            )
        if self.mesh_columns <= 0:
            raise ValueError("mesh_columns must be positive")
        if self.arbitration not in KNOWN_ARBITRATIONS:
            # User-defined policies registered at runtime (see
            # repro.memctrl.policies.register_policy) are also accepted; the
            # import is deferred so configuration stays import-light.
            from repro.memctrl.policies import available_policies

            if self.arbitration not in available_policies():
                raise ValueError(
                    f"unknown NoC arbitration '{self.arbitration}' "
                    f"(known: {sorted(KNOWN_ARBITRATIONS)})"
                )


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level description of one simulation run."""

    duration_ps: int = 33_000_000_000  # one 30 fps frame period (33 ms)
    seed: int = 2018
    sim_scale: float = 1.0
    priority_bits: int = 3
    adaptation_interval_ps: int = 10_000_000  # 10 us between meter samples
    warmup_ps: int = 2_000_000_000  # cold-start samples excluded from pass/fail
    dram: DramConfig = field(default_factory=DramConfig)
    memory_controller: MemoryControllerConfig = field(
        default_factory=MemoryControllerConfig
    )
    noc: NocConfig = field(default_factory=NocConfig)

    def __post_init__(self) -> None:
        if self.duration_ps <= 0:
            raise ValueError("duration_ps must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if not 0 < self.sim_scale <= 1.0:
            raise ValueError("sim_scale must be in (0, 1]")
        if not 1 <= self.priority_bits <= 8:
            raise ValueError("priority_bits must be between 1 and 8")
        if self.adaptation_interval_ps <= 0:
            raise ValueError("adaptation_interval_ps must be positive")
        if self.warmup_ps < 0:
            raise ValueError("warmup_ps must be non-negative")

    @property
    def priority_levels(self) -> int:
        """Number of distinct priority levels (2^k)."""
        return 1 << self.priority_bits

    @property
    def max_priority(self) -> int:
        return self.priority_levels - 1

    def with_overrides(self, **changes: object) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """Flatten the configuration (and its nested configs) to plain data.

        The result is JSON-compatible and lossless:
        ``SimulationConfig.from_dict(config.to_dict()) == config``.
        """
        return asdict(self)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], path: str = "config"
    ) -> "SimulationConfig":
        """Rebuild a configuration from (possibly partial) plain data.

        Missing fields take the Table-1 defaults; unknown or invalid fields
        raise ``ValueError`` carrying the dotted path of the offending entry.
        """
        kwargs = _fields_from_mapping(cls, data, path)
        if "dram" in kwargs:
            dram_kwargs = _fields_from_mapping(
                DramConfig, kwargs["dram"], f"{path}.dram"
            )
            if "timing" in dram_kwargs:
                dram_kwargs["timing"] = _construct(
                    DramTimingConfig,
                    _fields_from_mapping(
                        DramTimingConfig, dram_kwargs["timing"], f"{path}.dram.timing"
                    ),
                    f"{path}.dram.timing",
                )
            kwargs["dram"] = _construct(DramConfig, dram_kwargs, f"{path}.dram")
        if "memory_controller" in kwargs:
            kwargs["memory_controller"] = _construct(
                MemoryControllerConfig,
                _fields_from_mapping(
                    MemoryControllerConfig,
                    kwargs["memory_controller"],
                    f"{path}.memory_controller",
                ),
                f"{path}.memory_controller",
            )
        if "noc" in kwargs:
            kwargs["noc"] = _construct(
                NocConfig,
                _fields_from_mapping(NocConfig, kwargs["noc"], f"{path}.noc"),
                f"{path}.noc",
            )
        return _construct(cls, kwargs, path)
