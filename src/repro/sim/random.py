"""Deterministic random-stream derivation.

Every stochastic component (traffic generators, CPU address streams, ...)
receives its own :class:`numpy.random.Generator` derived from the experiment
seed and a stable component name.  This keeps runs exactly reproducible and
means adding a new core does not perturb the random streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a base seed and a component name."""
    if base_seed < 0:
        raise ValueError(f"base seed must be non-negative, got {base_seed}")
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def derive_rng(base_seed: int, name: str) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically for this component."""
    return np.random.default_rng(derive_seed(base_seed, name))
