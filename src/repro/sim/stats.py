"""Statistics primitives shared by meters, schedulers and the analysis layer."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative, got {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class RunningMean:
    """Streaming mean/min/max over an unbounded sequence of samples."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        """Mean of all samples, or 0.0 when no sample has been recorded."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None


class Histogram:
    """Integer-bucket histogram, used e.g. for priority-level distributions."""

    def __init__(self, buckets: Iterable[int]) -> None:
        self._counts: Dict[int, int] = {bucket: 0 for bucket in buckets}
        if not self._counts:
            raise ValueError("histogram needs at least one bucket")

    def add(self, bucket: int, weight: int = 1) -> None:
        if bucket not in self._counts:
            raise KeyError(f"unknown histogram bucket {bucket}")
        if weight < 0:
            raise ValueError(f"histogram weight must be non-negative, got {weight}")
        self._counts[bucket] += weight

    @property
    def counts(self) -> Dict[int, int]:
        """A copy of the bucket -> count mapping."""
        return dict(self._counts)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def fractions(self) -> Dict[int, float]:
        """Bucket -> fraction of the total weight (all zeros if empty)."""
        total = self.total
        if total == 0:
            return {bucket: 0.0 for bucket in self._counts}
        return {bucket: count / total for bucket, count in self._counts.items()}

    def reset(self) -> None:
        for bucket in self._counts:
            self._counts[bucket] = 0


class WindowedRate:
    """Sliding-window rate estimator.

    Samples are ``(time_ps, amount)`` pairs; :meth:`rate` reports the total
    amount observed inside the trailing window divided by the window length.
    Used for average-bandwidth and average-latency style measurements where
    the paper's meters react to recent behaviour rather than the whole run.
    """

    def __init__(self, window_ps: int) -> None:
        if window_ps <= 0:
            raise ValueError(f"window must be positive, got {window_ps}")
        self.window_ps = window_ps
        self._samples: Deque[Tuple[int, float]] = deque()
        self._window_total = 0.0
        self._lifetime_total = 0.0

    def add(self, time_ps: int, amount: float) -> None:
        # _evict inlined: add() runs once per completed transaction.
        samples = self._samples
        samples.append((time_ps, amount))
        self._window_total += amount
        self._lifetime_total += amount
        horizon = time_ps - self.window_ps
        while samples[0][0] < horizon:
            __, old = samples.popleft()
            self._window_total -= old

    def _evict(self, now_ps: int) -> None:
        horizon = now_ps - self.window_ps
        while self._samples and self._samples[0][0] < horizon:
            __, amount = self._samples.popleft()
            self._window_total -= amount

    def rate(self, now_ps: int) -> float:
        """Amount per picosecond over the trailing window ending at ``now_ps``."""
        self._evict(now_ps)
        return self._window_total / self.window_ps

    def window_total(self, now_ps: int) -> float:
        """Total amount inside the trailing window ending at ``now_ps``."""
        self._evict(now_ps)
        return self._window_total

    def window_mean(self, now_ps: int) -> float:
        """Mean sample value inside the trailing window (0.0 when empty)."""
        self._evict(now_ps)
        if not self._samples:
            return 0.0
        return self._window_total / len(self._samples)

    @property
    def lifetime_total(self) -> float:
        return self._lifetime_total

    def sample_count(self, now_ps: int) -> int:
        self._evict(now_ps)
        return len(self._samples)


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a list of samples.

    ``fraction`` is in ``[0, 1]``.  An empty sample list returns 0.0, which is
    convenient for reporting on cores that issued no traffic.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]
