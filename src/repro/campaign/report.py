"""The unified reporting layer: one table formatter for every grid of runs.

Before this module existed every surface rendered its own tables: ``repro
grid`` printed bandwidth plus failing cores and nothing else,
``scripts/generate_experiments.py`` hand-rolled markdown, and the campaign
report did not exist.  This module is the single place where a mapping of
``label -> ExperimentResult`` becomes a table:

* a **column registry** (:data:`KNOWN_COLUMNS`) of named, declarative columns
  — bandwidth, row-hit rate, average latency, per-core minimum/mean NPI
  (expanded to one column per critical core, failures flagged), failing
  cores, deadline verdict — that campaign files reference by name;
* a **check registry** (:data:`KNOWN_CHECKS`) binding declared campaign
  claims to the executable shape checks in :mod:`repro.analysis.paper`;
* renderers to markdown (``format_points_table``) and plain JSON payloads
  (``points_payload``), shared by ``repro grid``, ``repro campaign`` and the
  experiment-regeneration script.

The registries take plain data in and give plain data out, so a campaign
file can declare its expected report shape and the CI schema check can
reject a typo'd column or check name without running anything.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import qos_satisfied
from repro.analysis.paper import (
    ClaimCheck,
    check_fig7_priority_escalation,
    check_fig8_bandwidth_ordering,
    check_policy_failures,
    summarize_checks,
)
from repro.system.experiment import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports us)
    from repro.campaign.scheduler import CampaignResult
    from repro.campaign.spec import SubGrid

#: NPI below this is a missed performance target (the paper's pass line).
NPI_TARGET = 1.0

#: A grid point ready for reporting/checking: the dotted-path settings that
#: produced it, its display label, and the measured result.
Point = Tuple[Mapping[str, Any], str, ExperimentResult]


# --------------------------------------------------------------------------- #
# Column registry
# --------------------------------------------------------------------------- #
def _core_npi_cells(
    values: Mapping[str, float], cores: Sequence[str], flag_failures: bool
) -> List[str]:
    cells = []
    for core in cores:
        value = values.get(core)
        if value is None:
            cells.append("-")
        else:
            flag = "*" if flag_failures and value < NPI_TARGET else ""
            cells.append(f"{value:.2f}{flag}")
    return cells


def _col_bandwidth(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return [f"{result.dram_bandwidth_gb_per_s():.2f}"]


def _col_row_hit(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return [f"{result.dram_row_hit_rate * 100:.1f}%"]


def _col_latency(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return [f"{result.average_latency_ps / 1000.0:.1f}"]


def _col_served(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return [str(result.served_transactions)]


def _col_min_npi(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return _core_npi_cells(result.min_core_npi, cores, flag_failures=True)


def _col_mean_npi(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return _core_npi_cells(result.mean_core_npi, cores, flag_failures=False)


def _col_failing(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return [", ".join(result.failing_cores()) or "none"]


def _deadline_met(result: ExperimentResult, cores: Sequence[str]) -> bool:
    """Whether every listed core held its performance target (the one
    predicate behind both the markdown cell and the JSON payload)."""
    return all(result.min_core_npi.get(core, 0.0) >= NPI_TARGET for core in cores)


def _col_deadline(result: ExperimentResult, cores: Sequence[str]) -> List[str]:
    return ["met" if _deadline_met(result, cores) else "MISSED"]


def _headers_scalar(title: str) -> Callable[[Sequence[str]], List[str]]:
    return lambda cores: [title]


def _headers_per_core(prefix: str) -> Callable[[Sequence[str]], List[str]]:
    return lambda cores: [f"{prefix} {core}" for core in cores]


@dataclass(frozen=True)
class Column:
    """One registered report column: headers, formatted cells, raw value.

    ``headers``/``cells`` drive the markdown table (per-core columns expand
    to one header/cell per critical core); ``payload`` yields the column's
    JSON key and *raw* value, so both renderers share one dispatch table and
    a column added here automatically appears in every output format.
    """

    headers: Callable[[Sequence[str]], List[str]]
    cells: Callable[[ExperimentResult, Sequence[str]], List[str]]
    payload: Callable[[ExperimentResult, Sequence[str]], Tuple[str, Any]]


#: column name -> :class:`Column`.  Campaign files reference these by name;
#: unknown names are schema errors.
KNOWN_COLUMNS: Dict[str, Column] = {
    "bandwidth": Column(
        _headers_scalar("bandwidth (GB/s)"),
        _col_bandwidth,
        lambda result, cores: ("bandwidth_gb_per_s", result.dram_bandwidth_gb_per_s()),
    ),
    "row_hit": Column(
        _headers_scalar("row-hit"),
        _col_row_hit,
        lambda result, cores: ("row_hit_rate", result.dram_row_hit_rate),
    ),
    "latency": Column(
        _headers_scalar("avg latency (ns)"),
        _col_latency,
        lambda result, cores: ("average_latency_ns", result.average_latency_ps / 1000.0),
    ),
    "served": Column(
        _headers_scalar("served"),
        _col_served,
        lambda result, cores: ("served_transactions", result.served_transactions),
    ),
    "min_npi": Column(
        _headers_per_core("min NPI"),
        _col_min_npi,
        lambda result, cores: (
            "min_npi", {core: result.min_core_npi.get(core) for core in cores}
        ),
    ),
    "mean_npi": Column(
        _headers_per_core("mean NPI"),
        _col_mean_npi,
        lambda result, cores: (
            "mean_npi", {core: result.mean_core_npi.get(core) for core in cores}
        ),
    ),
    "failing": Column(
        _headers_scalar("failing cores"),
        _col_failing,
        lambda result, cores: ("failing_cores", result.failing_cores()),
    ),
    "deadline": Column(
        _headers_scalar("deadline"),
        _col_deadline,
        lambda result, cores: ("deadline_met", _deadline_met(result, cores)),
    ),
}

#: Columns used when a sub-grid (or the ``grid`` command) declares none.
DEFAULT_COLUMNS = ("bandwidth", "latency", "min_npi", "failing", "deadline")


def table_header(columns: Sequence[str], cores: Sequence[str]) -> List[str]:
    """The expanded header row for a column list (``point`` first)."""
    header = ["point"]
    for column in columns:
        header.extend(KNOWN_COLUMNS[column].headers(cores))
    return header


def table_rows(
    results: Mapping[str, ExperimentResult],
    columns: Sequence[str],
    cores: Sequence[str],
) -> List[List[str]]:
    """One expanded row per labelled result, in mapping order."""
    rows = []
    for label, result in results.items():
        row = [label]
        for column in columns:
            row.extend(KNOWN_COLUMNS[column].cells(result, cores))
        rows.append(row)
    return rows


def render_markdown_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_points_table(
    results: Mapping[str, ExperimentResult],
    columns: Sequence[str] = DEFAULT_COLUMNS,
    cores: Sequence[str] = (),
) -> str:
    """Render labelled results as a markdown table with registry columns."""
    return render_markdown_table(
        table_header(columns, cores), table_rows(results, columns, cores)
    )


def points_payload(
    results: Mapping[str, ExperimentResult],
    columns: Sequence[str] = DEFAULT_COLUMNS,
    cores: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """The same table as plain JSON rows (``--format json``).

    Numeric cells stay numeric: each row maps the expanded header name to
    the raw metric value rather than its formatted string.
    """
    payload = []
    for label, result in results.items():
        row: Dict[str, Any] = {"point": label}
        for column in columns:
            key, value = KNOWN_COLUMNS[column].payload(result, cores)
            row[key] = value
        payload.append(row)
    return payload


def points_csv(
    results: Mapping[str, ExperimentResult],
    columns: Sequence[str] = DEFAULT_COLUMNS,
    cores: Sequence[str] = (),
) -> str:
    """The same table as CSV with raw numeric cells (for replotting).

    Rows mirror :func:`points_payload`; mapping-valued columns (the per-core
    NPI columns) flatten to dotted headers (``min_npi.display``) and
    list-valued cells (failing cores) join with ``;`` so every cell is a
    scalar a plotting tool can ingest.
    """
    header: List[str] = ["point"]
    flattened: List[Dict[str, Any]] = []
    for row in points_payload(results, columns, cores):
        flat: Dict[str, Any] = {}
        for key, value in row.items():
            if isinstance(value, Mapping):
                for sub, subvalue in value.items():
                    flat[f"{key}.{sub}"] = subvalue
            elif isinstance(value, (list, tuple)):
                flat[key] = ";".join(str(item) for item in value)
            else:
                flat[key] = value
        for key in flat:
            if key not in header:
                header.append(key)
        flattened.append(flat)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for flat in flattened:
        writer.writerow([flat.get(key, "") for key in header])
    return buffer.getvalue()


# --------------------------------------------------------------------------- #
# Check registry: declared claims -> executable shape checks
# --------------------------------------------------------------------------- #
def _points_by_setting(points: Sequence[Point], setting: str) -> Dict[Any, ExperimentResult]:
    """Map one dotted-path setting's value to its result.

    Only meaningful when the setting uniquely identifies a point (it is the
    sub-grid's only axis); duplicated values keep the first occurrence so
    the paper checks — written for single-axis policy grids — stay usable.
    """
    mapping: Dict[Any, ExperimentResult] = {}
    for settings, _, result in points:
        if setting in settings and settings[setting] not in mapping:
            mapping[settings[setting]] = result
    return mapping


def _check_policy_failures(points, scenario, params) -> List[ClaimCheck]:
    return check_policy_failures(_points_by_setting(points, "policy"), scenario)


def _check_bandwidth_ordering(points, scenario, params) -> List[ClaimCheck]:
    return check_fig8_bandwidth_ordering(
        _points_by_setting(points, "policy"),
        frfcfs_margin=float(params.get("frfcfs_margin", 0.05)),
    )


def _check_qos_preserved(points, scenario, params) -> List[ClaimCheck]:
    """Fig. 9 shape against the sub-grid's *own* scenario.

    ``analysis.paper.check_fig9_qos_preserved`` hard-codes case A's critical
    cores; campaigns may bind this check to any scenario, so the same shape
    is evaluated here over ``scenario.critical_cores``.
    """
    results = _points_by_setting(points, "policy")
    critical = list(scenario.critical_cores)
    experiment = {"case_a": "fig9"}.get(scenario.name, scenario.name)
    checks: List[ClaimCheck] = []
    if "priority_rowbuffer" in results:
        checks.append(
            ClaimCheck(
                experiment=experiment,
                description="QoS-RB causes no QoS degradation",
                passed=qos_satisfied(results["priority_rowbuffer"], cores=critical),
                detail=f"failing: {results['priority_rowbuffer'].failing_cores() or 'none'}",
            )
        )
    if "fr_fcfs" in results:
        failing = [
            core for core in results["fr_fcfs"].failing_cores() if core in critical
        ]
        checks.append(
            ClaimCheck(
                experiment=experiment,
                description="FR-FCFS degrades at least one critical core",
                passed=bool(failing),
                detail=f"failing critical cores: {failing or 'none'}",
            )
        )
    return checks


def _check_priority_escalation(points, scenario, params) -> List[ClaimCheck]:
    axis = params.get("axis", "platform.sim.dram.io_freq_mhz")
    sweep: Dict[float, ExperimentResult] = {}
    for value, result in _points_by_setting(points, axis).items():
        try:
            sweep[float(value)] = result
        except (TypeError, ValueError):
            pass
    # A typo'd axis name or a non-numeric axis must degrade to a failed
    # check with an actionable detail, not crash the report after the whole
    # campaign has already simulated.
    if len(sweep) < 2:
        return [
            ClaimCheck(
                experiment=getattr(scenario, "name", "priority_escalation"),
                description="priority escalation across the declared frequency axis",
                passed=False,
                detail=f"axis '{axis}' matched {len(sweep)} numeric point(s); "
                "need at least 2 (check the check's 'axis' param against the "
                "sub-grid's axes)",
            )
        ]
    return check_fig7_priority_escalation(sweep, params["dma"])


def _select_points(points: Sequence[Point], params: Mapping[str, Any]) -> List[Point]:
    """Points whose settings match every ``where`` entry of a generic check."""
    where = params.get("where", {})
    return [
        point for point in points
        if all(point[0].get(path) == value for path, value in where.items())
    ]


def _failing_by_label(
    selected: Sequence[Point], critical: Sequence[str]
) -> Dict[str, List[str]]:
    """Critical-core failures per point label (the generic checks' evidence)."""
    failing: Dict[str, List[str]] = {}
    for _, label, result in selected:
        failed = [core for core in result.failing_cores() if core in critical]
        if failed:
            failing[label] = failed
    return failing


def _check_meets_targets(points, scenario, params) -> List[ClaimCheck]:
    """Generic: every selected point keeps all critical cores at target."""
    selected = _select_points(points, params)
    failing = _failing_by_label(selected, scenario.critical_cores)
    return [
        ClaimCheck(
            experiment=scenario.name,
            description=params.get(
                "description", "selected points meet every critical core's target"
            ),
            passed=bool(selected) and not failing,
            detail=f"{len(selected)} point(s), failing: {failing or 'none'}",
        )
    ]


def _check_some_point_fails(points, scenario, params) -> List[ClaimCheck]:
    """Generic: at least one selected point misses a critical-core target."""
    selected = _select_points(points, params)
    failing = _failing_by_label(selected, scenario.critical_cores)
    return [
        ClaimCheck(
            experiment=scenario.name,
            description=params.get(
                "description", "at least one selected point misses a critical-core target"
            ),
            passed=bool(failing),
            detail=f"{len(selected)} point(s), failing: {failing or 'none'}",
        )
    ]


#: check kind -> fn(points, scenario, params) -> [ClaimCheck].  Campaign
#: files reference these by name; unknown kinds are schema errors.
KNOWN_CHECKS: Dict[
    str, Callable[[Sequence[Point], Any, Mapping[str, Any]], List[ClaimCheck]]
] = {
    "policy_failures": _check_policy_failures,
    "bandwidth_ordering": _check_bandwidth_ordering,
    "qos_preserved": _check_qos_preserved,
    "priority_escalation": _check_priority_escalation,
    "meets_targets": _check_meets_targets,
    "some_point_fails": _check_some_point_fails,
}

#: Params a check cannot run without.  Validated at spec-construction time
#: (``CheckSpec``), so a campaign file missing one fails schema validation
#: instead of crashing at report time after the whole campaign simulated.
CHECK_REQUIRED_PARAMS: Dict[str, Tuple[str, ...]] = {
    "priority_escalation": ("dma",),
}


#: One evaluated check outcome, tagged with the declared kind that produced
#: it — JSON consumers map outcomes back to the campaign file through it.
TaggedCheck = Tuple[str, ClaimCheck]


def run_subgrid_checks(
    subgrid: "SubGrid", scenario: Any, points: Sequence[Point]
) -> List[TaggedCheck]:
    """Evaluate every check a sub-grid declares against its measured points."""
    checks: List[TaggedCheck] = []
    for check in subgrid.checks:
        for outcome in KNOWN_CHECKS[check.kind](points, scenario, check.params):
            checks.append((check.kind, outcome))
    return checks


# --------------------------------------------------------------------------- #
# Campaign-level report
# --------------------------------------------------------------------------- #
def subgrid_report_md(
    subgrid: "SubGrid",
    scenario: Any,
    points: Sequence[Point],
    checks: Optional[List[TaggedCheck]] = None,
    quarantined: Sequence[Any] = (),
) -> str:
    """One sub-grid's markdown section: table, claims, check outcomes.

    ``checks`` accepts pre-evaluated outcomes (the campaign report evaluates
    each sub-grid's checks once and shares them); by default they are
    evaluated here.  ``quarantined`` lists points the run gave up on after
    exhausting their retry budget (see :mod:`repro.runner.executor`).

    The rendered section is a pure function of the measurements — no
    timings, cache counters or other run telemetry appear — so a resumed
    campaign reproduces a killed campaign's report byte for byte.
    Telemetry lives on the console summary and in the manifest ``stats``.
    """
    results = {label: result for _, label, result in points}
    columns = list(subgrid.columns) or list(DEFAULT_COLUMNS)
    cores = list(scenario.critical_cores)
    lines = [f"### {subgrid.name} — {subgrid.title or scenario.name}", ""]
    lines.append(format_points_table(results, columns, cores))
    if subgrid.claims:
        lines.append("")
        lines.append("Declared claims:")
        lines.extend(f"- {claim}" for claim in subgrid.claims)
    if checks is None:
        checks = run_subgrid_checks(subgrid, scenario, points)
    if checks:
        lines.append("")
        lines.extend(f"- {check}" for _, check in checks)
        summary = summarize_checks([check for _, check in checks])
        lines.append(
            f"- checks: {summary['passed']} passed, {summary['failed']} failed"
        )
    if quarantined:
        lines.append("")
        lines.append("Quarantined points (no result after exhausting retries):")
        lines.extend(
            f"- {entry.label}: {entry.error} ({entry.attempts} attempt(s))"
            for entry in quarantined
        )
    return "\n".join(lines)


def subgrid_report_payload(
    subgrid: "SubGrid",
    scenario: Any,
    points: Sequence[Point],
    checks: Optional[List[TaggedCheck]] = None,
    quarantined: Sequence[Any] = (),
) -> Dict[str, Any]:
    results = {label: result for _, label, result in points}
    columns = list(subgrid.columns) or list(DEFAULT_COLUMNS)
    cores = list(scenario.critical_cores)
    if checks is None:
        checks = run_subgrid_checks(subgrid, scenario, points)
    return {
        "name": subgrid.name,
        "title": subgrid.title,
        "scenario": scenario.name,
        "rows": points_payload(results, columns, cores),
        "claims": list(subgrid.claims),
        "checks": [
            {
                "kind": kind,
                "description": check.description,
                "experiment": check.experiment,
                "passed": check.passed,
                "detail": check.detail,
            }
            for kind, check in checks
        ],
        "quarantined": [
            {
                "label": entry.label,
                "error": entry.error,
                "attempts": entry.attempts,
            }
            for entry in quarantined
        ],
    }


def campaign_report_md(outcome: "CampaignResult") -> str:
    """The full campaign report: per-sub-grid sections plus a summary.

    Deterministic by construction: only measurements, check outcomes and
    quarantine records appear.  Run telemetry (timings, cache hits, jobs)
    stays on the console and in the manifest, so the report a resumed
    campaign renders is byte-identical to the one an uninterrupted run
    would have produced.
    """
    campaign = outcome.campaign
    lines = [f"## Campaign {campaign.name}", ""]
    if campaign.description:
        lines.extend([campaign.description, ""])
    for subgrid in outcome.subgrids():
        lines.append(
            subgrid_report_md(
                subgrid,
                outcome.scenarios[subgrid.name],
                outcome.points[subgrid.name],
                checks=outcome.checks(subgrid.name),
                quarantined=outcome.quarantined.get(subgrid.name, ()),
            )
        )
        lines.append("")
    lines.append("### Campaign summary")
    lines.append("")
    header = ["sub-grid", "points", "quarantined", "checks"]
    rows = []
    total_checks = {"passed": 0, "failed": 0}
    for subgrid in outcome.subgrids():
        summary = summarize_checks([check for _, check in outcome.checks(subgrid.name)])
        total_checks["passed"] += summary["passed"]
        total_checks["failed"] += summary["failed"]
        rows.append(
            [
                subgrid.name,
                str(len(outcome.points[subgrid.name])),
                str(len(outcome.quarantined.get(subgrid.name, ()))),
                f"{summary['passed']} passed, {summary['failed']} failed",
            ]
        )
    lines.append(render_markdown_table(header, rows))
    lines.append("")
    lines.append(
        f"<!-- campaign checks: {total_checks['passed']} passed, "
        f"{total_checks['failed']} failed -->"
    )
    return "\n".join(lines)


def campaign_report_payload(outcome: "CampaignResult") -> Dict[str, Any]:
    """The full campaign report as a plain JSON payload.

    Deterministic like :func:`campaign_report_md`: run telemetry is
    deliberately absent (``repro campaign run`` prints it to the console,
    and the store manifest records it under ``stats``).
    """
    campaign = outcome.campaign
    return {
        "campaign": campaign.name,
        "description": campaign.description,
        "subgrids": [
            subgrid_report_payload(
                subgrid,
                outcome.scenarios[subgrid.name],
                outcome.points[subgrid.name],
                checks=outcome.checks(subgrid.name),
                quarantined=outcome.quarantined.get(subgrid.name, ()),
            )
            for subgrid in outcome.subgrids()
        ],
    }
