"""The campaign scheduler: every sub-grid through one pool, one spawn cost.

Running a campaign sub-grid by sub-grid wastes the two resources the warm
worker pool exists to save: each sweep would pay its own scheduling
round-trips, and a short sub-grid (Fig. 9 is two runs) cannot load-balance
against a long one (Fig. 7 is five).  :class:`CampaignScheduler` instead
flattens *all* sub-grids into one stream of :class:`~repro.runner.RunSpec`
points, orders it by estimated cost (heaviest first, so stragglers start
early), and feeds the whole stream through a single
:func:`~repro.runner.run_sweep` call on one shared
:class:`~repro.runner.WorkerPool` — one ``pool_startup`` phase for the whole
campaign.

The orchestrator's key-level deduplication and result cache make the
scheduler *cache-aware for free*: a point two figures share (Fig. 8 and
Fig. 9 both run ``priority_rowbuffer`` on case A) executes once, and a point
already materialized in ``--cache-dir`` is never re-simulated.  The
``observer`` landing hook attributes every point's outcome back to the
sub-grid it came from, so :class:`CampaignResult` carries per-sub-grid
phase-split :class:`~repro.runner.SweepStats` alongside the campaign totals.

Determinism: the cost ordering only changes *when* a point executes, never
what it computes — results are reordered back into each sub-grid's declared
point order, and ``tests/test_campaign_scheduler.py`` asserts bit-identical
parity against running every sub-grid through the plain sweep path.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.campaign.report import Point
from repro.campaign.spec import Campaign, CampaignError, SubGrid
from repro.runner import (
    Executor,
    FailurePolicy,
    ResultCache,
    RunSpec,
    SweepStats,
    WorkerPool,
    estimate_cost,
    run_sweep,
)
from repro.scenario import Scenario
from repro.system.experiment import ExperimentResult, RunTimings

if TYPE_CHECKING:  # pragma: no cover - type-only import (store imports report)
    from repro.obs import TraceSession
    from repro.store import Provenance, ResultsStore, StoreMemo

logger = logging.getLogger("repro.campaign")


@dataclass(frozen=True)
class ScheduledRun:
    """One planned point: which sub-grid it belongs to and what it runs."""

    subgrid: str
    label: str
    settings: Dict[str, Any]
    spec: RunSpec
    cost: float


@dataclass(frozen=True)
class QuarantinedRun:
    """One point the run gave up on after exhausting its retry budget.

    Carries everything the report and the store manifest need to account
    for the hole: the point's identity (settings, label, cache key — the
    key is still valid, so a later resume that succeeds lands in the same
    cache slot) plus the failure evidence.
    """

    settings: Dict[str, Any]
    label: str
    cache_key: str
    attempts: int
    error: str
    #: The point's resolution-free spec key — recorded so the manifest stays
    #: index-rebuildable, but a quarantined entry is never served as a reuse
    #: hit (the index refuses non-``ok`` statuses).
    memo_key: str = ""


@dataclass
class CampaignResult:
    """Everything a campaign run produced, grouped back per sub-grid."""

    campaign: Campaign
    #: sub-grid name -> points in the sub-grid's declared order.
    points: Dict[str, List[Point]] = field(default_factory=dict)
    #: Resolved scenario per sub-grid (drives report columns/critical cores).
    scenarios: Dict[str, Scenario] = field(default_factory=dict)
    #: Campaign totals from the single flattened sweep.
    stats: SweepStats = field(default_factory=SweepStats)
    #: Per-sub-grid counters and phase splits, attributed by the observer.
    subgrid_stats: Dict[str, SweepStats] = field(default_factory=dict)
    #: sub-grid name -> each point's result-cache key, in point order (what
    #: the results store records so reports can skip resolution entirely).
    #: Aligned with ``points`` — quarantined points appear in neither.
    cache_keys: Dict[str, List[str]] = field(default_factory=dict)
    #: sub-grid name -> each point's resolution-free memo key, aligned with
    #: ``points``.  Recorded in the manifest so the store's point index can
    #: answer "has this spec ever run?" for later overlapping campaigns
    #: without resolving a scenario.
    memo_keys: Dict[str, List[str]] = field(default_factory=dict)
    #: sub-grid name -> points that exhausted their retry budget, in the
    #: sub-grid's declared point order.  Only present under a quarantining
    #: :class:`~repro.runner.FailurePolicy`; the default strict policy
    #: raises instead of producing an outcome with holes.
    quarantined: Dict[str, List[QuarantinedRun]] = field(default_factory=dict)

    #: Memoized check outcomes per sub-grid (checks are pure over the
    #: results, and the report renders them in several places — evaluate
    #: each sub-grid's declared checks exactly once per outcome).
    _check_cache: Dict[str, list] = field(default_factory=dict, repr=False, compare=False)

    def subgrids(self) -> List[SubGrid]:
        """The sub-grids that actually ran, in campaign order."""
        return [
            subgrid for subgrid in self.campaign.subgrids if subgrid.name in self.points
        ]

    def _require_ran(self, subgrid: str) -> None:
        if subgrid not in self.points:
            ran = ", ".join(self.points) or "none"
            raise CampaignError(
                f"sub-grid '{subgrid}' was not part of this run (ran: {ran})"
            )

    def results(self, subgrid: str) -> Dict[str, ExperimentResult]:
        """One sub-grid's results keyed by point label, in point order."""
        self._require_ran(subgrid)
        return {label: result for _, label, result in self.points[subgrid]}

    def checks(self, subgrid: str) -> list:
        """One sub-grid's (kind, outcome) check pairs (evaluated once, cached)."""
        self._require_ran(subgrid)
        cached = self._check_cache.get(subgrid)
        if cached is None:
            from repro.campaign.report import run_subgrid_checks

            cached = run_subgrid_checks(
                self.campaign.subgrid(subgrid),
                self.scenarios[subgrid],
                self.points[subgrid],
            )
            self._check_cache[subgrid] = cached
        return cached


class CampaignScheduler:
    """Plan and execute a campaign's sub-grids on one shared worker pool."""

    def __init__(
        self,
        campaign: Campaign,
        duration_ms: Optional[float] = None,
        traffic_scale: Optional[float] = None,
        plugin_modules: Sequence[str] = (),
    ) -> None:
        self.campaign = campaign
        self.duration_ms = duration_ms
        self.traffic_scale = traffic_scale
        self.plugin_modules = tuple(plugin_modules)

    def _selected(self, subgrids: Optional[Sequence[str]]) -> List[SubGrid]:
        if subgrids is None:
            return list(self.campaign.subgrids)
        # Deduplicate (a repeated --subgrid flag) so the plan and the stats
        # count every point once.
        return [self.campaign.subgrid(name) for name in dict.fromkeys(subgrids)]

    def _selection(self, subgrids: Optional[Sequence[str]]) -> Optional[Tuple[str, ...]]:
        """The deduplicated sub-grid selection as recorded in provenance."""
        if subgrids is None:
            return None
        return tuple(dict.fromkeys(subgrids))

    def fingerprint(self, subgrids: Optional[Sequence[str]] = None) -> str:
        """The results-store lookup key for this scheduler's effective run.

        Computed entirely from the campaign's dictionary form plus the
        scheduler's overrides — no scenario is resolved, no ``RunSpec`` is
        built — which is exactly what lets a warm ``campaign report`` find
        its manifest as a pure read.  Execution knobs that cannot change
        results (``jobs``, cache and store directories, output format) do
        not participate.
        """
        from repro.store import run_fingerprint

        return run_fingerprint(
            "campaign",
            self.campaign.to_dict(),
            duration_ms=self.duration_ms,
            traffic_scale=self.traffic_scale,
            selection=self._selection(subgrids),
            plugin_modules=self.plugin_modules,
        )

    def provenance(
        self, subgrids: Optional[Sequence[str]] = None, recorded_at: str = ""
    ) -> "Provenance":
        """The provenance block a store recording of this run carries.

        ``recorded_at`` is caller-supplied (the CLI stamps wall-clock time)
        so scheduling stays a pure function of its inputs.
        """
        from repro.store import Provenance, spec_hash

        return Provenance(
            kind="campaign",
            name=self.campaign.name,
            spec_hash=spec_hash(self.campaign.to_dict()),
            created_at=recorded_at,
            duration_ms=self.duration_ms,
            traffic_scale=self.traffic_scale,
            selection=self._selection(subgrids),
            plugin_modules=self.plugin_modules,
        )

    def plan(
        self,
        subgrids: Optional[Sequence[str]] = None,
        memo: Optional["StoreMemo"] = None,
    ) -> List[ScheduledRun]:
        """Flatten the selected sub-grids into one cost-ordered run stream.

        Heaviest points first (stable for equal costs, so the plan is
        deterministic for a given campaign): when the stream hits the pool,
        long runs start immediately and short ones fill the tail instead of
        leaving workers idle behind a late straggler.

        With a ``memo`` (a store's point-index view), points the index will
        serve are planned at zero cost *without resolving their scenarios*:
        the probe needs only the spec's resolution-free memo key, reuse is
        instant next to a simulation, and skipping the estimate here is
        what keeps the reuse path resolution-free end to end.
        """
        scheduled: List[ScheduledRun] = []
        with obs.span("campaign.plan", campaign=self.campaign.name) as plan_span:
            reusable_count = 0
            for subgrid in self._selected(subgrids):
                specs = subgrid.run_specs(
                    default_duration_ms=self.campaign.duration_ms,
                    default_traffic_scale=self.campaign.traffic_scale,
                    duration_ms=self.duration_ms,
                    traffic_scale=self.traffic_scale,
                    plugin_modules=self.plugin_modules,
                )
                for point, spec in zip(subgrid.points(), specs):
                    if memo is not None:
                        with obs.span("campaign.memo_probe", subgrid=subgrid.name):
                            reusable = memo.probe(spec)
                    else:
                        reusable = False
                    reusable_count += 1 if reusable else 0
                    scheduled.append(
                        ScheduledRun(
                            subgrid=subgrid.name,
                            label=spec.label or subgrid.name,
                            settings=point,
                            spec=spec,
                            cost=0.0 if reusable else estimate_cost(spec),
                        )
                    )
            scheduled.sort(key=lambda run: -run.cost)
            plan_span.set(points=len(scheduled), reusable=reusable_count)
        logger.debug(
            "planned campaign '%s': %d point(s), %d reusable from store",
            self.campaign.name,
            len(scheduled),
            reusable_count,
        )
        return scheduled

    def dry_run(
        self,
        subgrids: Optional[Sequence[str]] = None,
        cache: Optional[ResultCache] = None,
        store: Optional["ResultsStore"] = None,
    ) -> Dict[str, Dict[str, int]]:
        """Classify the plan without running anything.

        Per sub-grid (in campaign order): how many points would simulate,
        how many would come back from the store's point index, and how many
        the result cache or in-sweep deduplication would serve.  Store
        probes check that the recorded result blob exists but never load
        it; cache probes — which need the point's cache key, i.e. one
        scenario resolution per distinct point — only happen when a cache
        is handed in and the index missed.
        """
        memo = store.memo() if store is not None else None
        summary: Dict[str, Dict[str, int]] = {
            subgrid.name: {"points": 0, "to_simulate": 0, "reused": 0, "cache_hits": 0}
            for subgrid in self._selected(subgrids)
        }
        first_bucket: Dict[str, str] = {}
        for run in self.plan(subgrids, memo=memo):
            counts = summary[run.subgrid]
            counts["points"] += 1
            bucket = first_bucket.get(run.spec.memo_key())
            if bucket is None:
                if memo is not None and memo.probe(run.spec):
                    bucket = "reused"
                elif cache is not None and run.spec.key() in cache:
                    bucket = "cache_hits"
                else:
                    bucket = "to_simulate"
                first_bucket[run.spec.memo_key()] = bucket
            elif bucket == "to_simulate":
                # A duplicate of a cold point executes once; the duplicates
                # land as in-sweep dedup hits, which the stats count as
                # cache hits.
                bucket = "cache_hits"
            counts[bucket] += 1
        return summary

    def run(
        self,
        subgrids: Optional[Sequence[str]] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        store: Optional["ResultsStore"] = None,
        recorded_at: str = "",
        executor: Optional[Executor] = None,
        failure_policy: Optional[FailurePolicy] = None,
        reuse: bool = True,
        trace: Optional["TraceSession"] = None,
    ) -> CampaignResult:
        """Execute the plan through one ``run_sweep`` call and regroup.

        ``pool``/``jobs``/``cache``/``cache_dir``/``progress``/``executor``/
        ``failure_policy`` have :func:`~repro.runner.run_sweep` semantics;
        the whole campaign is one sweep, so a cold pool spawns exactly once
        and ``pool_startup_s`` appears once in the campaign totals (and
        never in the per-sub-grid stats, which only carry work attributable
        to their own points).

        ``store`` is the results-store hook: when given, the run's rendered
        artifacts, cache keys, check outcomes and provenance (stamped
        ``recorded_at``, a caller-supplied timestamp) are recorded under
        :meth:`fingerprint` the moment the results exist — the single write
        that makes every later report against this run a pure read.  While
        the sweep is in flight the store also carries a *partial journal*
        for this fingerprint (progress counters, the cache directory), so
        ``repro campaign run --resume`` can tell a crashed campaign from
        one that never started; a successful recording deletes it.

        Under a quarantining ``failure_policy`` a point that exhausts its
        retries lands in ``CampaignResult.quarantined`` instead of aborting
        the campaign; checks and report tables cover the surviving points.

        With a ``store`` and ``reuse=True`` (the default), the plan is
        intersected against the store's point index before dispatch: every
        point some earlier campaign recorded is spliced in from its
        recorded result blob — zero scenario resolutions, zero simulator
        work — and only the delta executes.  The bytes are identical to a
        full run (the blob *is* the serialized result), and the new
        manifest's reused points reference the existing blobs, so the
        recording dedups to nothing new.  Quarantined, tampered or
        garbage-collected recordings read as misses and re-simulate.

        ``trace`` is an active :class:`~repro.obs.TraceSession` (what
        ``campaign run --trace`` creates): after the sweep, and *before*
        the final manifest record, it is finalized against ``store`` so
        the merged trace artifacts are recorded and referenced from the
        manifest's ``stats`` — tracing never changes results, reports,
        cache keys or the fingerprint.
        """
        memo = store.memo() if (store is not None and reuse) else None
        plan = self.plan(subgrids, memo=memo)
        selected = self._selected(subgrids)
        fingerprint = self.fingerprint(subgrids) if store is not None else ""
        outcome = CampaignResult(campaign=self.campaign)
        for subgrid in selected:
            outcome.scenarios[subgrid.name] = subgrid.resolved_scenario()
            outcome.subgrid_stats[subgrid.name] = SweepStats(
                total=0, jobs=pool.jobs if pool is not None else jobs
            )

        owner: List[Tuple[str, str, Dict[str, Any]]] = [
            (run.subgrid, run.label, run.settings) for run in plan
        ]
        if obs.tracing():
            # Point metadata instants: the flat sweep index -> sub-grid map
            # `repro trace` joins execution spans against.
            for index, run in enumerate(plan):
                obs.instant(
                    "campaign.point", index=index, subgrid=run.subgrid, label=run.label
                )
        landed_count = [0]

        def observer(
            index: int,
            result: ExperimentResult,
            timings: Optional[RunTimings],
            from_cache: bool,
            source: str,
        ) -> None:
            name = owner[index][0]
            stats = outcome.subgrid_stats[name]
            stats.total += 1
            if source == "reused":
                obs.instant("campaign.splice", index=index, subgrid=name)
                stats.reused_points += 1
            elif from_cache:
                stats.cache_hits += 1
            else:
                stats.executed += 1
            if timings is not None:
                stats.add_timings(timings)
            landed_count[0] += 1
            if store is not None:
                store.record_partial(
                    fingerprint,
                    campaign=self.campaign.name,
                    total=len(plan),
                    recorded=landed_count[0],
                    cache_dir=cache_dir
                    if cache_dir is not None
                    else (str(cache.directory) if cache is not None else None),
                )

        logger.info(
            "running campaign '%s': %d point(s), jobs=%d",
            self.campaign.name,
            len(plan),
            pool.jobs if pool is not None else jobs,
        )
        with obs.span(
            "campaign.sweep", campaign=self.campaign.name, points=len(plan)
        ):
            results, stats = run_sweep(
                [run.spec for run in plan],
                jobs=jobs,
                cache=cache,
                cache_dir=cache_dir,
                pool=pool,
                progress=progress,
                observer=observer,
                executor=executor,
                failure_policy=failure_policy,
                memo=memo,
            )
        outcome.stats = stats

        # Per-sub-grid wall-clock is not separable out of one flattened,
        # possibly parallel sweep; report each sub-grid's *attributed work
        # time* (sum of its phase totals) as elapsed instead of leaving a
        # misleading 0.00s next to non-zero phases.
        for stats_entry in outcome.subgrid_stats.values():
            stats_entry.elapsed_s = sum(stats_entry.phases().values())

        # A quarantined point leaves its result slot as None; map those
        # slots back to their quarantine records so regrouping can tell a
        # recorded failure from an impossible hole.
        quarantined_by_index = {
            index: record
            for record in stats.quarantined
            for index in record.indices
        }

        # Regroup keyed by the point's *settings* (always unique within a
        # sub-grid), not its display label — pathological string axis values
        # can render two distinct points to the same label.
        by_subgrid: Dict[str, Dict[str, Point]] = {s.name: {} for s in selected}
        quarantine_map: Dict[Tuple[str, str], Any] = {}
        for index, ((name, label, settings), result) in enumerate(zip(owner, results)):
            if result is None:
                record = quarantined_by_index.get(index)
                if record is None:  # pragma: no cover - run_sweep always fills
                    raise CampaignError(
                        f"sub-grid '{name}' point '{label}' produced no result"
                    )
                quarantine_map[(name, _point_key(settings))] = record
                continue
            by_subgrid[name][_point_key(settings)] = (settings, label, result)
        # Regroup in each sub-grid's declared point order, not plan order.
        # Every spec's cache key is memoized by now — computed during the
        # sweep's dedup pass, or seeded from the index for reused points —
        # so reading it here never resolves a scenario.
        key_by_point = {
            (run.subgrid, _point_key(run.settings)): run.spec.key() for run in plan
        }
        memo_key_by_point = {
            (run.subgrid, _point_key(run.settings)): run.spec.memo_key()
            for run in plan
        }
        label_by_point = {
            (run.subgrid, _point_key(run.settings)): run.label for run in plan
        }
        for subgrid in selected:
            ordered: List[Point] = []
            keys: List[str] = []
            memo_keys: List[str] = []
            holes: List[QuarantinedRun] = []
            for point in subgrid.points():
                spot = (subgrid.name, _point_key(point))
                record = quarantine_map.get(spot)
                if record is not None:
                    holes.append(
                        QuarantinedRun(
                            settings=dict(point),
                            label=label_by_point[spot],
                            cache_key=key_by_point[spot],
                            attempts=record.attempts,
                            error=record.error,
                            memo_key=memo_key_by_point[spot],
                        )
                    )
                    continue
                ordered.append(by_subgrid[subgrid.name][_point_key(point)])
                keys.append(key_by_point[spot])
                memo_keys.append(memo_key_by_point[spot])
            outcome.points[subgrid.name] = ordered
            outcome.cache_keys[subgrid.name] = keys
            outcome.memo_keys[subgrid.name] = memo_keys
            if holes:
                outcome.quarantined[subgrid.name] = holes
        if store is not None:
            # Trace finalization happens after the sweep and before the
            # manifest record: the merged journals become store artifacts,
            # and their references ride into the manifest's free-form
            # ``stats`` (the record itself is therefore not in its own
            # trace — an accepted, documented blind spot).
            extra_stats = None
            if trace is not None:
                extra_stats = trace.finalize(store)
                trace_info = extra_stats.get("trace", {})
                logger.info(
                    "trace recorded: %d span(s) across %d process(es)",
                    trace_info.get("spans", 0),
                    len(trace_info.get("processes", [])),
                )
            store.record_campaign(
                outcome,
                fingerprint=fingerprint,
                provenance=self.provenance(subgrids, recorded_at=recorded_at),
                extra_stats=extra_stats,
            )
            store.clear_partial(fingerprint)
            logger.info("campaign recorded under fingerprint %s", fingerprint)
        return outcome


def _point_key(settings: Dict[str, Any]) -> str:
    """Canonical identity of one point within its sub-grid."""
    return repr(sorted(settings.items()))
