"""The campaign catalog: bundled campaign files plus file-path references.

Bundled campaigns live as JSON files in ``repro/campaign/data/`` — the
``paper_figures`` campaign reproducing every figure of the paper's
evaluation, and the ``extended`` campaign promoting the non-paper scenarios
to first-class experiments — and are loaded lazily on first use.  The CLI
accepts filesystem paths wherever a campaign name is expected, mirroring the
scenario catalog.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.campaign.spec import Campaign, CampaignError, campaign_from_file
from repro.scenario import is_path_ref

#: Directory holding the bundled campaign files.
BUILTIN_CAMPAIGN_DIR = Path(__file__).resolve().parent / "data"

_builtin_cache: Dict[str, Campaign] = {}


def builtin_campaign_paths() -> Dict[str, Path]:
    """Name -> path for every bundled campaign file."""
    return {
        path.stem: path
        for path in sorted(BUILTIN_CAMPAIGN_DIR.glob("*.json"))
    }


def available_campaigns() -> Dict[str, Campaign]:
    """Every bundled campaign, by name."""
    return {name: _load_builtin(name) for name in builtin_campaign_paths()}


def _load_builtin(name: str) -> Campaign:
    cached = _builtin_cache.get(name)
    if cached is None:
        cached = campaign_from_file(builtin_campaign_paths()[name])
        if cached.name != name:
            raise CampaignError(
                f"bundled campaign file '{name}.json' declares name "
                f"'{cached.name}'; file stem and campaign name must match"
            )
        _builtin_cache[name] = cached
    return cached


def get_campaign(ref: Union[str, Path, Campaign]) -> Campaign:
    """Resolve a campaign reference: an object, a bundled name, or a file path."""
    if isinstance(ref, Campaign):
        return ref
    if isinstance(ref, Path):
        return campaign_from_file(ref)
    if not isinstance(ref, str):
        raise TypeError(f"campaign reference must be a name, path or Campaign, got {type(ref)!r}")
    builtins = builtin_campaign_paths()
    if ref in builtins:
        return _load_builtin(ref)
    if is_path_ref(ref):
        return campaign_from_file(ref)
    raise CampaignError(
        f"unknown campaign '{ref}' (bundled: {', '.join(builtins) or 'none'}; "
        "a path to a .json/.toml campaign file also works)"
    )


def describe_campaign(ref: Union[str, Path, Campaign]) -> str:
    """One-line summary used by ``repro campaign list``."""
    campaign = get_campaign(ref)
    return (
        f"{campaign.name:<18}{len(campaign.subgrids)} sub-grid(s) "
        f"[{', '.join(campaign.subgrid_names())}]  {campaign.description}"
    )
