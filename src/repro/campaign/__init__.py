"""Declarative experiment campaigns: named sub-grids, one scheduler, one report.

A :class:`Campaign` declares what a paper's evaluation *is* — named
sub-grids (``fig5``, ``fig7``, …), each binding a scenario, an axis set,
report columns and claims — as versioned, serializable data.  The
:class:`CampaignScheduler` flattens every sub-grid into one cost-ordered run
stream on a single shared worker pool, and :mod:`repro.campaign.report`
renders per-sub-grid tables plus a campaign summary as markdown or JSON.
``repro campaign run paper_figures --jobs 4`` reproduces the whole
evaluation section in one command.
"""

from repro.campaign.catalog import (
    BUILTIN_CAMPAIGN_DIR,
    available_campaigns,
    builtin_campaign_paths,
    describe_campaign,
    get_campaign,
)
from repro.campaign.report import (
    DEFAULT_COLUMNS,
    KNOWN_CHECKS,
    KNOWN_COLUMNS,
    campaign_report_md,
    campaign_report_payload,
    format_points_table,
    points_csv,
    points_payload,
    render_markdown_table,
    run_subgrid_checks,
)
from repro.campaign.scheduler import (
    CampaignResult,
    CampaignScheduler,
    QuarantinedRun,
    ScheduledRun,
)
from repro.campaign.spec import (
    CAMPAIGN_SCHEMA_VERSION,
    Campaign,
    CampaignError,
    CheckSpec,
    SubGrid,
    campaign_from_file,
)

__all__ = [
    "BUILTIN_CAMPAIGN_DIR",
    "CAMPAIGN_SCHEMA_VERSION",
    "Campaign",
    "CampaignError",
    "CampaignResult",
    "CampaignScheduler",
    "CheckSpec",
    "DEFAULT_COLUMNS",
    "KNOWN_CHECKS",
    "KNOWN_COLUMNS",
    "QuarantinedRun",
    "ScheduledRun",
    "SubGrid",
    "available_campaigns",
    "builtin_campaign_paths",
    "campaign_from_file",
    "campaign_report_md",
    "campaign_report_payload",
    "describe_campaign",
    "format_points_table",
    "get_campaign",
    "points_csv",
    "points_payload",
    "render_markdown_table",
    "run_subgrid_checks",
]
