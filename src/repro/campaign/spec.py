"""The declarative, versioned experiment-campaign specification.

A :class:`Campaign` is what a paper's evaluation section actually is: a set
of *named sub-grids* (``fig5``, ``fig7``, ``table2``, …), each binding one
scenario to an axis set, fixed setting overrides, the report columns the
corresponding figure shows, and the claims/checks the results are expected
to satisfy.  Like :class:`~repro.scenario.Scenario`, a campaign is plain
data: ``from_dict(to_dict(c)) == c`` holds exactly, the dictionary form is
JSON- and TOML-compatible, and every validation error carries the dotted
path of the offending entry (``campaign.subgrids.fig7.axes…``).

Sub-grids expand to the same :class:`~repro.runner.RunSpec` points the
``grid``/``sweep`` CLI paths produce, so campaign results are bit-identical
to running each sub-grid through the existing orchestrator — and share its
result cache.  Execution belongs to
:class:`~repro.campaign.scheduler.CampaignScheduler`, reporting to
:mod:`repro.campaign.report`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.report import CHECK_REQUIRED_PARAMS, KNOWN_CHECKS, KNOWN_COLUMNS
from repro.runner import RunSpec
from repro.scenario import (
    Scenario,
    ScenarioError,
    expand_axis_points,
    get_scenario,
    is_path_ref,
    settings_label,
)
from repro.scenario.spec import (
    _plain as _scenario_plain,
    _reject_unknown_keys as _scenario_reject_unknown_keys,
    _require_mapping as _scenario_require_mapping,
    load_spec_file,
)
from repro.sim.clock import MS

PathLike = Union[str, Path]

#: Version of the campaign schema.  Bump when the spec's shape changes in a
#: way old files cannot express; the loader rejects newer versions with an
#: actionable message instead of misreading them.
CAMPAIGN_SCHEMA_VERSION = 1


class CampaignError(ScenarioError):
    """A campaign file or dictionary failed schema validation.

    Subclasses :class:`~repro.scenario.ScenarioError` so every surface that
    already turns scenario errors into friendly messages (the CLI, the
    validation commands) handles campaign errors for free.
    """


# The scenario layer's schema helpers, re-raised as CampaignError so the
# exception type matches the document being validated.
def _plain(value: Any, path: str) -> Any:
    try:
        return _scenario_plain(value, path)
    except ScenarioError as exc:
        raise CampaignError(str(exc)) from None


def _require_mapping(data: Any, path: str) -> Mapping[str, Any]:
    try:
        return _scenario_require_mapping(data, path)
    except ScenarioError as exc:
        raise CampaignError(str(exc)) from None


def _reject_unknown_keys(data: Mapping[str, Any], known: Sequence[str], path: str) -> None:
    try:
        _scenario_reject_unknown_keys(data, known, path)
    except ScenarioError as exc:
        raise CampaignError(str(exc)) from None


@dataclass(frozen=True)
class CheckSpec:
    """One declared executable claim: a registered check kind plus params."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_CHECKS:
            raise CampaignError(
                f"check.kind: unknown check '{self.kind}' "
                f"(known: {', '.join(sorted(KNOWN_CHECKS))})"
            )
        object.__setattr__(self, "params", _plain(dict(self.params), "check.params"))
        missing = [
            param
            for param in CHECK_REQUIRED_PARAMS.get(self.kind, ())
            if param not in self.params
        ]
        if missing:
            raise CampaignError(
                f"check.params: check '{self.kind}' requires param(s) {missing}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str) -> "CheckSpec":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ["kind", "params"], path)
        if "kind" not in data:
            raise CampaignError(f"{path}.kind: required key is missing")
        params = data.get("params", {})
        _require_mapping(params, f"{path}.params")
        try:
            return cls(kind=data["kind"], params=dict(params))
        except ScenarioError as exc:
            # Re-anchor the construction-time "check." path at this check's
            # position in the campaign document.
            raise CampaignError(str(exc).replace("check.", f"{path}.", 1)) from None


@dataclass(frozen=True)
class SubGrid:
    """One named sub-grid of a campaign: a figure or table's run grid.

    ``axes`` expand to the cartesian product of dotted-path settings (the
    same shape as a scenario's sweep axes), ``settings`` are fixed overrides
    applied to every point (e.g. pinning the policy of a frequency sweep),
    and ``columns``/``claims``/``checks`` declare what the figure's report
    shows and asserts.  ``duration_ms``/``traffic_scale`` override the
    campaign defaults for this sub-grid only.
    """

    name: str
    scenario: str = "case_a"
    title: str = ""
    axes: Mapping[str, List[Any]] = field(default_factory=dict)
    settings: Mapping[str, Any] = field(default_factory=dict)
    duration_ms: Optional[float] = None
    traffic_scale: Optional[float] = None
    keep_trace: bool = False
    columns: Tuple[str, ...] = ()
    claims: Tuple[str, ...] = ()
    checks: Tuple[CheckSpec, ...] = ()

    def __post_init__(self) -> None:
        prefix = f"subgrid.{self.name or '?'}"
        if not self.name or not isinstance(self.name, str):
            raise CampaignError(f"subgrid name must be a non-empty string, got {self.name!r}")
        if not self.scenario or not isinstance(self.scenario, str):
            raise CampaignError(
                f"{prefix}.scenario: must be a scenario name or file path, "
                f"got {self.scenario!r}"
            )
        overlap = sorted(set(self.axes) & set(self.settings))
        if overlap:
            raise CampaignError(
                f"{prefix}.settings: {overlap} declared both as fixed setting(s) "
                "and as axes (the axis would silently win; drop one)"
            )
        axes: Dict[str, List[Any]] = {}
        for axis, values in dict(self.axes).items():
            if not isinstance(values, (list, tuple)):
                raise CampaignError(
                    f"{prefix}.axes.{axis}: axis values must be a list, "
                    f"got {type(values).__name__}"
                )
            if not values:
                raise CampaignError(f"{prefix}.axes.{axis}: axis values must not be empty")
            # Labels render values with str(), so uniqueness must hold on the
            # same projection (1 and "1" would collide) — a report whose rows
            # carry identical labels is unreadable even though the scheduler
            # regroups by settings, not labels.
            if len({str(value) for value in values}) != len(values):
                raise CampaignError(
                    f"{prefix}.axes.{axis}: axis values must be unique "
                    "(and render distinctly)"
                )
            axes[axis] = _plain(list(values), f"{prefix}.axes.{axis}")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(
            self, "settings", _plain(dict(self.settings), f"{prefix}.settings")
        )
        if self.duration_ms is not None and (
            not isinstance(self.duration_ms, (int, float)) or self.duration_ms <= 0
        ):
            raise CampaignError(
                f"{prefix}.duration_ms: must be a positive number or null, "
                f"got {self.duration_ms!r}"
            )
        if self.traffic_scale is not None and (
            not isinstance(self.traffic_scale, (int, float)) or self.traffic_scale <= 0
        ):
            raise CampaignError(
                f"{prefix}.traffic_scale: must be a positive number or null, "
                f"got {self.traffic_scale!r}"
            )
        columns = tuple(self.columns)
        for column in columns:
            if column not in KNOWN_COLUMNS:
                raise CampaignError(
                    f"{prefix}.columns: unknown column '{column}' "
                    f"(known: {', '.join(sorted(KNOWN_COLUMNS))})"
                )
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "claims", tuple(str(claim) for claim in self.claims))
        object.__setattr__(self, "checks", tuple(self.checks))

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def resolved_scenario(self) -> Scenario:
        """The scenario object this sub-grid runs (catalog name or file).

        Memoized on the instance (like ``RunSpec.resolved_scenario``): the
        catalog caches builtins but a file reference would otherwise be
        re-read and re-validated on every plan/run/report pass.
        """
        cached = self.__dict__.get("_resolved")
        if cached is None:
            cached = get_scenario(self.scenario)
            object.__setattr__(self, "_resolved", cached)
        return cached

    def points(self) -> List[Dict[str, Any]]:
        """The cartesian product of the axes, merged over fixed settings.

        Points are expanded exactly like ``Scenario.sweep_points`` (axes in
        sorted order), so a sub-grid declaring a scenario's own axes yields
        the same grid as ``repro grid``.
        """
        points = []
        for axis_point in expand_axis_points(self.axes):
            point = dict(self.settings)
            point.update(axis_point)
            points.append(point)
        return points

    def point_label(self, point: Mapping[str, Any]) -> str:
        """Display label of one point: its axis values (not fixed settings)."""
        label = settings_label({axis: point[axis] for axis in self.axes})
        return label or self.name

    def run_specs(
        self,
        default_duration_ms: float,
        default_traffic_scale: Optional[float] = None,
        duration_ms: Optional[float] = None,
        traffic_scale: Optional[float] = None,
        plugin_modules: Sequence[str] = (),
    ) -> List[RunSpec]:
        """One :class:`RunSpec` per point, in point order.

        Precedence for the run window and traffic scale: the explicit call
        argument (a CLI override) beats the sub-grid's declaration, which
        beats the campaign default.
        """
        effective_ms = (
            duration_ms
            if duration_ms is not None
            else (self.duration_ms if self.duration_ms is not None else default_duration_ms)
        )
        effective_scale = (
            traffic_scale
            if traffic_scale is not None
            else (
                self.traffic_scale
                if self.traffic_scale is not None
                else default_traffic_scale
            )
        )
        scenario = self.resolved_scenario()
        return [
            RunSpec(
                scenario=scenario,
                duration_ps=int(effective_ms * MS),
                traffic_scale=effective_scale,
                keep_trace=self.keep_trace,
                settings=tuple(sorted(point.items())),
                label=self.point_label(point),
                plugin_modules=tuple(plugin_modules),
            )
            for point in self.points()
        ]

    # ------------------------------------------------------------------ #
    # Serialisation (the sub-grid's name is its key in the campaign dict)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "title": self.title,
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "settings": dict(self.settings),
            "duration_ms": self.duration_ms,
            "traffic_scale": self.traffic_scale,
            "keep_trace": self.keep_trace,
            "columns": list(self.columns),
            "claims": list(self.claims),
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any], path: str) -> "SubGrid":
        data = _require_mapping(data, path)
        known = [f.name for f in fields(cls) if f.name != "name"]
        _reject_unknown_keys(data, known, path)
        kwargs: Dict[str, Any] = {k: data[k] for k in known if k in data}
        if "axes" in kwargs:
            _require_mapping(kwargs["axes"], f"{path}.axes")
        if "settings" in kwargs:
            _require_mapping(kwargs["settings"], f"{path}.settings")
        for listy in ("columns", "claims"):
            if listy in kwargs and not isinstance(kwargs[listy], (list, tuple)):
                raise CampaignError(
                    f"{path}.{listy}: expected a list, got {type(kwargs[listy]).__name__}"
                )
        if "checks" in kwargs:
            if not isinstance(kwargs["checks"], (list, tuple)):
                raise CampaignError(
                    f"{path}.checks: expected a list, got {type(kwargs['checks']).__name__}"
                )
            kwargs["checks"] = tuple(
                CheckSpec.from_dict(check, f"{path}.checks[{index}]")
                for index, check in enumerate(kwargs["checks"])
            )
        if "columns" in kwargs:
            kwargs["columns"] = tuple(kwargs["columns"])
        if "claims" in kwargs:
            kwargs["claims"] = tuple(kwargs["claims"])
        try:
            return cls(name=name, **kwargs)
        except ScenarioError as exc:
            # Re-anchor the construction-time dotted path at this sub-grid's
            # position in the campaign document.
            raise CampaignError(str(exc).replace(f"subgrid.{name}", path, 1)) from None


@dataclass(frozen=True)
class Campaign:
    """A named set of sub-grids with shared execution defaults."""

    name: str
    description: str = ""
    schema_version: int = CAMPAIGN_SCHEMA_VERSION
    duration_ms: float = 4.0
    traffic_scale: Optional[float] = None
    subgrids: Tuple[SubGrid, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError(f"campaign.name must be a non-empty string, got {self.name!r}")
        if self.schema_version != CAMPAIGN_SCHEMA_VERSION:
            raise CampaignError(
                f"campaign.schema_version: file declares version {self.schema_version}, "
                f"this build reads version {CAMPAIGN_SCHEMA_VERSION}"
            )
        if not isinstance(self.duration_ms, (int, float)) or self.duration_ms <= 0:
            raise CampaignError(
                f"campaign.duration_ms: must be a positive number, got {self.duration_ms!r}"
            )
        if self.traffic_scale is not None and (
            not isinstance(self.traffic_scale, (int, float)) or self.traffic_scale <= 0
        ):
            raise CampaignError(
                f"campaign.traffic_scale: must be a positive number or null, "
                f"got {self.traffic_scale!r}"
            )
        subgrids = tuple(self.subgrids)
        if not subgrids:
            raise CampaignError("campaign.subgrids: a campaign must declare at least one sub-grid")
        seen = set()
        for subgrid in subgrids:
            if subgrid.name in seen:
                raise CampaignError(
                    f"campaign.subgrids.{subgrid.name}: duplicate sub-grid name"
                )
            seen.add(subgrid.name)
        object.__setattr__(self, "subgrids", subgrids)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def subgrid_names(self) -> List[str]:
        return [subgrid.name for subgrid in self.subgrids]

    def subgrid(self, name: str) -> SubGrid:
        for subgrid in self.subgrids:
            if subgrid.name == name:
                return subgrid
        raise CampaignError(
            f"campaign '{self.name}' has no sub-grid '{name}' "
            f"(declared: {', '.join(self.subgrid_names())})"
        )

    def validate(self, deep: bool = True) -> int:
        """Resolve every sub-grid and return the campaign's total point count.

        Construction already schema-checked the document; ``deep`` validation
        additionally resolves each sub-grid's scenario (catching unknown
        catalog names and broken scenario files), builds its workload, and
        applies every point's settings (catching dotted-path typos in axes
        and fixed settings) — everything short of simulating.
        """
        total = 0
        for subgrid in self.subgrids:
            prefix = f"campaign.subgrids.{subgrid.name}"
            points = subgrid.points()
            try:
                scenario = subgrid.resolved_scenario()
                if deep:
                    scenario.build_workload()
                    for point in points:
                        scenario.apply_settings(point)
            except ScenarioError as exc:
                raise CampaignError(f"{prefix}: {exc}") from None
            total += len(points)
        return total

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data form (``from_dict`` inverts it exactly)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "duration_ms": self.duration_ms,
            "traffic_scale": self.traffic_scale,
            "subgrids": {subgrid.name: subgrid.to_dict() for subgrid in self.subgrids},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Campaign":
        """Validate and rebuild a campaign from its dictionary form.

        Every validation error is a :class:`CampaignError` whose message
        starts with the dotted path of the offending entry.
        """
        data = _require_mapping(data, "campaign")
        # Version first: a newer-version file must get the actionable version
        # message, not structural errors about keys this build cannot know.
        version = data.get("schema_version", CAMPAIGN_SCHEMA_VERSION)
        if version != CAMPAIGN_SCHEMA_VERSION:
            raise CampaignError(
                f"campaign.schema_version: file declares version {version}, "
                f"this build reads version {CAMPAIGN_SCHEMA_VERSION}"
            )
        known = [f.name for f in fields(cls)]
        _reject_unknown_keys(data, known, "campaign")
        if "name" not in data:
            raise CampaignError("campaign.name: required key is missing")
        kwargs: Dict[str, Any] = {k: data[k] for k in known if k in data}
        if "subgrids" in kwargs:
            _require_mapping(kwargs["subgrids"], "campaign.subgrids")
            kwargs["subgrids"] = tuple(
                SubGrid.from_dict(name, body, f"campaign.subgrids.{name}")
                for name, body in kwargs["subgrids"].items()
            )
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        # Unlike scenarios, keys are NOT sorted: sub-grid order is semantic
        # (it is the report order), and ``to_dict`` emits it losslessly.
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: PathLike) -> Path:
        """Write the campaign to a JSON file and return the written path."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(self.to_json() + "\n")
        return destination


# --------------------------------------------------------------------------- #
# File loading: JSON and TOML
# --------------------------------------------------------------------------- #
def campaign_from_file(path: PathLike) -> Campaign:
    """Load a campaign from a ``.json`` or ``.toml`` file."""
    source = Path(path)
    data = load_spec_file(source, "campaign", CampaignError)
    try:
        campaign = Campaign.from_dict(data)
    except CampaignError as exc:
        raise CampaignError(f"{source}: {exc}") from None
    return _anchor_scenario_paths(campaign, source.parent)


def _anchor_scenario_paths(campaign: Campaign, base: Path) -> Campaign:
    """Resolve relative sub-grid scenario *file* references against ``base``.

    A campaign file referencing ``scenarios/custom.json`` must work from any
    working directory, so path-like references (suffix or separator, not
    catalog names) are anchored to the campaign file's own directory.
    """
    rewritten = []
    changed = False
    for subgrid in campaign.subgrids:
        ref = subgrid.scenario
        if is_path_ref(ref) and not Path(ref).is_absolute():
            rewritten.append(replace(subgrid, scenario=str(base / ref)))
            changed = True
        else:
            rewritten.append(subgrid)
    if not changed:
        return campaign
    return replace(campaign, subgrids=tuple(rewritten))
