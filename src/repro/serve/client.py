"""A typed client for the results service, plus an embeddable server.

:class:`ResultsClient` wraps one keep-alive ``http.client`` connection with
typed methods mirroring the routes (``healthz`` / ``manifests`` /
``manifest`` / ``artifact`` / ``report``) and first-class conditional GET:
pass the ``etag`` a previous reply carried and a ``304`` comes back as a
:class:`Reply` with ``not_modified=True`` and an empty body.  Tests and the
load benchmark (``benchmarks/perf/bench_serve.py``) drive the service
through it, so the client is exercised by the same suite that defines the
server's behaviour.

:class:`BackgroundResultsServer` runs a :class:`~repro.serve.app.ResultsApp`
on a daemon thread with its own event loop — the embedding surface for
tests, benchmarks, and anything else that wants a live results URL next to
in-process code.  ``repro serve`` (the CLI) runs the same app in the
foreground instead.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import logging
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.serve.app import ResultsApp
from repro.serve.cache import DEFAULT_CACHE_BYTES
from repro.serve.http import AccessLog, HttpServer, RequestObserver
from repro.store import ResultsStore

#: The service's stdlib logger.  The package installs only a NullHandler,
#: so embedding consumers decide whether access lines go anywhere; the CLI
#: attaches a stderr handler via ``repro serve --log-level``.
logger = logging.getLogger("repro.serve")


def _observer_for(app: ResultsApp, log: bool) -> RequestObserver:
    """Metrics + (optionally) structured access logging for one app."""

    def observe(
        peer: str, method: str, path: str, status: int, written: int, elapsed_s: float
    ) -> None:
        app.record_request(method, path, status, elapsed_s)
        if log:
            logger.info(
                '%s "%s %s" %d %dB %.1fms',
                peer,
                method,
                path,
                status,
                written,
                elapsed_s * 1e3,
                extra={
                    "peer": peer,
                    "method": method,
                    "path": path,
                    "status": status,
                    "bytes": written,
                    "elapsed_ms": round(elapsed_s * 1e3, 3),
                },
            )

    return observe


class ServiceError(RuntimeError):
    """An HTTP status the typed accessor did not expect; carries the reply."""

    def __init__(self, message: str, reply: "Reply") -> None:
        super().__init__(message)
        self.reply = reply


@dataclass(frozen=True)
class Reply:
    """One HTTP exchange's result, with the caching fields first-class."""

    status: int
    headers: Dict[str, str]
    body: bytes

    @property
    def etag(self) -> Optional[str]:
        value = self.headers.get("etag")
        return value.strip('"') if value is not None else None

    @property
    def content_type(self) -> Optional[str]:
        return self.headers.get("content-type")

    @property
    def not_modified(self) -> bool:
        return self.status == 304

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class ResultsClient:
    """One keep-alive connection to a results service."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def request(
        self, method: str, path: str, etag: Optional[str] = None
    ) -> Reply:
        headers = {"Host": f"{self.host}:{self.port}"}
        if etag is not None:
            headers["If-None-Match"] = f'"{etag}"'
        try:
            return self._exchange(method, path, headers)
        except (ConnectionError, http.client.HTTPException, OSError):
            # The server may have closed an idle keep-alive connection (or
            # this is the first request); reconnect once.
            self.close()
            return self._exchange(method, path, headers)

    def _exchange(self, method: str, path: str, headers: Dict[str, str]) -> Reply:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        self._connection.request(method, path, headers=headers)
        response = self._connection.getresponse()
        body = response.read()
        reply_headers = {name.lower(): value for name, value in response.getheaders()}
        if reply_headers.get("connection") == "close":
            self.close()
        return Reply(status=response.status, headers=reply_headers, body=body)

    def get(self, path: str, etag: Optional[str] = None) -> Reply:
        return self.request("GET", path, etag=etag)

    def head(self, path: str, etag: Optional[str] = None) -> Reply:
        return self.request("HEAD", path, etag=etag)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ResultsClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Typed accessors
    # ------------------------------------------------------------------ #
    def _expect(self, reply: Reply, path: str, conditional: bool) -> Reply:
        allowed = (200, 304) if conditional else (200,)
        if reply.status not in allowed:
            detail = reply.body.decode("utf-8", "replace").strip()
            raise ServiceError(f"GET {path} -> {reply.status}: {detail}", reply)
        return reply

    def healthz(self) -> Dict[str, Any]:
        return self._expect(self.get("/healthz"), "/healthz", False).json()

    def manifests(self) -> List[Dict[str, Any]]:
        reply = self._expect(self.get("/manifests"), "/manifests", False)
        return reply.json()["manifests"]

    def manifest(self, fingerprint: str) -> Dict[str, Any]:
        path = f"/manifests/{fingerprint}"
        return self._expect(self.get(path), path, False).json()

    def artifact(self, digest: str, etag: Optional[str] = None) -> Reply:
        path = f"/artifacts/{digest}"
        return self._expect(self.get(path, etag=etag), path, etag is not None)

    def report(
        self, fingerprint: str, name: str, etag: Optional[str] = None
    ) -> Reply:
        path = f"/reports/{fingerprint}/{name}"
        return self._expect(self.get(path, etag=etag), path, etag is not None)

    def point(self, cache_key: str) -> Dict[str, Any]:
        """One recorded point from the store-wide index, by cache key."""
        path = f"/points/{cache_key}"
        return self._expect(self.get(path), path, False).json()


class BackgroundResultsServer:
    """A results service on a daemon thread (its own asyncio loop).

    Context-managed::

        with BackgroundResultsServer(store_dir) as server:
            client = ResultsClient(server.host, server.port)
            ...

    ``port=0`` (the default) binds an OS-assigned free port, published via
    ``server.port`` once ``start`` returns.  ``stop`` performs the graceful
    shutdown the protocol core implements: in-flight responses finish, idle
    keep-alive connections close.
    """

    def __init__(
        self,
        store_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        access_log: Optional[AccessLog] = None,
    ) -> None:
        self.store_dir = store_dir
        self.host = host
        self.port = port
        self.app = ResultsApp(ResultsStore(store_dir), cache_bytes=cache_bytes)
        self._access_log = access_log
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "BackgroundResultsServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("results service failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"results service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        # Idempotent: a second stop (e.g. from a finally block after the
        # server was already bounced) must be a no-op, not a call into a
        # closed event loop.
        loop, stop_event = self._loop, self._stop_event
        self._loop = self._stop_event = None
        if loop is not None and stop_event is not None:
            loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        server = HttpServer(
            self.app,
            host=self.host,
            port=self.port,
            access_log=self._access_log,
            observer=_observer_for(self.app, log=False),
        )
        await server.start()
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await server.close()

    def __enter__(self) -> "BackgroundResultsServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def run_server(
    store_dir, host: str = "127.0.0.1", port: int = 8787
) -> int:
    """The ``repro serve`` entry point: foreground, access-logged, Ctrl-C.

    Prints the bound address on stdout (flushed, so a scripted caller — the
    CI smoke job — can wait for readiness), logs one access line per request
    through the ``repro.serve`` stdlib logger (the CLI attaches a stderr
    handler; see ``repro serve --log-level``), and shuts down gracefully on
    SIGINT: in-flight responses finish before the process exits.
    """
    store = ResultsStore(store_dir)
    app = ResultsApp(store)

    async def serve() -> None:
        server = HttpServer(
            app, host=host, port=port, observer=_observer_for(app, log=True)
        )
        await server.start()
        print(
            f"repro serve: results store {store.directory} on "
            f"http://{server.host}:{server.port} (Ctrl-C to stop)",
            flush=True,
        )
        logger.info(
            "serving store %s on http://%s:%d",
            store.directory,
            server.host,
            server.port,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        logger.info("shutting down")
    return 0
