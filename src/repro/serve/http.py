"""The protocol core of the results service: a tiny asyncio HTTP/1.1 server.

This module knows nothing about stores or manifests — it parses requests,
writes responses and manages connections, and hands every parsed
:class:`Request` to one async handler that returns a :class:`Response`.
The split mirrors the store layering (manifest = data, store = I/O): the
routing and caching semantics live in :mod:`repro.serve.app`, so the
protocol layer can be tested with throwaway handlers and the handler layer
with a real store.

Scope is deliberately the subset the results service needs, done carefully:

* request parsing with hard limits (request line, header count/size, body),
  returning ``400``/``413``/``431``/``505`` instead of dying on bad input;
* keep-alive by HTTP/1.1 default (``Connection: close`` and HTTP/1.0
  semantics honoured), one request at a time per connection;
* ``Content-Length`` responses for byte bodies and ``Transfer-Encoding:
  chunked`` for iterable bodies, with ``HEAD`` sending headers only;
* graceful shutdown: :meth:`HttpServer.close` stops accepting, lets every
  in-flight request finish writing its response, unblocks idle keep-alive
  connections, and only then force-cancels stragglers.

No dependency beyond the standard library, matching the repo's rule that
the "millions of readers" path must not drag in a web framework.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import (
    Awaitable,
    Callable,
    Dict,
    Iterable,
    Optional,
    Set,
    Tuple,
    Union,
)
from urllib.parse import parse_qsl, unquote

from repro.version import __version__

#: Parsing limits — small enough to bound memory per connection, large
#: enough for any URL the service legitimately serves (fingerprints are 64
#: hex characters).
MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 1 << 20

SUPPORTED_VERSIONS = ("HTTP/1.0", "HTTP/1.1")

#: Statuses that must not carry a message body (RFC 7230 §3.3.3).
BODYLESS_STATUSES = frozenset({204, 304})

SERVER_NAME = f"repro-serve/{__version__}"

AccessLog = Callable[[str], None]

#: Structured per-request hook: ``observer(peer, method, path, status,
#: written_bytes, elapsed_s)``.  This is what the metrics registry and the
#: structured access logger hang off — the protocol layer stays free of
#: both policies.
RequestObserver = Callable[[str, str, str, int, int, float], None]


class ProtocolError(Exception):
    """A malformed or over-limit request; carries the status to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request (headers lower-cased, path percent-decoded)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    version: str = "HTTP/1.1"
    body: bytes = b""

    @property
    def wants_keep_alive(self) -> bool:
        """Connection persistence per the request's own version and headers."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def if_none_match(self) -> Optional[str]:
        return self.headers.get("if-none-match")


@dataclass
class Response:
    """One response: a byte body (``Content-Length``) or chunk iterable.

    ``headers`` are extra headers beyond the ones the writer owns
    (``Content-Length`` / ``Transfer-Encoding``, ``Connection``,
    ``Server``).  A ``bytes`` body is sent with ``Content-Length``; any
    other iterable of byte chunks streams as ``Transfer-Encoding: chunked``
    on HTTP/1.1 (and is materialized for HTTP/1.0, which predates chunking).
    """

    status: int = 200
    body: Union[bytes, Iterable[bytes]] = b""
    content_type: Optional[str] = None
    headers: Tuple[Tuple[str, str], ...] = ()

    @property
    def reason(self) -> str:
        try:
            return HTTPStatus(self.status).phrase
        except ValueError:
            return "Unknown"


Handler = Callable[[Request], Awaitable[Response]]


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on clean EOF before one.

    Raises :class:`ProtocolError` on malformed input — the connection loop
    turns that into the matching 4xx/5xx response and closes.
    """
    line = await _read_line(reader)
    while line in (b"\r\n", b"\n"):  # tolerate leading blank lines (RFC 7230 §3.5)
        line = await _read_line(reader)
    if not line:
        return None
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(f"malformed request line: {line[:80]!r}") from None
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"unsupported protocol version {version!r}", status=505)

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            raise ProtocolError("connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError("too many headers", status=431)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("malformed Content-Length") from None
        if length < 0:
            raise ProtocolError("malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError("request body too large", status=413)
        body = await reader.readexactly(length)

    raw_path, _, raw_query = target.partition("?")
    return Request(
        method=method,
        path=unquote(raw_path),
        query=dict(parse_qsl(raw_query)),
        headers=headers,
        version=version,
        body=body,
    )


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except asyncio.IncompleteReadError as exc:  # pragma: no cover - rare path
        return exc.partial
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError("request line too long", status=431) from None
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise ProtocolError("request line too long", status=431)
    return line


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    *,
    head_only: bool = False,
    keep_alive: bool = True,
    version: str = "HTTP/1.1",
) -> int:
    """Serialize one response; returns the number of body bytes written."""
    body = response.body
    chunked = not isinstance(body, (bytes, bytearray, memoryview))
    if chunked and version == "HTTP/1.0":
        body = b"".join(body)  # HTTP/1.0 peers cannot decode chunking
        chunked = False

    headers = [("Server", SERVER_NAME)]
    if response.content_type is not None:
        headers.append(("Content-Type", response.content_type))
    headers.extend(response.headers)
    if response.status in BODYLESS_STATUSES:
        body = b""
        chunked = False
    elif chunked:
        headers.append(("Transfer-Encoding", "chunked"))
    else:
        headers.append(("Content-Length", str(len(body))))
    headers.append(("Connection", "keep-alive" if keep_alive else "close"))

    head = [f"{version} {response.status} {response.reason}"]
    head.extend(f"{name}: {value}" for name, value in headers)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))

    written = 0
    if not head_only:
        if chunked:
            for chunk in body:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(bytes(chunk) + b"\r\n")
                written += len(chunk)
            writer.write(b"0\r\n\r\n")
        elif body:
            writer.write(bytes(body))
            written = len(body)
    await writer.drain()
    return written


class _Connection:
    """Book-keeping for one live connection (graceful-shutdown state)."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False  # True while a request is being handled/written


class HttpServer:
    """One handler behind ``asyncio.start_server``, with graceful shutdown.

    Usage::

        server = HttpServer(app, host="127.0.0.1", port=0, access_log=print)
        await server.start()          # binds; server.port is the real port
        await server.serve_forever()  # or: await server.close() from elsewhere
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log: Optional[AccessLog] = None,
        observer: Optional[RequestObserver] = None,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.access_log = access_log
        self.observer = observer
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[asyncio.Task, _Connection] = {}
        self._closing = False

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port
        )
        # port=0 asks the OS for a free port; reflect the real one back.
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("serve_forever() before start()")
        await self._server.serve_forever()

    async def close(self, timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, close every connection.

        Connections idle between keep-alive requests are closed immediately
        (their pending read sees EOF); connections mid-request get up to
        ``timeout`` seconds to finish writing their response before being
        cancelled.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in self._connections.values():
            if not connection.busy:
                connection.writer.close()
        pending: Set[asyncio.Task] = set(self._connections)
        if pending:
            _, stragglers = await asyncio.wait(pending, timeout=timeout)
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        connection = _Connection(writer)
        self._connections[task] = connection
        try:
            await self._serve_connection(reader, writer, connection)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        connection: _Connection,
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_text = peer[0] if isinstance(peer, tuple) else str(peer)
        while not self._closing:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                await write_response(
                    writer,
                    Response(
                        status=exc.status,
                        body=f"{exc}\n".encode(),
                        content_type="text/plain; charset=utf-8",
                    ),
                    keep_alive=False,
                )
                break
            if request is None:
                break
            connection.busy = True
            began = time.perf_counter()
            try:
                try:
                    response = await self.handler(request)
                except Exception as exc:  # noqa: BLE001 - one request, not the server
                    response = Response(
                        status=500,
                        body=f"internal error: {type(exc).__name__}: {exc}\n".encode(),
                        content_type="text/plain; charset=utf-8",
                    )
                keep_alive = request.wants_keep_alive and not self._closing
                written = await write_response(
                    writer,
                    response,
                    head_only=request.method == "HEAD",
                    keep_alive=keep_alive,
                    version=request.version,
                )
            finally:
                connection.busy = False
            elapsed_s = time.perf_counter() - began
            if self.observer is not None:
                self.observer(
                    peer_text,
                    request.method,
                    request.path,
                    response.status,
                    written,
                    elapsed_s,
                )
            if self.access_log is not None:
                self.access_log(
                    f'{peer_text} "{request.method} {request.path}" '
                    f"{response.status} {written}B {elapsed_s * 1e3:.1f}ms"
                )
            if not keep_alive:
                break
