"""A bounded in-memory LRU cache for hot artifact blobs.

Blobs are content-addressed (the key *is* the SHA-256 of the bytes), so an
entry can never go stale — the only policy needed is a byte budget with
least-recently-used eviction.  The store's read path re-verifies a blob's
hash on every disk read; caching the verified bytes means a hot report is
served without touching the filesystem *or* re-hashing, which is where the
service's requests/s comes from (see ``benchmarks/perf/bench_serve.py``).

Counters are plain ints mutated from the single event loop thread (the
server is one loop); readers from other threads (the benchmark, tests)
only ever see a consistent snapshot via :meth:`BlobCache.stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: Default byte budget for the hot-blob cache — comfortably holds every
#: rendered artifact of dozens of recorded campaigns (reports are tens of
#: KiB) while staying irrelevant next to the interpreter's own footprint.
DEFAULT_CACHE_BYTES = 8 * 1024 * 1024


class BlobCache:
    """``digest -> (bytes, ext)`` with LRU eviction under a byte budget."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.max_bytes = max(0, int(max_bytes))
        self._entries: "OrderedDict[str, Tuple[bytes, str]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> Optional[Tuple[bytes, str]]:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, content: bytes, ext: str) -> None:
        """Insert one verified blob; oversized blobs are simply not cached."""
        if len(content) > self.max_bytes:
            return
        existing = self._entries.pop(digest, None)
        if existing is not None:
            self._bytes -= len(existing[0])
        self._entries[digest] = (content, ext)
        self._bytes += len(content)
        while self._bytes > self.max_bytes:
            _, (evicted, _) = self._entries.popitem(last=False)
            self._bytes -= len(evicted)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "bytes": self._bytes,
            "max_bytes": self.max_bytes,
        }
