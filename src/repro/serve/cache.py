"""A bounded in-memory LRU cache for hot artifact blobs.

Blobs are content-addressed (the key *is* the SHA-256 of the bytes), so an
entry can never go stale — the only policy needed is a byte budget with
least-recently-used eviction.  The store's read path re-verifies a blob's
hash on every disk read; caching the verified bytes means a hot report is
served without touching the filesystem *or* re-hashing, which is where the
service's requests/s comes from (see ``benchmarks/perf/bench_serve.py``).

Counters live in a :class:`~repro.obs.MetricsRegistry` — the app shares one
registry across the cache and its HTTP metrics so ``GET /metrics`` renders
them in one pass — and are mutated only from the single event-loop thread;
readers from other threads (the benchmark, tests) only ever see a
consistent snapshot via :meth:`BlobCache.stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.obs import MetricsRegistry

#: Default byte budget for the hot-blob cache — comfortably holds every
#: rendered artifact of dozens of recorded campaigns (reports are tens of
#: KiB) while staying irrelevant next to the interpreter's own footprint.
DEFAULT_CACHE_BYTES = 8 * 1024 * 1024


class BlobCache:
    """``digest -> (bytes, ext)`` with LRU eviction under a byte budget."""

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.max_bytes = max(0, int(max_bytes))
        self._entries: "OrderedDict[str, Tuple[bytes, str]]" = OrderedDict()
        self._bytes = 0
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            "repro_blob_cache_hits_total", "Hot-blob cache hits."
        )
        self._misses = self.metrics.counter(
            "repro_blob_cache_misses_total", "Hot-blob cache misses."
        )
        self._evictions = self.metrics.counter(
            "repro_blob_cache_evictions_total", "Hot-blob LRU evictions."
        )

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(float(value))

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(float(value))

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.set(float(value))

    def get(self, digest: str) -> Optional[Tuple[bytes, str]]:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, content: bytes, ext: str) -> None:
        """Insert one verified blob; oversized blobs are simply not cached."""
        if len(content) > self.max_bytes:
            return
        existing = self._entries.pop(digest, None)
        if existing is not None:
            self._bytes -= len(existing[0])
        self._entries[digest] = (content, ext)
        self._bytes += len(content)
        while self._bytes > self.max_bytes:
            _, (evicted, _) = self._entries.popitem(last=False)
            self._bytes -= len(evicted)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "bytes": self._bytes,
            "max_bytes": self.max_bytes,
        }
