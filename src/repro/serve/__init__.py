"""The results service: an asyncio HTTP front-end on the results store.

The content-addressed store (:mod:`repro.store`) already serves recorded
reports byte-identically with zero scenario resolutions — through the local
CLI.  This package puts a dependency-free HTTP/1.1 server in front of it so
every recorded figure, table and narrative becomes a cacheable URL with
``ETag`` = content hash: the "millions of readers" path never touches the
simulator, and a CDN or browser cache revalidates recorded bytes with
nothing but 304s.

Layers (each its own module, testable in isolation):

* :mod:`repro.serve.http` — protocol core: parsing, keep-alive,
  ``Content-Length``/chunked responses, graceful shutdown.
* :mod:`repro.serve.app` — routing and HTTP-caching semantics over a
  :class:`~repro.store.ResultsStore`.
* :mod:`repro.serve.cache` — the bounded LRU hot-blob cache.
* :mod:`repro.serve.client` — the typed client, the background server for
  embedding, and the ``repro serve`` foreground entry point.

See ``docs/results_service.md`` for endpoints and caching semantics, and
``benchmarks/perf/bench_serve.py`` for the tracked load benchmark.

Logging: the service logs through the stdlib ``repro.serve`` logger
(access lines at INFO with structured ``extra`` fields).  The library adds
only a :class:`logging.NullHandler`, so embedding consumers hear nothing
unless they configure handlers; ``repro serve --log-level`` attaches a
stderr handler in the CLI.
"""

import logging as _logging

_logging.getLogger("repro.serve").addHandler(_logging.NullHandler())

from repro.serve.app import ResultsApp
from repro.serve.cache import DEFAULT_CACHE_BYTES, BlobCache
from repro.serve.client import (
    BackgroundResultsServer,
    Reply,
    ResultsClient,
    ServiceError,
    run_server,
)
from repro.serve.http import HttpServer, ProtocolError, Request, Response

__all__ = [
    "BackgroundResultsServer",
    "BlobCache",
    "DEFAULT_CACHE_BYTES",
    "HttpServer",
    "ProtocolError",
    "Reply",
    "Request",
    "Response",
    "ResultsApp",
    "ResultsClient",
    "ServiceError",
    "run_server",
]
