"""The results service's handler layer: routes over a ``ResultsStore``.

Every recorded figure, table and narrative becomes a cacheable URL:

* ``GET /healthz`` — liveness plus store and hot-cache counters, service
  version, pid, uptime and requests served.
* ``GET /metrics`` — the service's instruments in the Prometheus text
  exposition format: request counts and latency histograms (by method and
  status), hot-blob-cache hits/misses/evictions and occupancy, store
  manifest count and size.  See ``docs/observability.md``.
* ``GET /manifests`` — index of recorded runs (newest first), the JSON
  shape of ``repro store list --format json``.
* ``GET /manifests/<fingerprint>`` — one manifest's full JSON; a unique
  prefix is enough, an ambiguous one answers ``300 Multiple Choices`` with
  the matching fingerprints.
* ``GET /artifacts/<sha256>`` — one rendered blob by content address, with
  the ``Content-Type`` derived from its on-disk extension.  The address
  *is* the content, so the response carries ``Cache-Control: immutable``.
* ``GET /reports/<fingerprint>/<name>`` — a recorded rendering by role:
  ``report_md`` / ``report_json`` / ``narrative_md`` at manifest level, or
  ``<subgrid>/<md|csv|json>`` for one sub-grid's table.
* ``GET /points/<cache_key>`` — one recorded point straight from the
  store-wide point index: its owning manifest fingerprint, sub-grid, label,
  settings, measured row, status and result-artifact reference.  Answered
  without loading any manifest; an unindexed key is a ``404`` with a
  ``repro store index`` hint.

Caching semantics, uniform across routes: the ``ETag`` is always a strong
content hash (for blobs, the blob's own SHA-256 — the same string as its
URL under ``/artifacts/``), ``If-None-Match`` answers ``304 Not Modified``
without touching the blob, and ``HEAD`` is ``GET`` minus the body.  Blob
reads re-verify their content address and go through a bounded LRU hot
cache; a tampered or missing blob is a ``404`` with a ``repro store
verify`` hint, never forged bytes.

Handlers are ``async`` only because the protocol core is; every operation
here is an in-memory or small-file read — the point of the service is that
serving recorded results never resolves a scenario or runs the simulator.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Tuple

from repro.obs import MetricsRegistry, span
from repro.serve.cache import DEFAULT_CACHE_BYTES, BlobCache
from repro.serve.http import Request, Response
from repro.version import __version__
from repro.store import (
    AmbiguousFingerprintError,
    ArtifactRef,
    Manifest,
    ResultsStore,
    StoreError,
    content_digest,
    content_type_for,
    manifest_summary,
)

JSON_TYPE = "application/json; charset=utf-8"

#: The Prometheus text exposition format's registered content type.
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Artifacts are content-addressed: the URL names the bytes, so any cache
#: may keep them forever.
IMMUTABLE_CACHE = "public, max-age=31536000, immutable"
#: Reports are looked up by role under a fingerprint; a re-recorded run can
#: re-bind the role, so caches must revalidate — which the strong ETag makes
#: a cheap 304.
REVALIDATE_CACHE = "no-cache"

VERIFY_HINT = "run `repro store verify --store-dir <dir>` to diagnose the store"


def _etag_matches(header: Optional[str], etag: str) -> bool:
    """``If-None-Match`` comparison (strong ETags; ``W/`` prefixes ignored)."""
    if header is None:
        return False
    if header.strip() == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:].strip()
        if candidate.strip('"') == etag:
            return True
    return False


def _json_body(payload: object) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


class ResultsApp:
    """The handler behind :class:`~repro.serve.http.HttpServer`."""

    def __init__(
        self, store: ResultsStore, cache_bytes: int = DEFAULT_CACHE_BYTES
    ) -> None:
        self.store = store
        # One registry spans the cache's counters and the HTTP metrics, so
        # `/metrics` renders every series in a single pass.
        self.metrics = MetricsRegistry()
        self.blob_cache = BlobCache(cache_bytes, registry=self.metrics)
        self.started_monotonic = time.monotonic()
        self._requests_served = 0

    def record_request(
        self, method: str, path: str, status: int, elapsed_s: float
    ) -> None:
        """Per-request accounting hook, wired to the protocol layer's observer.

        Paths are reduced to their route class (``/artifacts/<sha>`` counts
        as ``/artifacts``) so the label set stays bounded no matter how many
        blobs the store holds.
        """
        self._requests_served += 1
        route = "/" + path.strip("/").split("/", 1)[0] if path.strip("/") else "/"
        self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route and status.",
            method=method,
            route=route,
            status=str(status),
        ).inc()
        self.metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency.",
            method=method,
            route=route,
        ).observe(elapsed_s)

    async def __call__(self, request: Request) -> Response:
        if request.method not in ("GET", "HEAD"):
            return self._error(
                405, f"method {request.method} not allowed (GET and HEAD only)",
                headers=(("Allow", "GET, HEAD"),),
            )
        parts = [part for part in request.path.split("/") if part]
        with span("serve.request", method=request.method, path=request.path):
            if parts == ["healthz"]:
                return self._healthz()
            if parts == ["metrics"]:
                return self._metrics()
            if parts == ["manifests"]:
                return self._manifest_index(request)
            if len(parts) == 2 and parts[0] == "manifests":
                return self._manifest(request, parts[1])
            if len(parts) == 2 and parts[0] == "artifacts":
                return self._artifact(request, parts[1])
            if len(parts) in (3, 4) and parts[0] == "reports":
                return self._report(request, parts[1], "/".join(parts[2:]))
            if len(parts) == 2 and parts[0] == "points":
                return self._point(request, parts[1])
            return self._error(404, f"no route for {request.path}")

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _healthz(self) -> Response:
        payload = {
            "status": "ok",
            "version": __version__,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "requests_served": self._requests_served,
            "store_dir": str(self.store.directory),
            "manifests": len(self.store.manifests()),
            "blob_cache": self.blob_cache.stats(),
        }
        return Response(
            body=_json_body(payload),
            content_type=JSON_TYPE,
            headers=(("Cache-Control", "no-store"),),
        )

    def _metrics(self) -> Response:
        """Prometheus text exposition of every instrument the app holds.

        Point-in-time gauges (cache occupancy, store size) are refreshed on
        each scrape; the counters and histograms accumulate continuously via
        :meth:`record_request` and the blob cache.
        """
        cache_stats = self.blob_cache.stats()
        self.metrics.gauge(
            "repro_blob_cache_entries", "Hot-blob cache entries."
        ).set(cache_stats["entries"])
        self.metrics.gauge(
            "repro_blob_cache_bytes", "Hot-blob cache occupancy in bytes."
        ).set(cache_stats["bytes"])
        self.metrics.gauge(
            "repro_blob_cache_max_bytes", "Hot-blob cache byte budget."
        ).set(cache_stats["max_bytes"])
        self.metrics.gauge(
            "repro_store_manifests", "Manifests recorded in the served store."
        ).set(len(self.store.manifests()))
        self.metrics.gauge(
            "repro_store_size_bytes", "Total size of the served store on disk."
        ).set(self.store.size_bytes())
        self.metrics.gauge(
            "repro_serve_uptime_seconds", "Seconds since the app started."
        ).set(time.monotonic() - self.started_monotonic)
        return Response(
            body=self.metrics.render_prometheus().encode("utf-8"),
            content_type=METRICS_TYPE,
            headers=(("Cache-Control", "no-store"),),
        )

    def _manifest_index(self, request: Request) -> Response:
        manifests = self.store.manifests()
        payload = {
            "store_dir": str(self.store.directory),
            "count": len(manifests),
            "manifests": [manifest_summary(manifest) for manifest in manifests],
        }
        return self._json_with_etag(request, payload)

    def _manifest(self, request: Request, prefix: str) -> Response:
        try:
            manifest = self.store.find_manifest(prefix)
        except AmbiguousFingerprintError as exc:
            return Response(
                status=300,
                body=_json_body(
                    {
                        "error": f"fingerprint prefix '{prefix}' is ambiguous",
                        "matches": list(exc.matches),
                    }
                ),
                content_type=JSON_TYPE,
            )
        except StoreError as exc:
            return self._error(404, str(exc))
        return self._json_with_etag(request, manifest.to_dict())

    def _artifact(self, request: Request, digest: str) -> Response:
        ref = self.store.find_artifact(digest)
        if ref is None:
            return self._error(
                404, f"no artifact with digest '{digest}'", hint=VERIFY_HINT
            )
        return self._blob(request, ref, cache_control=IMMUTABLE_CACHE)

    def _report(self, request: Request, prefix: str, name: str) -> Response:
        try:
            manifest = self.store.find_manifest(prefix)
        except AmbiguousFingerprintError as exc:
            return Response(
                status=300,
                body=_json_body(
                    {
                        "error": f"fingerprint prefix '{prefix}' is ambiguous",
                        "matches": list(exc.matches),
                    }
                ),
                content_type=JSON_TYPE,
            )
        except StoreError as exc:
            return self._error(404, str(exc))
        ref = self._resolve_report(manifest, name)
        if ref is None:
            recorded = sorted(manifest.artifact_refs())
            return self._error(
                404,
                f"manifest {manifest.fingerprint[:12]}… records no artifact "
                f"'{name}'",
                hint=f"recorded artifacts: {', '.join(recorded)}",
            )
        return self._blob(request, ref, cache_control=REVALIDATE_CACHE)

    def _point(self, request: Request, cache_key: str) -> Response:
        entry = self.store.point_index.get(cache_key)
        if entry is None:
            return self._error(
                404,
                f"no indexed point for cache key '{cache_key}'",
                hint="run `repro store index --store-dir <dir>` to rebuild "
                "the point index from the manifests",
            )
        return self._json_with_etag(request, entry.to_dict())

    # ------------------------------------------------------------------ #
    # Shared pieces
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_report(manifest: Manifest, name: str) -> Optional[ArtifactRef]:
        """``report_md``-style manifest artifacts or ``<subgrid>/<name>``."""
        ref = manifest.artifacts.get(name)
        if ref is not None:
            return ref
        subgrid_name, sep, artifact_name = name.partition("/")
        if not sep:
            return None
        for entry in manifest.subgrids:
            if entry.name == subgrid_name:
                return entry.artifacts.get(artifact_name)
        return None

    def _blob(
        self, request: Request, ref: ArtifactRef, cache_control: str
    ) -> Response:
        """Serve one content-addressed blob with conditional-GET support.

        The ETag is known from the reference alone, so a ``304`` never
        touches the blob cache or the disk — exactly what makes polling
        readers (and CDNs revalidating) nearly free.
        """
        headers = (
            ("ETag", f'"{ref.digest}"'),
            ("Cache-Control", cache_control),
        )
        if _etag_matches(request.if_none_match(), ref.digest):
            return Response(status=304, headers=headers)
        cached = self.blob_cache.get(ref.digest)
        if cached is not None:
            content, ext = cached
        else:
            try:
                content = self.store.read_artifact_bytes(ref)
            except StoreError as exc:
                return self._error(404, str(exc), hint=VERIFY_HINT)
            ext = ref.ext
            self.blob_cache.put(ref.digest, content, ext)
        return Response(
            body=content, content_type=content_type_for(ext), headers=headers
        )

    def _json_with_etag(self, request: Request, payload: object) -> Response:
        """A JSON document whose ETag is the hash of its own bytes."""
        body = _json_body(payload)
        etag = content_digest(body)
        headers = (
            ("ETag", f'"{etag}"'),
            ("Cache-Control", REVALIDATE_CACHE),
        )
        if _etag_matches(request.if_none_match(), etag):
            return Response(status=304, headers=headers)
        return Response(body=body, content_type=JSON_TYPE, headers=headers)

    @staticmethod
    def _error(
        status: int,
        message: str,
        hint: Optional[str] = None,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> Response:
        payload = {"error": message}
        if hint is not None:
            payload["hint"] = hint
        return Response(
            status=status,
            body=_json_body(payload),
            content_type=JSON_TYPE,
            headers=headers,
        )
