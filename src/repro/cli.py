"""Command-line interface for the SARA reproduction.

``python -m repro <command>`` exposes the main entry points of the library
without writing any Python:

* ``policies`` / ``governors`` — list the registered scheduling policies and
  DVFS governors.
* ``settings`` — print the Table-1/Table-2 platform settings.
* ``run`` — one experiment (case, policy, duration), printing the per-core
  summary and optionally saving the result as JSON.
* ``compare`` — several policies on one case (Figs. 5/6/8/9), printing the
  NPI and bandwidth tables plus the paper's shape checks.
* ``sweep`` — the Fig. 7 DRAM-frequency sweep and priority-distribution table.
* ``dvfs`` — a governor-in-the-loop run with the QoS / energy trade-off.
* ``energy`` — the memory-system energy breakdown of one run.

Durations are given in milliseconds of *simulated* time; the full frame
period of the paper is 33 ms, but a few milliseconds already show the
contended phase on a laptop-friendly budget.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.figures import export_csv, fig7_rows, min_npi_rows
from repro.analysis.metrics import priority_distribution_table
from repro.analysis.paper import (
    check_fig8_bandwidth_ordering,
    check_fig9_qos_preserved,
    check_policy_failures,
    summarize_checks,
)
from repro.analysis.report import (
    format_bandwidth_table,
    format_core_summary,
    format_npi_table,
    format_priority_distribution,
    format_settings_table,
)
from repro.analysis.serialize import save_result
from repro.dvfs.experiment import run_with_governor
from repro.dvfs.governor import available_governors, make_governor
from repro.memctrl.policies import available_policies
from repro.power import estimate_system_energy, format_energy_report
from repro.runner import sweep_compare_policies, sweep_frequencies
from repro.sim.clock import MS
from repro.system.builder import build_system
from repro.system.experiment import run_experiment
from repro.system.platform import critical_cores_for, table1_settings, table2_core_types

#: Default simulated window for CLI runs (milliseconds).
DEFAULT_DURATION_MS = 4.0
#: Fig. 7 sweep points from the paper.
FIG7_FREQUENCIES = (1300.0, 1400.0, 1500.0, 1600.0, 1700.0)


def _add_common_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--case", choices=("A", "B"), default="A", help="camcorder test case")
    parser.add_argument(
        "--duration-ms",
        type=float,
        default=DEFAULT_DURATION_MS,
        help="simulated duration in milliseconds (paper frame period: 33)",
    )
    parser.add_argument(
        "--traffic-scale",
        type=float,
        default=1.0,
        help="linear scale on all offered traffic (1.0 = paper rates)",
    )


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return jobs


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Orchestrator knobs shared by the multi-run commands."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the sweep (1 = run in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache (omit to disable caching)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SARA: self-aware resource allocation for heterogeneous MPSoCs "
        "(DAC 2018) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("policies", help="list registered scheduling policies")
    subparsers.add_parser("governors", help="list registered DVFS governors")

    settings = subparsers.add_parser("settings", help="print Table 1 / Table 2 settings")
    settings.add_argument("--case", choices=("A", "B"), default="A")

    run = subparsers.add_parser("run", help="run one experiment")
    _add_common_run_arguments(run)
    run.add_argument("--policy", default="priority_qos", choices=sorted(available_policies()))
    run.add_argument("--dram-model", default="transaction", choices=("transaction", "command"))
    run.add_argument("--output-json", default=None, help="save the result to this JSON file")

    compare = subparsers.add_parser("compare", help="compare several policies on one case")
    _add_common_run_arguments(compare)
    _add_sweep_arguments(compare)
    compare.add_argument(
        "--policies",
        nargs="+",
        default=["fcfs", "round_robin", "frame_rate_qos", "priority_qos"],
        choices=sorted(available_policies()),
    )
    compare.add_argument("--output-csv", default=None, help="export per-core minimum NPI rows")

    sweep = subparsers.add_parser("sweep", help="Fig. 7 DRAM frequency sweep")
    _add_common_run_arguments(sweep)
    _add_sweep_arguments(sweep)
    sweep.add_argument("--policy", default="priority_qos", choices=sorted(available_policies()))
    sweep.add_argument("--dma", default="image_processor.read", help="DMA whose priorities to report")
    sweep.add_argument(
        "--frequencies",
        nargs="+",
        type=float,
        default=list(FIG7_FREQUENCIES),
        help="DRAM I/O frequencies in MHz",
    )
    sweep.add_argument("--output-csv", default=None, help="export the Fig. 7 rows to CSV")

    dvfs = subparsers.add_parser("dvfs", help="run with a DVFS governor in the loop")
    _add_common_run_arguments(dvfs)
    dvfs.add_argument("--policy", default="priority_qos", choices=sorted(available_policies()))
    dvfs.add_argument("--governor", default="priority_pressure", choices=sorted(available_governors()))
    dvfs.add_argument(
        "--interval-us", type=float, default=100.0, help="governor decision interval (microseconds)"
    )

    energy = subparsers.add_parser("energy", help="memory-system energy of one run")
    _add_common_run_arguments(energy)
    energy.add_argument("--policy", default="priority_rowbuffer", choices=sorted(available_policies()))

    return parser


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_policies() -> int:
    print("Registered scheduling policies (memory controller and NoC arbiters):")
    for name, policy_cls in sorted(available_policies().items()):
        doc = (policy_cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22}{doc}")
    return 0


def _cmd_governors() -> int:
    print("Registered DVFS governors:")
    for name, governor_cls in sorted(available_governors().items()):
        doc = (governor_cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22}{doc}")
    return 0


def _cmd_settings(args: argparse.Namespace) -> int:
    print(f"Table 1 — simulation settings (case {args.case})")
    print(format_settings_table(table1_settings(args.case)))
    print()
    print("Table 2 — cores and target-performance types")
    print(format_settings_table(table2_core_types()))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    duration_ps = int(args.duration_ms * MS)
    result = run_experiment(
        case=args.case,
        policy=args.policy,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        dram_model=args.dram_model,
    )
    print(format_core_summary(result, critical_cores_for(args.case)))
    failing = result.failing_cores()
    print(f"failing cores: {failing or 'none'}")
    if args.output_json:
        path = save_result(result, args.output_json)
        print(f"result saved to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    duration_ps = int(args.duration_ms * MS)
    results, stats = sweep_compare_policies(
        args.policies,
        case=args.case,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(stats.summary())
    critical = critical_cores_for(args.case)
    print(f"Minimum NPI per critical core (case {args.case})")
    print(format_npi_table(results, critical))
    print()
    print("Average DRAM bandwidth")
    print(format_bandwidth_table(results))
    print()
    checks = check_policy_failures(results, args.case)
    checks += check_fig8_bandwidth_ordering(results)
    checks += check_fig9_qos_preserved(results)
    for check in checks:
        print(check)
    summary = summarize_checks(checks)
    print(f"shape checks: {summary['passed']} passed, {summary['failed']} failed")
    if args.output_csv:
        path = export_csv(min_npi_rows(results, critical), args.output_csv)
        print(f"per-core NPI rows exported to {path}")
    return 0 if summary["failed"] == 0 else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    duration_ps = int(args.duration_ms * MS)
    sweep, stats = sweep_frequencies(
        args.frequencies,
        case=args.case,
        policy=args.policy,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(stats.summary())
    table = priority_distribution_table(sweep, args.dma)
    print(f"Fig. 7 — priority-level residency of {args.dma}")
    print(format_priority_distribution(table))
    if args.output_csv:
        path = export_csv(fig7_rows(sweep, args.dma), args.output_csv)
        print(f"Fig. 7 rows exported to {path}")
    return 0


def _cmd_dvfs(args: argparse.Namespace) -> int:
    duration_ps = int(args.duration_ms * MS)
    governor = make_governor(args.governor)
    result = run_with_governor(
        governor,
        case=args.case,
        policy=args.policy,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        interval_ps=int(args.interval_us * 1_000_000),
    )
    print(f"governor: {result.governor}")
    print(f"mean DRAM frequency: {result.mean_freq_mhz:.0f} MHz")
    print(f"operating-point transitions: {result.transitions}")
    print("residency:")
    for freq, share in sorted(result.residency.items(), reverse=True):
        print(f"  {freq:6.0f} MHz  {share * 100:5.1f}%")
    print(f"memory-system energy: {result.total_energy_mj:.2f} mJ")
    print(f"failing cores: {result.failing_cores() or 'none'}")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    duration_ps = int(args.duration_ms * MS)
    system = build_system(case=args.case, policy=args.policy, traffic_scale=args.traffic_scale)
    system.run(duration_ps=duration_ps)
    print(format_energy_report(estimate_system_energy(system)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    args = build_parser().parse_args(argv)
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "governors":
        return _cmd_governors()
    if args.command == "settings":
        return _cmd_settings(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "dvfs":
        return _cmd_dvfs(args)
    if args.command == "energy":
        return _cmd_energy(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
