"""Command-line interface for the SARA reproduction — scenario-first.

``python -m repro <command>`` exposes the library around named, declarative
scenarios (bundled ones, plus any ``.json``/``.toml`` scenario file):

* ``scenarios list|show|validate`` — browse the catalog, print one scenario's
  full spec, or schema-check (and optionally smoke-run) scenario files.
* ``campaign list|show|run|report|validate`` — declarative experiment
  campaigns: named sub-grids (``fig5`` … ``fig9``) scheduled through one
  shared worker pool, reported per figure as markdown or JSON.
* ``run <scenario>`` — one experiment, printing the per-core summary and
  optionally saving the result as JSON.
* ``compare <scenario>`` — several policies on one scenario (Figs. 5/6/8/9).
* ``sweep <scenario>`` — the Fig. 7 DRAM-frequency sweep.
* ``grid <scenario>`` — the scenario's declared sweep axes (or one named
  axis set via ``--axis-set``), expanded, run and reported through the
  shared campaign report layer (``--format md|json``).
* ``dvfs`` / ``energy`` — governor-in-the-loop and energy-breakdown runs.
* ``policies`` / ``governors`` / ``settings`` — registry and platform tables.

Every run-like command accepts ``--set dotted.path=value`` overrides (e.g.
``--set platform.sim.seed=7``) and ``--plugin-module`` imports, which also
propagate into sweep worker processes — custom policies and workloads work
under ``--jobs N``.  Durations are in milliseconds of *simulated* time; the
paper's frame period is 33 ms, but a few milliseconds already show the
contended phase on a laptop-friendly budget.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.figures import export_csv, fig7_rows, min_npi_rows
from repro.analysis.metrics import priority_distribution_table
from repro.analysis.paper import (
    check_fig8_bandwidth_ordering,
    check_fig9_qos_preserved,
    check_policy_failures,
    summarize_checks,
)
from repro.analysis.report import (
    format_core_summary,
    format_priority_distribution,
    format_settings_table,
)
from repro.analysis.serialize import save_result
from repro.campaign import (
    CampaignScheduler,
    builtin_campaign_paths,
    campaign_report_md,
    campaign_report_payload,
    describe_campaign,
    format_points_table,
    get_campaign,
    points_payload,
)
from repro.dvfs.experiment import run_with_governor
from repro.dvfs.governor import available_governors, make_governor
from repro.memctrl.policies import available_policies
from repro.power import estimate_system_energy, format_energy_report
from repro.runner import (
    WorkerPool,
    sweep_compare_policies,
    sweep_frequencies,
    sweep_scenario,
)
from repro.scenario import (
    ScenarioError,
    available_scenarios,
    builtin_scenario_paths,
    critical_cores_for,
    describe_scenario,
    get_scenario,
    load_plugins,
    scenario_from_file,
)
from repro.sim.clock import MS
from repro.system.builder import build_system
from repro.system.experiment import run_experiment
from repro.system.platform import table1_settings, table2_core_types

#: Default simulated window for CLI runs (milliseconds).
DEFAULT_DURATION_MS = 4.0
#: Fig. 7 sweep points from the paper.
FIG7_FREQUENCIES = (1300.0, 1400.0, 1500.0, 1600.0, 1700.0)


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenario",
        nargs="?",
        default="case_a",
        help="scenario name (see `repro scenarios list`) or a .json/.toml scenario file",
    )


def _add_common_run_arguments(parser: argparse.ArgumentParser) -> None:
    _add_scenario_argument(parser)
    parser.add_argument(
        "--duration-ms",
        type=float,
        default=DEFAULT_DURATION_MS,
        help="simulated duration in milliseconds (paper frame period: 33)",
    )
    parser.add_argument(
        "--traffic-scale",
        type=float,
        default=None,
        help="linear scale on all offered traffic (default: the scenario's own rates)",
    )
    parser.add_argument(
        "--set",
        dest="settings",
        metavar="PATH=VALUE",
        action="append",
        default=[],
        help="override one scenario setting by dotted path, "
        "e.g. --set platform.sim.seed=7 --set workload.params.streams=16",
    )
    parser.add_argument(
        "--plugin-module",
        dest="plugin_modules",
        metavar="MODULE",
        action="append",
        default=[],
        help="import this module first (and in every sweep worker) so its "
        "registered policies/workloads/scenarios are available",
    )


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return jobs


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Orchestrator knobs shared by the multi-run commands."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the sweep (1 = run in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache (omit to disable caching)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SARA: self-aware resource allocation for heterogeneous MPSoCs "
        "(DAC 2018) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenarios = subparsers.add_parser("scenarios", help="browse and validate scenarios")
    scenario_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenario_sub.add_parser("list", help="list every known scenario")
    show = scenario_sub.add_parser("show", help="print one scenario's full spec as JSON")
    _add_scenario_argument(show)
    validate = scenario_sub.add_parser(
        "validate", help="schema-check scenario files (optionally with a smoke run)"
    )
    validate.add_argument(
        "scenarios",
        nargs="*",
        default=[],
        help="scenario names or files (default: every bundled scenario)",
    )
    validate.add_argument(
        "--smoke-ms",
        type=float,
        default=None,
        help="also run each scenario for this many simulated milliseconds",
    )
    validate.add_argument(
        "--smoke-traffic-scale",
        type=float,
        default=0.1,
        help="traffic scale for the smoke runs (default 0.1)",
    )

    campaign = subparsers.add_parser(
        "campaign", help="declarative experiment campaigns (named sub-grids)"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_sub.add_parser("list", help="list every bundled campaign")
    campaign_show = campaign_sub.add_parser(
        "show", help="print one campaign's full spec as JSON"
    )
    campaign_show.add_argument(
        "campaign", help="campaign name (see `repro campaign list`) or a .json/.toml file"
    )
    for subcommand, description in (
        ("run", "run a campaign's sub-grids through one shared worker pool"),
        ("report", "like run, but print only the rendered report"),
    ):
        campaign_run = campaign_sub.add_parser(subcommand, help=description)
        campaign_run.add_argument(
            "campaign",
            help="campaign name (see `repro campaign list`) or a .json/.toml file",
        )
        campaign_run.add_argument(
            "--subgrid",
            dest="subgrids",
            metavar="NAME",
            action="append",
            default=None,
            help="run only this sub-grid (repeatable; default: all sub-grids)",
        )
        campaign_run.add_argument(
            "--duration-ms",
            type=float,
            default=None,
            help="override every sub-grid's simulated duration (default: the "
            "campaign's own declarations)",
        )
        campaign_run.add_argument(
            "--traffic-scale",
            type=float,
            default=None,
            help="override the offered-traffic scale for every sub-grid",
        )
        campaign_run.add_argument(
            "--format", choices=("md", "json"), default="md", help="report format"
        )
        campaign_run.add_argument(
            "--output", default=None, help="write the report to this file instead of stdout"
        )
        campaign_run.add_argument(
            "--strict",
            action="store_true",
            help="exit non-zero when any declared check fails",
        )
        campaign_run.add_argument(
            "--plugin-module",
            dest="plugin_modules",
            metavar="MODULE",
            action="append",
            default=[],
            help="import this module first (and in every sweep worker)",
        )
        _add_sweep_arguments(campaign_run)
    campaign_validate = campaign_sub.add_parser(
        "validate", help="schema-check campaign files (optionally with a smoke run)"
    )
    campaign_validate.add_argument(
        "campaigns",
        nargs="*",
        default=[],
        help="campaign names or files (default: every bundled campaign)",
    )
    campaign_validate.add_argument(
        "--smoke-ms",
        type=float,
        default=None,
        help="also run one sub-grid of each campaign for this many simulated ms",
    )
    campaign_validate.add_argument(
        "--smoke-subgrid",
        default=None,
        help="sub-grid for the smoke run (default: the fewest-point one)",
    )
    campaign_validate.add_argument(
        "--smoke-traffic-scale",
        type=float,
        default=0.1,
        help="traffic scale for the smoke runs (default 0.1)",
    )

    subparsers.add_parser("policies", help="list registered scheduling policies")
    subparsers.add_parser("governors", help="list registered DVFS governors")

    settings = subparsers.add_parser("settings", help="print Table 1 / Table 2 settings")
    _add_scenario_argument(settings)

    run = subparsers.add_parser("run", help="run one scenario")
    _add_common_run_arguments(run)
    run.add_argument("--policy", default=None, help="scheduling policy (default: the scenario's)")
    run.add_argument("--dram-model", default=None, choices=("transaction", "command"))
    run.add_argument("--output-json", default=None, help="save the result to this JSON file")

    compare = subparsers.add_parser("compare", help="compare several policies on one scenario")
    _add_common_run_arguments(compare)
    _add_sweep_arguments(compare)
    compare.add_argument(
        "--policies",
        nargs="+",
        default=None,
        help="policies to compare (default: the scenario's policy sweep axis, "
        "or the paper's Fig. 5 set)",
    )
    compare.add_argument("--output-csv", default=None, help="export per-core minimum NPI rows")

    sweep = subparsers.add_parser("sweep", help="Fig. 7 DRAM frequency sweep")
    _add_common_run_arguments(sweep)
    _add_sweep_arguments(sweep)
    sweep.add_argument("--policy", default=None, help="scheduling policy (default: the scenario's)")
    sweep.add_argument("--dma", default="image_processor.read", help="DMA whose priorities to report")
    sweep.add_argument(
        "--frequencies",
        nargs="+",
        type=float,
        default=None,
        help="DRAM I/O frequencies in MHz (default: the scenario's frequency "
        "sweep axis, or the paper's Fig. 7 points)",
    )
    sweep.add_argument("--output-csv", default=None, help="export the Fig. 7 rows to CSV")

    grid = subparsers.add_parser(
        "grid", help="run the sweep axes a scenario declares (its full grid)"
    )
    _add_common_run_arguments(grid)
    _add_sweep_arguments(grid)
    grid.add_argument(
        "--axis-set",
        default=None,
        help="named axis set to expand (for scenarios whose sweep declares "
        "named sets; default: every set)",
    )
    grid.add_argument(
        "--format", choices=("md", "json"), default="md", help="report format"
    )

    dvfs = subparsers.add_parser("dvfs", help="run with a DVFS governor in the loop")
    _add_common_run_arguments(dvfs)
    dvfs.add_argument("--policy", default=None, help="scheduling policy (default: the scenario's)")
    dvfs.add_argument("--governor", default="priority_pressure", choices=sorted(available_governors()))
    dvfs.add_argument(
        "--interval-us", type=float, default=100.0, help="governor decision interval (microseconds)"
    )

    energy = subparsers.add_parser("energy", help="memory-system energy of one run")
    _add_common_run_arguments(energy)
    energy.add_argument(
        "--policy", default="priority_rowbuffer", help="scheduling policy for the energy run"
    )

    return parser


@contextmanager
def _sweep_pool(args: argparse.Namespace):
    """A warm worker pool for the multi-run commands (None when jobs=1).

    One CLI invocation may fan several sweeps through the orchestrator (and
    future campaign-style commands will chain them); creating the pool here,
    once, means every sweep of the invocation shares a single spawn cost.
    """
    if args.jobs == 1:
        yield None
        return
    with WorkerPool(args.jobs, plugin_modules=args.plugin_modules) as pool:
        yield pool


def _parse_settings(pairs: Sequence[str]) -> List[tuple]:
    settings = []
    for pair in pairs:
        if "=" not in pair:
            raise ScenarioError(f"--set expects PATH=VALUE, got '{pair}'")
        path, value = pair.split("=", 1)
        settings.append((path.strip(), value.strip()))
    return settings


def _check_policy(name: Optional[str]) -> None:
    """Validate a policy name against the (possibly plugin-extended) registry."""
    if name is not None and name not in available_policies():
        known = ", ".join(sorted(available_policies()))
        raise ScenarioError(f"unknown scheduling policy '{name}' (known: {known})")


def _resolved_scenario(args: argparse.Namespace):
    scenario = get_scenario(args.scenario)
    settings = _parse_settings(args.settings)
    if settings:
        scenario = scenario.apply_settings(dict(settings))
    return scenario


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_scenarios_list() -> int:
    print("Known scenarios (bundled and runtime-registered):")
    for name in available_scenarios():
        print(f"  {describe_scenario(name)}")
    print("\nRun one with:  python -m repro run <scenario>")
    return 0


def _cmd_scenarios_show(args: argparse.Namespace) -> int:
    print(get_scenario(args.scenario).to_json())
    return 0


def _cmd_scenarios_validate(args: argparse.Namespace) -> int:
    refs = list(args.scenarios) or sorted(builtin_scenario_paths())
    failures = 0
    for ref in refs:
        label = str(ref)
        try:
            if isinstance(ref, str) and ref.endswith((".json", ".toml")):
                scenario = scenario_from_file(ref)
            else:
                scenario = get_scenario(ref)
            scenario.build_workload()  # resolves the workload registry too
            if args.smoke_ms is not None:
                result = run_experiment(
                    scenario=scenario,
                    duration_ps=int(args.smoke_ms * MS),
                    traffic_scale=args.smoke_traffic_scale,
                    keep_trace=False,
                )
                detail = (
                    f"smoke run OK ({result.served_transactions} transactions, "
                    f"policy {result.policy})"
                )
            else:
                detail = "schema OK"
            print(f"[PASS] {scenario.name:<26}{detail}")
        except (ScenarioError, ValueError) as exc:
            failures += 1
            print(f"[FAIL] {label}: {exc}")
    print(f"validated {len(refs)} scenario(s), {failures} failure(s)")
    return 1 if failures else 0


def _cmd_campaign_list() -> int:
    print("Bundled campaigns:")
    for name in builtin_campaign_paths():
        print(f"  {describe_campaign(name)}")
    print("\nRun one with:  python -m repro campaign run <campaign> [--jobs N]")
    return 0


def _cmd_campaign_show(args: argparse.Namespace) -> int:
    print(get_campaign(args.campaign).to_json())
    return 0


def _cmd_campaign_run(args: argparse.Namespace, report_only: bool) -> int:
    campaign = get_campaign(args.campaign)
    scheduler = CampaignScheduler(
        campaign,
        duration_ms=args.duration_ms,
        traffic_scale=args.traffic_scale,
        plugin_modules=args.plugin_modules,
    )
    with _sweep_pool(args) as pool:
        outcome = scheduler.run(
            subgrids=args.subgrids,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            pool=pool,
        )
    failed_checks = sum(
        1
        for subgrid in outcome.subgrids()
        for _, check in outcome.checks(subgrid.name)
        if not check.passed
    )
    if not report_only:
        print(f"campaign {campaign.name}: {outcome.stats.summary()}")
        for name, stats in outcome.subgrid_stats.items():
            print(f"  {name}: {stats.summary()}")
        print()
    report = (
        json.dumps(campaign_report_payload(outcome), indent=2)
        if args.format == "json"
        else campaign_report_md(outcome)
    )
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report + "\n")
        print(f"report written to {path}")
    else:
        print(report)
    if args.strict and failed_checks:
        print(f"{failed_checks} declared check(s) failed", file=sys.stderr)
        return 1
    return 0


def _smoke_subgrid(campaign, requested: Optional[str]) -> str:
    """The sub-grid a campaign smoke run executes (the fewest-point one)."""
    if requested is not None:
        return campaign.subgrid(requested).name
    return min(campaign.subgrids, key=lambda s: len(s.points())).name


def _cmd_campaign_validate(args: argparse.Namespace) -> int:
    refs = list(args.campaigns) or sorted(builtin_campaign_paths())
    failures = 0
    for ref in refs:
        try:
            campaign = get_campaign(ref)
            total = campaign.validate(deep=True)
            detail = f"{len(campaign.subgrids)} sub-grid(s), {total} point(s)"
            if args.smoke_ms is not None:
                subgrid = _smoke_subgrid(campaign, args.smoke_subgrid)
                scheduler = CampaignScheduler(
                    campaign,
                    duration_ms=args.smoke_ms,
                    traffic_scale=args.smoke_traffic_scale,
                )
                outcome = scheduler.run(subgrids=[subgrid])
                executed = outcome.subgrid_stats[subgrid].total
                detail += f"; smoke ran {subgrid} ({executed} point(s)) OK"
            print(f"[PASS] {campaign.name:<18}{detail}")
        except (ScenarioError, ValueError) as exc:
            failures += 1
            print(f"[FAIL] {ref}: {exc}")
    print(f"validated {len(refs)} campaign(s), {failures} failure(s)")
    return 1 if failures else 0


def _cmd_policies() -> int:
    print("Registered scheduling policies (memory controller and NoC arbiters):")
    for name, policy_cls in sorted(available_policies().items()):
        doc = (policy_cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22}{doc}")
    return 0


def _cmd_governors() -> int:
    print("Registered DVFS governors:")
    for name, governor_cls in sorted(available_governors().items()):
        doc = (governor_cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22}{doc}")
    return 0


def _cmd_settings(args: argparse.Namespace) -> int:
    settings = table1_settings(args.scenario)
    print(f"Table 1 — simulation settings (scenario {settings['scenario']})")
    print(format_settings_table(settings))
    print()
    print("Table 2 — cores and target-performance types")
    print(format_settings_table(table2_core_types()))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    duration_ps = int(args.duration_ms * MS)
    result = run_experiment(
        scenario=scenario,
        policy=args.policy,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        dram_model=args.dram_model,
    )
    print(format_core_summary(result, critical_cores_for(scenario)))
    failing = result.failing_cores()
    print(f"failing cores: {failing or 'none'}")
    if args.output_json:
        path = save_result(result, args.output_json)
        print(f"result saved to {path}")
    return 0


def _default_policies(scenario) -> List[str]:
    axis = scenario.sweep_axis("policy")
    if axis:
        return list(axis)
    return ["fcfs", "round_robin", "frame_rate_qos", "priority_qos"]


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _resolved_scenario(args)
    policies = args.policies or _default_policies(scenario)
    for policy in policies:
        _check_policy(policy)
    duration_ps = int(args.duration_ms * MS)
    with _sweep_pool(args) as pool:
        results, stats = sweep_compare_policies(
            policies,
            scenario=scenario,
            duration_ps=duration_ps,
            traffic_scale=args.traffic_scale,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            pool=pool,
            plugin_modules=args.plugin_modules,
        )
    print(stats.summary())
    critical = critical_cores_for(scenario)
    print(f"Minimum NPI per critical core (scenario {scenario.name})")
    print(format_points_table(results, ("min_npi", "failing"), critical))
    print()
    print("Average DRAM bandwidth")
    print(format_points_table(results, ("bandwidth", "row_hit", "latency"), critical))
    print()
    checks = check_policy_failures(results, scenario)
    checks += check_fig8_bandwidth_ordering(results)
    if scenario.name == "case_a":
        checks += check_fig9_qos_preserved(results)
    for check in checks:
        print(check)
    summary = summarize_checks(checks)
    print(f"shape checks: {summary['passed']} passed, {summary['failed']} failed")
    if args.output_csv:
        path = export_csv(min_npi_rows(results, critical), args.output_csv)
        print(f"per-core NPI rows exported to {path}")
    return 0 if summary["failed"] == 0 else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    frequencies = args.frequencies
    if frequencies is None:
        axis = scenario.sweep_axis("platform.sim.dram.io_freq_mhz")
        frequencies = [float(f) for f in axis] if axis else list(FIG7_FREQUENCIES)
    duration_ps = int(args.duration_ms * MS)
    with _sweep_pool(args) as pool:
        sweep, stats = sweep_frequencies(
            frequencies,
            scenario=scenario,
            policy=args.policy,
            duration_ps=duration_ps,
            traffic_scale=args.traffic_scale,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            pool=pool,
            plugin_modules=args.plugin_modules,
        )
    print(stats.summary())
    critical = critical_cores_for(scenario)
    print(f"Sweep points (scenario {scenario.name})")
    print(
        format_points_table(
            {f"{freq:g} MHz": result for freq, result in sweep.items()},
            ("bandwidth", "latency", "min_npi"),
            critical,
        )
    )
    print()
    table = priority_distribution_table(sweep, args.dma)
    print(f"Fig. 7 — priority-level residency of {args.dma}")
    print(format_priority_distribution(table))
    if args.output_csv:
        path = export_csv(fig7_rows(sweep, args.dma), args.output_csv)
        print(f"Fig. 7 rows exported to {path}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    scenario = _resolved_scenario(args)
    if not scenario.sweep:
        print(f"scenario '{scenario.name}' declares no sweep axes")
        return 1
    if args.axis_set is not None:
        axis_sets: List[Optional[str]] = [args.axis_set]
    elif scenario.sweep_is_named:
        axis_sets = list(scenario.sweep_axis_sets())
    else:
        axis_sets = [None]
    duration_ps = int(args.duration_ms * MS)
    critical = critical_cores_for(scenario)
    payload = {"scenario": scenario.name, "axis_sets": {}}
    with _sweep_pool(args) as pool:
        for axis_set in axis_sets:
            results, stats = sweep_scenario(
                scenario,
                duration_ps=duration_ps,
                traffic_scale=args.traffic_scale,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                pool=pool,
                plugin_modules=args.plugin_modules,
                axis_set=axis_set,
            )
            set_label = axis_set or "declared axes"
            if args.format == "json":
                payload["axis_sets"][set_label] = {
                    "rows": points_payload(results, cores=critical),
                    "stats": {
                        "total": stats.total,
                        "cache_hits": stats.cache_hits,
                        "executed": stats.executed,
                        "phases": stats.phases(),
                    },
                }
            else:
                print(stats.summary())
                print(f"Grid over {scenario.name}'s {set_label} ({len(results)} points)")
                print(format_points_table(results, cores=critical))
                print()
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_dvfs(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    duration_ps = int(args.duration_ms * MS)
    governor = make_governor(args.governor)
    result = run_with_governor(
        governor,
        scenario=scenario,
        policy=args.policy,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        interval_ps=int(args.interval_us * 1_000_000),
    )
    print(f"governor: {result.governor}")
    print(f"mean DRAM frequency: {result.mean_freq_mhz:.0f} MHz")
    print(f"operating-point transitions: {result.transitions}")
    print("residency:")
    for freq, share in sorted(result.residency.items(), reverse=True):
        print(f"  {freq:6.0f} MHz  {share * 100:5.1f}%")
    print(f"memory-system energy: {result.total_energy_mj:.2f} mJ")
    print(f"failing cores: {result.failing_cores() or 'none'}")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    duration_ps = int(args.duration_ms * MS)
    system = build_system(
        scenario=scenario, policy=args.policy, traffic_scale=args.traffic_scale
    )
    system.run(duration_ps=duration_ps)
    print(format_energy_report(estimate_system_energy(system)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    args = build_parser().parse_args(argv)
    try:
        load_plugins(getattr(args, "plugin_modules", ()))
        if args.command == "scenarios":
            if args.scenarios_command == "list":
                return _cmd_scenarios_list()
            if args.scenarios_command == "show":
                return _cmd_scenarios_show(args)
            if args.scenarios_command == "validate":
                return _cmd_scenarios_validate(args)
        if args.command == "campaign":
            if args.campaign_command == "list":
                return _cmd_campaign_list()
            if args.campaign_command == "show":
                return _cmd_campaign_show(args)
            if args.campaign_command == "run":
                return _cmd_campaign_run(args, report_only=False)
            if args.campaign_command == "report":
                return _cmd_campaign_run(args, report_only=True)
            if args.campaign_command == "validate":
                return _cmd_campaign_validate(args)
        if args.command == "policies":
            return _cmd_policies()
        if args.command == "governors":
            return _cmd_governors()
        if args.command == "settings":
            return _cmd_settings(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "grid":
            return _cmd_grid(args)
        if args.command == "dvfs":
            return _cmd_dvfs(args)
        if args.command == "energy":
            return _cmd_energy(args)
    except (ScenarioError, ImportError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
