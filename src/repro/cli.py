"""Command-line interface for the SARA reproduction — scenario-first.

``python -m repro <command>`` exposes the library around named, declarative
scenarios (bundled ones, plus any ``.json``/``.toml`` scenario file):

* ``scenarios list|show|validate`` — browse the catalog, print one scenario's
  full spec, or schema-check (and optionally smoke-run) scenario files.
* ``campaign list|show|run|report|narrative|validate`` — declarative
  experiment campaigns: named sub-grids (``fig5`` … ``fig9``) scheduled
  through one shared worker pool, reported per figure as markdown or JSON.
  With ``--store-dir`` a run records its manifest and rendered artifacts
  into the results store; a warm ``report`` is then served straight from
  the store (zero scenario resolutions) and ``narrative`` maintains the
  generated ``EXPERIMENTS.md`` claims section with measured numbers.
* ``store list|show|verify|gc`` — inspect and maintain a results store
  (content-addressed artifacts: ``verify`` re-hashes every blob and
  cross-checks recorded cache keys, ``gc`` sweeps unreferenced blobs —
  ``--dry-run`` reports without deleting; ``list --format json`` emits
  machine-readable summaries for scripting).
* ``serve`` — the results service: a dependency-free asyncio HTTP server
  over a store (``/manifests``, ``/artifacts/<sha256>``,
  ``/reports/<fingerprint>/<name>``, ``/healthz``) with ETag = content
  hash, so recorded reports are cacheable URLs served with zero scenario
  resolutions.  See ``docs/results_service.md``.
* ``run <scenario>`` — one experiment, printing the per-core summary and
  optionally saving the result as JSON.
* ``compare <scenario>`` — several policies on one scenario (Figs. 5/6/8/9).
* ``sweep <scenario>`` — the Fig. 7 DRAM-frequency sweep.
* ``grid <scenario>`` — the scenario's declared sweep axes (or one named
  axis set via ``--axis-set``), expanded, run and reported through the
  shared campaign report layer (``--format md|json``); ``--store-dir``
  records the run and serves matching re-runs straight from the store.
* ``dvfs`` / ``energy`` — governor-in-the-loop and energy-breakdown runs.
* ``policies`` / ``governors`` / ``settings`` — registry and platform tables.

Every run-like command accepts ``--set dotted.path=value`` overrides (e.g.
``--set platform.sim.seed=7``) and ``--plugin-module`` imports, which also
propagate into sweep worker processes — custom policies and workloads work
under ``--jobs N``.  Durations are in milliseconds of *simulated* time; the
paper's frame period is 33 ms, but a few milliseconds already show the
contended phase on a laptop-friendly budget.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from contextlib import contextmanager, nullcontext
from datetime import datetime, timezone
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, List, Optional, Sequence

from repro.analysis.figures import export_csv, fig7_rows, min_npi_rows
from repro.analysis.metrics import priority_distribution_table
from repro.analysis.paper import (
    check_fig8_bandwidth_ordering,
    check_fig9_qos_preserved,
    check_policy_failures,
    summarize_checks,
)
from repro.analysis.report import (
    format_core_summary,
    format_priority_distribution,
    format_settings_table,
)
from repro.analysis.serialize import save_result
from repro.campaign import (
    CampaignScheduler,
    builtin_campaign_paths,
    campaign_report_md,
    campaign_report_payload,
    describe_campaign,
    format_points_table,
    get_campaign,
    points_payload,
)
from repro.dvfs.experiment import run_with_governor
from repro.dvfs.governor import available_governors, make_governor
from repro.memctrl.policies import available_policies
from repro.power import estimate_system_energy, format_energy_report
from repro.runner import (
    FailurePolicy,
    InProcessExecutor,
    PoolExecutor,
    QueueExecutor,
    ResultCache,
    WorkerPool,
    run_sweep,
    scenario_grid_specs,
    sweep_compare_policies,
    sweep_frequencies,
)
from repro.scenario import (
    ScenarioError,
    available_scenarios,
    builtin_scenario_paths,
    critical_cores_for,
    describe_scenario,
    get_scenario,
    load_plugins,
    scenario_from_file,
)
from repro.sim.clock import MS
from repro.obs import TraceSession, summarize_events
from repro.store import (
    AmbiguousFingerprintError,
    ArtifactRef,
    GridSection,
    Provenance,
    ResultsStore,
    StoreError,
    describe_manifest,
    manifest_summary,
    narrative_md,
    replace_section,
    run_fingerprint,
    spec_hash,
)
from repro.system.builder import build_system
from repro.system.experiment import run_experiment
from repro.system.platform import table1_settings, table2_core_types

#: Default simulated window for CLI runs (milliseconds).
DEFAULT_DURATION_MS = 4.0
#: Fig. 7 sweep points from the paper.
FIG7_FREQUENCIES = (1300.0, 1400.0, 1500.0, 1600.0, 1700.0)


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenario",
        nargs="?",
        default="case_a",
        help="scenario name (see `repro scenarios list`) or a .json/.toml scenario file",
    )


def _add_common_run_arguments(parser: argparse.ArgumentParser) -> None:
    _add_scenario_argument(parser)
    parser.add_argument(
        "--duration-ms",
        type=float,
        default=DEFAULT_DURATION_MS,
        help="simulated duration in milliseconds (paper frame period: 33)",
    )
    parser.add_argument(
        "--traffic-scale",
        type=float,
        default=None,
        help="linear scale on all offered traffic (default: the scenario's own rates)",
    )
    parser.add_argument(
        "--set",
        dest="settings",
        metavar="PATH=VALUE",
        action="append",
        default=[],
        help="override one scenario setting by dotted path, "
        "e.g. --set platform.sim.seed=7 --set workload.params.streams=16",
    )
    parser.add_argument(
        "--plugin-module",
        dest="plugin_modules",
        metavar="MODULE",
        action="append",
        default=[],
        help="import this module first (and in every sweep worker) so its "
        "registered policies/workloads/scenarios are available",
    )


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return jobs


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Orchestrator knobs shared by the multi-run commands."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the sweep (1 = run in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache (omit to disable caching)",
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-dir",
        default=None,
        help="results-store directory: record this run's rendered report and "
        "manifest, and serve matching reports straight from the store "
        "(omit to disable the store)",
    )


def _add_log_level_argument(
    parser: argparse.ArgumentParser, default: str = "warning"
) -> None:
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=default,
        help=f"stderr threshold for the repro.* loggers (default: {default})",
    )


def _configure_logging(level: str) -> None:
    """Attach one stderr handler to the ``repro`` logger hierarchy.

    The libraries log through ``repro.campaign`` / ``repro.serve`` etc. and
    install only NullHandlers themselves; the CLI is the place that decides
    log lines actually reach a stream.  Idempotent so tests can call
    commands repeatedly in one process.
    """
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level.upper()))
    if not any(
        isinstance(handler, logging.StreamHandler) for handler in root.handlers
    ):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SARA: self-aware resource allocation for heterogeneous MPSoCs "
        "(DAC 2018) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenarios = subparsers.add_parser("scenarios", help="browse and validate scenarios")
    scenario_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenario_sub.add_parser("list", help="list every known scenario")
    show = scenario_sub.add_parser("show", help="print one scenario's full spec as JSON")
    _add_scenario_argument(show)
    validate = scenario_sub.add_parser(
        "validate", help="schema-check scenario files (optionally with a smoke run)"
    )
    validate.add_argument(
        "scenarios",
        nargs="*",
        default=[],
        help="scenario names or files (default: every bundled scenario)",
    )
    validate.add_argument(
        "--smoke-ms",
        type=float,
        default=None,
        help="also run each scenario for this many simulated milliseconds",
    )
    validate.add_argument(
        "--smoke-traffic-scale",
        type=float,
        default=0.1,
        help="traffic scale for the smoke runs (default 0.1)",
    )

    campaign = subparsers.add_parser(
        "campaign", help="declarative experiment campaigns (named sub-grids)"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_sub.add_parser("list", help="list every bundled campaign")
    campaign_show = campaign_sub.add_parser(
        "show", help="print one campaign's full spec as JSON"
    )
    campaign_show.add_argument(
        "campaign", help="campaign name (see `repro campaign list`) or a .json/.toml file"
    )
    for subcommand, description in (
        ("run", "run a campaign's sub-grids through one shared worker pool"),
        ("report", "like run, but print only the rendered report"),
    ):
        campaign_run = campaign_sub.add_parser(subcommand, help=description)
        campaign_run.add_argument(
            "campaign",
            help="campaign name (see `repro campaign list`) or a .json/.toml file",
        )
        campaign_run.add_argument(
            "--subgrid",
            dest="subgrids",
            metavar="NAME",
            action="append",
            default=None,
            help="run only this sub-grid (repeatable; default: all sub-grids)",
        )
        campaign_run.add_argument(
            "--duration-ms",
            type=float,
            default=None,
            help="override every sub-grid's simulated duration (default: the "
            "campaign's own declarations)",
        )
        campaign_run.add_argument(
            "--traffic-scale",
            type=float,
            default=None,
            help="override the offered-traffic scale for every sub-grid",
        )
        campaign_run.add_argument(
            "--format", choices=("md", "json"), default="md", help="report format"
        )
        campaign_run.add_argument(
            "--output", default=None, help="write the report to this file instead of stdout"
        )
        campaign_run.add_argument(
            "--strict",
            action="store_true",
            help="exit non-zero when any declared check fails",
        )
        campaign_run.add_argument(
            "--plugin-module",
            dest="plugin_modules",
            metavar="MODULE",
            action="append",
            default=[],
            help="import this module first (and in every sweep worker)",
        )
        campaign_run.add_argument(
            "--executor",
            choices=("auto", "inprocess", "pool", "queue"),
            default="auto",
            help="execution backend: in-process, warm worker pool, or the "
            "lease-based file queue (auto picks pool when --jobs > 1)",
        )
        campaign_run.add_argument(
            "--timeout-s",
            type=float,
            default=None,
            help="per-point wall-clock timeout (a point over budget counts "
            "as a failed attempt)",
        )
        campaign_run.add_argument(
            "--max-attempts",
            type=_positive_int,
            default=None,
            help="attempts per point before giving up; with more than one, "
            "a point that exhausts them is quarantined in the report "
            "instead of aborting the campaign",
        )
        campaign_run.add_argument(
            "--resume",
            action="store_true",
            help="resume a crashed campaign: needs the same --cache-dir; "
            "already-recorded points are served from the cache and only "
            "the missing ones simulate",
        )
        campaign_run.add_argument(
            "--dry-run",
            action="store_true",
            help="print the plan — per-sub-grid counts of points to "
            "simulate, points reused from the store's point index, and "
            "cache hits — without running anything",
        )
        campaign_run.add_argument(
            "--no-reuse",
            dest="reuse",
            action="store_false",
            help="skip the store's point index and simulate every cold "
            "point live (reuse is on by default when --store-dir is given)",
        )
        campaign_run.add_argument(
            "--trace",
            action="store_true",
            help="record a structured execution trace (scheduler, executor, "
            "workers, engine phases) as store artifacts referenced from the "
            "manifest; requires --store-dir, never changes results "
            "(inspect with `repro trace <fingerprint>`)",
        )
        _add_log_level_argument(campaign_run)
        _add_sweep_arguments(campaign_run)
        _add_store_argument(campaign_run)
    campaign_narrative = campaign_sub.add_parser(
        "narrative",
        help="render a campaign's claims + measured outcomes as a markdown "
        "narrative (served from the store when warm, else run live)",
    )
    campaign_narrative.add_argument(
        "campaign", help="campaign name (see `repro campaign list`) or a .json/.toml file"
    )
    campaign_narrative.add_argument(
        "--duration-ms",
        type=float,
        default=None,
        help="override every sub-grid's simulated duration (default: the "
        "campaign's own declarations)",
    )
    campaign_narrative.add_argument(
        "--traffic-scale",
        type=float,
        default=None,
        help="override the offered-traffic scale for every sub-grid",
    )
    campaign_narrative.add_argument(
        "--output",
        default=None,
        help="update this markdown file's generated section in place "
        "(e.g. EXPERIMENTS.md; default: print to stdout)",
    )
    campaign_narrative.add_argument(
        "--plugin-module",
        dest="plugin_modules",
        metavar="MODULE",
        action="append",
        default=[],
        help="import this module first (and in every sweep worker)",
    )
    _add_sweep_arguments(campaign_narrative)
    _add_store_argument(campaign_narrative)
    campaign_validate = campaign_sub.add_parser(
        "validate", help="schema-check campaign files (optionally with a smoke run)"
    )
    campaign_validate.add_argument(
        "campaigns",
        nargs="*",
        default=[],
        help="campaign names or files (default: every bundled campaign)",
    )
    campaign_validate.add_argument(
        "--smoke-ms",
        type=float,
        default=None,
        help="also run one sub-grid of each campaign for this many simulated ms",
    )
    campaign_validate.add_argument(
        "--smoke-subgrid",
        default=None,
        help="sub-grid for the smoke run (default: the fewest-point one)",
    )
    campaign_validate.add_argument(
        "--smoke-traffic-scale",
        type=float,
        default=0.1,
        help="traffic scale for the smoke runs (default 0.1)",
    )

    store = subparsers.add_parser(
        "store", help="inspect and maintain a results store (manifests + artifacts)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_descriptions = {
        "list": "list every recorded manifest",
        "show": "print one manifest's full JSON",
        "verify": "re-hash every artifact against its content address",
        "gc": "delete artifact blobs no manifest references",
        "index": "rebuild the store-wide point index from the manifests",
    }
    store_parsers = {}
    for subcommand, description in store_descriptions.items():
        store_parsers[subcommand] = store_sub.add_parser(subcommand, help=description)
        store_parsers[subcommand].add_argument(
            "--store-dir",
            default=".repro-store",
            help="results-store directory (default: .repro-store)",
        )
    store_parsers["list"].add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json: machine-readable manifest summaries)",
    )
    store_parsers["show"].add_argument(
        "fingerprint", help="manifest fingerprint (a unique prefix is enough)"
    )
    store_parsers["verify"].add_argument(
        "--cache-dir",
        default=None,
        help="also check every recorded cache key is still present in this "
        "result cache",
    )
    store_parsers["gc"].add_argument(
        "--dry-run",
        action="store_true",
        help="report the blobs gc would delete without touching disk",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a results store over HTTP (manifests, artifacts, reports; "
        "ETag = content hash)",
    )
    serve.add_argument(
        "--store-dir",
        default=".repro-store",
        help="results-store directory to serve (default: .repro-store)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8787, help="bind port (0 = OS-assigned)"
    )
    _add_log_level_argument(serve, default="info")

    trace = subparsers.add_parser(
        "trace",
        help="summarize a recorded run's execution trace (per span name and "
        "per sub-grid; recorded by `campaign run --trace`)",
    )
    trace.add_argument(
        "fingerprint", help="manifest fingerprint (a unique prefix is enough)"
    )
    trace.add_argument(
        "--store-dir",
        default=".repro-store",
        help="results-store directory (default: .repro-store)",
    )

    subparsers.add_parser("policies", help="list registered scheduling policies")
    subparsers.add_parser("governors", help="list registered DVFS governors")

    settings = subparsers.add_parser("settings", help="print Table 1 / Table 2 settings")
    _add_scenario_argument(settings)

    run = subparsers.add_parser("run", help="run one scenario")
    _add_common_run_arguments(run)
    run.add_argument("--policy", default=None, help="scheduling policy (default: the scenario's)")
    run.add_argument("--dram-model", default=None, choices=("transaction", "command"))
    run.add_argument("--output-json", default=None, help="save the result to this JSON file")

    compare = subparsers.add_parser("compare", help="compare several policies on one scenario")
    _add_common_run_arguments(compare)
    _add_sweep_arguments(compare)
    compare.add_argument(
        "--policies",
        nargs="+",
        default=None,
        help="policies to compare (default: the scenario's policy sweep axis, "
        "or the paper's Fig. 5 set)",
    )
    compare.add_argument("--output-csv", default=None, help="export per-core minimum NPI rows")

    sweep = subparsers.add_parser("sweep", help="Fig. 7 DRAM frequency sweep")
    _add_common_run_arguments(sweep)
    _add_sweep_arguments(sweep)
    sweep.add_argument("--policy", default=None, help="scheduling policy (default: the scenario's)")
    sweep.add_argument("--dma", default="image_processor.read", help="DMA whose priorities to report")
    sweep.add_argument(
        "--frequencies",
        nargs="+",
        type=float,
        default=None,
        help="DRAM I/O frequencies in MHz (default: the scenario's frequency "
        "sweep axis, or the paper's Fig. 7 points)",
    )
    sweep.add_argument("--output-csv", default=None, help="export the Fig. 7 rows to CSV")

    grid = subparsers.add_parser(
        "grid", help="run the sweep axes a scenario declares (its full grid)"
    )
    _add_common_run_arguments(grid)
    _add_sweep_arguments(grid)
    grid.add_argument(
        "--axis-set",
        default=None,
        help="named axis set to expand (for scenarios whose sweep declares "
        "named sets; default: every set)",
    )
    grid.add_argument(
        "--format", choices=("md", "json"), default="md", help="report format"
    )
    _add_store_argument(grid)

    dvfs = subparsers.add_parser("dvfs", help="run with a DVFS governor in the loop")
    _add_common_run_arguments(dvfs)
    dvfs.add_argument("--policy", default=None, help="scheduling policy (default: the scenario's)")
    dvfs.add_argument("--governor", default="priority_pressure", choices=sorted(available_governors()))
    dvfs.add_argument(
        "--interval-us", type=float, default=100.0, help="governor decision interval (microseconds)"
    )

    energy = subparsers.add_parser("energy", help="memory-system energy of one run")
    _add_common_run_arguments(energy)
    energy.add_argument(
        "--policy", default="priority_rowbuffer", help="scheduling policy for the energy run"
    )

    return parser


@contextmanager
def _sweep_pool(args: argparse.Namespace):
    """A warm worker pool for the multi-run commands (None when jobs=1).

    One CLI invocation may fan several sweeps through the orchestrator (and
    future campaign-style commands will chain them); creating the pool here,
    once, means every sweep of the invocation shares a single spawn cost.
    """
    if args.jobs == 1:
        yield None
        return
    with WorkerPool(args.jobs, plugin_modules=args.plugin_modules) as pool:
        yield pool


def _store_for(args: argparse.Namespace) -> Optional[ResultsStore]:
    """The results store a command should record to / serve from, if any."""
    if getattr(args, "store_dir", None):
        return ResultsStore(args.store_dir)
    return None


def _utc_stamp() -> str:
    """The caller-supplied provenance timestamp (stores never read clocks)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _write_output(report: str, output: Optional[str]) -> int:
    """Print a report, or write it to ``--output`` (creating parent dirs).

    Every ``--output``-shaped flag funnels through here so a path like
    ``reports/2026/report.md`` works without a pre-existing directory tree.
    """
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report + "\n")
        print(f"report written to {path}")
    else:
        print(report)
    return 0


def _parse_settings(pairs: Sequence[str]) -> List[tuple]:
    settings = []
    for pair in pairs:
        if "=" not in pair:
            raise ScenarioError(f"--set expects PATH=VALUE, got '{pair}'")
        path, value = pair.split("=", 1)
        settings.append((path.strip(), value.strip()))
    return settings


def _check_policy(name: Optional[str]) -> None:
    """Validate a policy name against the (possibly plugin-extended) registry."""
    if name is not None and name not in available_policies():
        known = ", ".join(sorted(available_policies()))
        raise ScenarioError(f"unknown scheduling policy '{name}' (known: {known})")


def _resolved_scenario(args: argparse.Namespace):
    scenario = get_scenario(args.scenario)
    settings = _parse_settings(args.settings)
    if settings:
        scenario = scenario.apply_settings(dict(settings))
    return scenario


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_scenarios_list() -> int:
    print("Known scenarios (bundled and runtime-registered):")
    for name in available_scenarios():
        print(f"  {describe_scenario(name)}")
    print("\nRun one with:  python -m repro run <scenario>")
    return 0


def _cmd_scenarios_show(args: argparse.Namespace) -> int:
    print(get_scenario(args.scenario).to_json())
    return 0


def _cmd_scenarios_validate(args: argparse.Namespace) -> int:
    refs = list(args.scenarios) or sorted(builtin_scenario_paths())
    failures = 0
    for ref in refs:
        label = str(ref)
        try:
            if isinstance(ref, str) and ref.endswith((".json", ".toml")):
                scenario = scenario_from_file(ref)
            else:
                scenario = get_scenario(ref)
            scenario.build_workload()  # resolves the workload registry too
            if args.smoke_ms is not None:
                result = run_experiment(
                    scenario=scenario,
                    duration_ps=int(args.smoke_ms * MS),
                    traffic_scale=args.smoke_traffic_scale,
                    keep_trace=False,
                )
                detail = (
                    f"smoke run OK ({result.served_transactions} transactions, "
                    f"policy {result.policy})"
                )
            else:
                detail = "schema OK"
            print(f"[PASS] {scenario.name:<26}{detail}")
        except (ScenarioError, ValueError) as exc:
            failures += 1
            print(f"[FAIL] {label}: {exc}")
    print(f"validated {len(refs)} scenario(s), {failures} failure(s)")
    return 1 if failures else 0


def _cmd_campaign_list() -> int:
    print("Bundled campaigns:")
    for name in builtin_campaign_paths():
        print(f"  {describe_campaign(name)}")
    print("\nRun one with:  python -m repro campaign run <campaign> [--jobs N]")
    return 0


def _cmd_campaign_show(args: argparse.Namespace) -> int:
    print(get_campaign(args.campaign).to_json())
    return 0


def _strict_exit(failed_checks: int, strict: bool) -> int:
    if strict and failed_checks:
        print(f"{failed_checks} declared check(s) failed", file=sys.stderr)
        return 1
    return 0


def _dry_run_line(name: str, counts: Dict[str, int]) -> str:
    return (
        f"  {name}: {counts['points']} point(s) — "
        f"{counts['to_simulate']} to simulate, "
        f"{counts['reused']} reused from store, "
        f"{counts['cache_hits']} cache hit(s)"
    )


def _cmd_campaign_run(args: argparse.Namespace, report_only: bool) -> int:
    _configure_logging(args.log_level)
    campaign = get_campaign(args.campaign)
    scheduler = CampaignScheduler(
        campaign,
        duration_ms=args.duration_ms,
        traffic_scale=args.traffic_scale,
        plugin_modules=args.plugin_modules,
    )
    store = _store_for(args)
    if args.trace and store is None:
        print(
            "--trace needs --store-dir: the trace artifacts are recorded in "
            "the results store and referenced from the run's manifest",
            file=sys.stderr,
        )
        return 2
    if args.dry_run:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
        plan = scheduler.dry_run(
            args.subgrids, cache=cache, store=store if args.reuse else None
        )
        print(f"campaign {campaign.name} plan (dry run):")
        totals = {"points": 0, "to_simulate": 0, "reused": 0, "cache_hits": 0}
        for name, counts in plan.items():
            for key in totals:
                totals[key] += counts[key]
            print(_dry_run_line(name, counts))
        if len(plan) > 1:
            print(_dry_run_line("total", totals))
        return 0
    if report_only and store is not None:
        # The store-backed fast path: a matching recorded run serves its
        # rendered report as a pure read — no scenario is resolved, no
        # RunSpec is built, no simulation can possibly start.  Any miss
        # (no manifest, missing/tampered artifact) falls through to the
        # live path below, which re-records.  The manifest is loaded once:
        # it carries both the artifact reference and the recorded check
        # outcomes --strict needs.
        manifest = store.get_manifest(scheduler.fingerprint(args.subgrids))
        ref = (
            manifest.artifacts.get(
                "report_json" if args.format == "json" else "report_md"
            )
            if manifest is not None
            else None
        )
        if ref is not None:
            try:
                served = store.read_artifact(ref)
            except StoreError:
                served = None  # tampered/missing blob: render live instead
            if served is not None:
                failed_checks = sum(
                    1
                    for entry in manifest.subgrids
                    for check in entry.checks
                    if not check.passed
                )
                _write_output(served, args.output)
                return _strict_exit(failed_checks, args.strict)
    if args.resume:
        if not args.cache_dir:
            print(
                "--resume needs --cache-dir: the result cache is what holds "
                "the points the crashed run already recorded",
                file=sys.stderr,
            )
            return 2
        fingerprint = scheduler.fingerprint(args.subgrids)
        partial = store.partial(fingerprint) if store is not None else None
        if partial is not None:
            print(
                f"resuming: {partial.get('recorded', 0)}/"
                f"{partial.get('total', '?')} point(s) already recorded"
            )
        elif store is not None and store.get_manifest(fingerprint) is not None:
            print("run already recorded; nothing to resume (cache serves every point)")
        else:
            print(
                "warning: no partial journal for this run; resuming from "
                "whatever the cache holds",
                file=sys.stderr,
            )
    failure_policy = None
    if args.timeout_s is not None or args.max_attempts is not None:
        attempts = args.max_attempts if args.max_attempts is not None else 1
        failure_policy = FailurePolicy(
            timeout_s=args.timeout_s,
            max_attempts=attempts,
            on_exhausted="quarantine" if attempts > 1 else "raise",
        )
    executor = None
    if args.executor == "inprocess":
        executor = InProcessExecutor()
    elif args.executor == "pool":
        executor = PoolExecutor(jobs=args.jobs)
    elif args.executor == "queue":
        queue_dir = (
            str(Path(args.store_dir) / "queue")
            if getattr(args, "store_dir", None)
            else None
        )
        executor = QueueExecutor(queue_dir=queue_dir, jobs=args.jobs)
    # An explicit executor owns its own parallelism — don't also pay for a
    # warm pool the sweep would ignore.
    pool_context = _sweep_pool(args) if executor is None else nullcontext(None)
    # The trace session must exist before any worker spawns (workers pick
    # the journal directory up from the environment) and is closed on every
    # exit path; on success the scheduler finalized it into the store first.
    trace_session = TraceSession() if args.trace else None
    try:
        with pool_context as pool:
            outcome = scheduler.run(
                subgrids=args.subgrids,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                pool=pool,
                store=store,
                recorded_at=_utc_stamp() if store is not None else "",
                executor=executor,
                failure_policy=failure_policy,
                reuse=args.reuse,
                trace=trace_session,
            )
    finally:
        if trace_session is not None:
            trace_session.close()
    failed_checks = sum(
        1
        for subgrid in outcome.subgrids()
        for _, check in outcome.checks(subgrid.name)
        if not check.passed
    )
    if not report_only:
        print(f"campaign {campaign.name}: {outcome.stats.summary()}")
        for name, stats in outcome.subgrid_stats.items():
            print(f"  {name}: {stats.summary()}")
        if args.trace:
            fingerprint = scheduler.fingerprint(args.subgrids)
            print(
                f"trace recorded: repro trace {fingerprint[:12]} "
                f"--store-dir {args.store_dir}"
            )
        print()
    for name, holes in outcome.quarantined.items():
        for hole in holes:
            print(
                f"quarantined {name}/{hole.label}: {hole.error} "
                f"({hole.attempts} attempt(s))",
                file=sys.stderr,
            )
    report = (
        json.dumps(campaign_report_payload(outcome), indent=2)
        if args.format == "json"
        else campaign_report_md(outcome)
    )
    _write_output(report, args.output)
    return _strict_exit(failed_checks, args.strict)


def _smoke_subgrid(campaign, requested: Optional[str]) -> str:
    """The sub-grid a campaign smoke run executes (the fewest-point one)."""
    if requested is not None:
        return campaign.subgrid(requested).name
    return min(campaign.subgrids, key=lambda s: len(s.points())).name


def _cmd_campaign_validate(args: argparse.Namespace) -> int:
    refs = list(args.campaigns) or sorted(builtin_campaign_paths())
    failures = 0
    for ref in refs:
        try:
            campaign = get_campaign(ref)
            total = campaign.validate(deep=True)
            detail = f"{len(campaign.subgrids)} sub-grid(s), {total} point(s)"
            if args.smoke_ms is not None:
                subgrid = _smoke_subgrid(campaign, args.smoke_subgrid)
                scheduler = CampaignScheduler(
                    campaign,
                    duration_ms=args.smoke_ms,
                    traffic_scale=args.smoke_traffic_scale,
                )
                outcome = scheduler.run(subgrids=[subgrid])
                executed = outcome.subgrid_stats[subgrid].total
                detail += f"; smoke ran {subgrid} ({executed} point(s)) OK"
            print(f"[PASS] {campaign.name:<18}{detail}")
        except (ScenarioError, ValueError) as exc:
            failures += 1
            print(f"[FAIL] {ref}: {exc}")
    print(f"validated {len(refs)} campaign(s), {failures} failure(s)")
    return 1 if failures else 0


def _run_recording(
    args: argparse.Namespace, scheduler: CampaignScheduler, store: ResultsStore
):
    """Run a full campaign with the store hook and return its manifest."""
    with _sweep_pool(args) as pool:
        scheduler.run(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            pool=pool,
            store=store,
            recorded_at=_utc_stamp(),
        )
    return store.get_manifest(scheduler.fingerprint())


def _cmd_campaign_narrative(args: argparse.Namespace) -> int:
    campaign = get_campaign(args.campaign)
    scheduler = CampaignScheduler(
        campaign,
        duration_ms=args.duration_ms,
        traffic_scale=args.traffic_scale,
        plugin_modules=args.plugin_modules,
    )
    store = _store_for(args)
    manifest = store.get_manifest(scheduler.fingerprint()) if store is not None else None
    if manifest is None:
        if store is None:
            # No store requested: record into a scratch store just to build
            # the manifest the narrative renders from, then discard it.
            with TemporaryDirectory(prefix="repro-store-") as scratch:
                manifest = _run_recording(args, scheduler, ResultsStore(scratch))
        else:
            manifest = _run_recording(args, scheduler, store)
    narrative = narrative_md(manifest)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        existing = path.read_text() if path.is_file() else ""
        path.write_text(replace_section(existing, campaign.name, narrative))
        print(f"narrative section '{campaign.name}' written to {path}")
    else:
        print(narrative)
    return 0


def _cmd_store_list(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store_dir)
    manifests = store.manifests()
    if args.format == "json":
        payload = {
            "store_dir": str(store.directory),
            "size_bytes": store.size_bytes(),
            "manifests": [manifest_summary(manifest) for manifest in manifests],
        }
        print(json.dumps(payload, indent=2))
        return 0
    if not manifests:
        print(f"no manifests in {store.directory}")
        return 0
    print(
        f"Results store {store.directory}: {len(manifests)} manifest(s), "
        f"{store.size_bytes() / 1024:.1f} KiB"
    )
    for manifest in manifests:
        print(f"  {describe_manifest(manifest)}")
    print("\nInspect one with:  python -m repro store show <fingerprint-prefix>")
    return 0


def _cmd_store_show(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store_dir)
    try:
        print(store.find_manifest(args.fingerprint).to_json())
    except AmbiguousFingerprintError as exc:
        # Surface the actual candidates, one describe-line each, so the user
        # can pick a longer prefix without a second `store list` round trip.
        print(
            f"fingerprint prefix '{args.fingerprint}' matches "
            f"{len(exc.matches)} manifests:",
            file=sys.stderr,
        )
        for fingerprint in exc.matches:
            manifest = store.get_manifest(fingerprint)
            # describe_manifest leads with the 12-char short fingerprint —
            # exactly the ambiguous prefix — so swap in the full one here.
            detail = (
                describe_manifest(manifest).split("  ", 1)[1]
                if manifest is not None
                else "(unreadable manifest)"
            )
            print(f"  {fingerprint}  {detail}", file=sys.stderr)
        print("disambiguate with more characters", file=sys.stderr)
        return 2
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store_dir)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    problems = store.verify(cache=cache)
    # Count manifest *files* (verify examined unreadable ones too, so the
    # total must include them) but artifact references only from readable
    # manifests.
    manifest_files = (
        sorted(store.manifest_dir.glob("*.json")) if store.manifest_dir.is_dir() else []
    )
    artifacts = sum(len(manifest.artifact_refs()) for manifest in store.manifests())
    for problem in problems:
        print(f"[FAIL] {problem}")
    print(
        f"verified {len(manifest_files)} manifest(s), {artifacts} artifact(s), "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


def _cmd_store_index(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store_dir)
    points, specs = store.rebuild_index()
    manifests = (
        len(sorted(store.manifest_dir.glob("*.json")))
        if store.manifest_dir.is_dir()
        else 0
    )
    print(
        f"store index: rebuilt from {manifests} manifest(s) — "
        f"{points} point(s), {specs} spec mapping(s)"
    )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store_dir)
    if args.dry_run:
        orphans, kept = store.unreferenced_blobs()
        for blob in orphans:
            print(f"  would remove {blob.relative_to(store.directory)}")
        print(
            f"store gc --dry-run: would remove {len(orphans)} unreferenced "
            f"blob(s), keep {kept} (nothing deleted)"
        )
        return 0
    removed, kept = store.gc()
    print(f"store gc: removed {removed} unreferenced blob(s), kept {kept}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: every other command stays free of the service stack.
    from repro.serve import run_server

    _configure_logging(args.log_level)
    return run_server(args.store_dir, host=args.host, port=args.port)


def _format_us(value: float) -> str:
    """Microseconds as a right-aligned millisecond figure for the tables."""
    return f"{value / 1e3:10.3f} ms"


def _cmd_trace(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store_dir)
    try:
        manifest = store.find_manifest(args.fingerprint)
    except StoreError as exc:
        # Covers both "no match" and the ambiguous-prefix case: the
        # exception message already lists the candidate fingerprints.
        print(str(exc), file=sys.stderr)
        return 2
    stats = manifest.stats or {}
    trace_info = stats.get("trace")
    if not isinstance(trace_info, dict) or "events_jsonl" not in trace_info:
        print(
            f"manifest {manifest.fingerprint[:12]} has no recorded trace; "
            "re-record the run with `repro campaign run ... --trace "
            f"--store-dir {args.store_dir}`",
            file=sys.stderr,
        )
        return 2
    ref = ArtifactRef.from_dict(
        trace_info["events_jsonl"], "stats.trace.events_jsonl"
    )
    try:
        raw = store.read_artifact(ref)
    except StoreError as exc:
        print(f"trace events artifact unreadable: {exc}", file=sys.stderr)
        return 2
    events = [json.loads(line) for line in raw.splitlines() if line.strip()]
    summary = summarize_events(events)

    print(f"trace for {manifest.fingerprint[:12]} ({manifest.provenance.name}):")
    print(f"  processes: {', '.join(summary['processes']) or 'none'}")
    print(f"  {summary['spans']} span(s), {summary['instants']} instant(s)")
    phases = summary["phases"]
    if phases:
        width = max(len(name) for name in phases)
        print("  spans by name:")
        for name in sorted(phases):
            entry = phases[name]
            print(
                f"    {name:<{width}}  {entry['count']:>5}x  "
                f"total {_format_us(entry['total_us'])}  "
                f"max {_format_us(entry['max_us'])}"
            )
    subgrids = summary["subgrids"]
    if subgrids:
        width = max(len(name) for name in subgrids)
        print("  by sub-grid:")
        for name in sorted(subgrids):
            entry = subgrids[name]
            print(
                f"    {name:<{width}}  {entry['points']:>4} point(s)  "
                f"{entry['spans']:>4} span(s)  "
                f"total {_format_us(entry['total_us'])}"
            )
    # The cpu/wall split the manifest records for the whole sweep: summed
    # per-process simulation CPU time vs the parallel critical path.
    sim_cpu = (stats.get("phases") or {}).get("sim_cpu", 0.0)
    print(
        f"  sweep timing: sim_cpu {sim_cpu:.2f}s (cpu, summed) | "
        f"sim_wall {stats.get('sim_wall_s', 0.0):.2f}s (wall, critical path) | "
        f"elapsed {stats.get('elapsed_s', 0.0):.2f}s"
    )
    trace_json = trace_info.get("trace_json", {})
    if isinstance(trace_json, dict) and "digest" in trace_json:
        print(
            "  Perfetto: load artifact "
            f"{trace_json['digest'][:12]}… (store artifact, ext "
            f"{trace_json.get('ext', 'json')}) at https://ui.perfetto.dev"
        )
    return 0


def _cmd_policies() -> int:
    print("Registered scheduling policies (memory controller and NoC arbiters):")
    for name, policy_cls in sorted(available_policies().items()):
        doc = (policy_cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22}{doc}")
    return 0


def _cmd_governors() -> int:
    print("Registered DVFS governors:")
    for name, governor_cls in sorted(available_governors().items()):
        doc = (governor_cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22}{doc}")
    return 0


def _cmd_settings(args: argparse.Namespace) -> int:
    settings = table1_settings(args.scenario)
    print(f"Table 1 — simulation settings (scenario {settings['scenario']})")
    print(format_settings_table(settings))
    print()
    print("Table 2 — cores and target-performance types")
    print(format_settings_table(table2_core_types()))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    duration_ps = int(args.duration_ms * MS)
    result = run_experiment(
        scenario=scenario,
        policy=args.policy,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        dram_model=args.dram_model,
    )
    print(format_core_summary(result, critical_cores_for(scenario)))
    failing = result.failing_cores()
    print(f"failing cores: {failing or 'none'}")
    if args.output_json:
        path = save_result(result, args.output_json)
        print(f"result saved to {path}")
    return 0


def _default_policies(scenario) -> List[str]:
    axis = scenario.sweep_axis("policy")
    if axis:
        return list(axis)
    return ["fcfs", "round_robin", "frame_rate_qos", "priority_qos"]


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _resolved_scenario(args)
    policies = args.policies or _default_policies(scenario)
    for policy in policies:
        _check_policy(policy)
    duration_ps = int(args.duration_ms * MS)
    with _sweep_pool(args) as pool:
        results, stats = sweep_compare_policies(
            policies,
            scenario=scenario,
            duration_ps=duration_ps,
            traffic_scale=args.traffic_scale,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            pool=pool,
            plugin_modules=args.plugin_modules,
        )
    print(stats.summary())
    critical = critical_cores_for(scenario)
    print(f"Minimum NPI per critical core (scenario {scenario.name})")
    print(format_points_table(results, ("min_npi", "failing"), critical))
    print()
    print("Average DRAM bandwidth")
    print(format_points_table(results, ("bandwidth", "row_hit", "latency"), critical))
    print()
    checks = check_policy_failures(results, scenario)
    checks += check_fig8_bandwidth_ordering(results)
    if scenario.name == "case_a":
        checks += check_fig9_qos_preserved(results)
    for check in checks:
        print(check)
    summary = summarize_checks(checks)
    print(f"shape checks: {summary['passed']} passed, {summary['failed']} failed")
    if args.output_csv:
        path = export_csv(min_npi_rows(results, critical), args.output_csv)
        print(f"per-core NPI rows exported to {path}")
    return 0 if summary["failed"] == 0 else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    frequencies = args.frequencies
    if frequencies is None:
        axis = scenario.sweep_axis("platform.sim.dram.io_freq_mhz")
        frequencies = [float(f) for f in axis] if axis else list(FIG7_FREQUENCIES)
    duration_ps = int(args.duration_ms * MS)
    with _sweep_pool(args) as pool:
        sweep, stats = sweep_frequencies(
            frequencies,
            scenario=scenario,
            policy=args.policy,
            duration_ps=duration_ps,
            traffic_scale=args.traffic_scale,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            pool=pool,
            plugin_modules=args.plugin_modules,
        )
    print(stats.summary())
    critical = critical_cores_for(scenario)
    print(f"Sweep points (scenario {scenario.name})")
    print(
        format_points_table(
            {f"{freq:g} MHz": result for freq, result in sweep.items()},
            ("bandwidth", "latency", "min_npi"),
            critical,
        )
    )
    print()
    table = priority_distribution_table(sweep, args.dma)
    print(f"Fig. 7 — priority-level residency of {args.dma}")
    print(format_priority_distribution(table))
    if args.output_csv:
        path = export_csv(fig7_rows(sweep, args.dma), args.output_csv)
        print(f"Fig. 7 rows exported to {path}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    scenario = _resolved_scenario(args)
    if not scenario.sweep:
        print(f"scenario '{scenario.name}' declares no sweep axes")
        return 1
    if args.axis_set is not None:
        axis_sets: List[Optional[str]] = [args.axis_set]
    elif scenario.sweep_is_named:
        axis_sets = list(scenario.sweep_axis_sets())
    else:
        axis_sets = [None]
    store = _store_for(args)
    fingerprint = None
    if store is not None:
        # The grid fast path mirrors the campaign one: the fingerprint is a
        # hash of the scenario's dictionary form (with every --set override
        # baked in) plus the effective run knobs, so a recorded grid serves
        # its rendering without expanding or resolving a single point.
        fingerprint = run_fingerprint(
            "grid",
            scenario.to_dict(),
            duration_ms=args.duration_ms,
            traffic_scale=args.traffic_scale,
            selection=(args.axis_set,) if args.axis_set is not None else None,
            plugin_modules=args.plugin_modules,
        )
        served = store.serve(
            fingerprint, "report_json" if args.format == "json" else "report_md"
        )
        if served is not None:
            print(served)
            return 0
    duration_ps = int(args.duration_ms * MS)
    critical = critical_cores_for(scenario)
    payload: dict = {"scenario": scenario.name, "axis_sets": {}}
    lines: List[str] = []
    sections: List[GridSection] = []
    with _sweep_pool(args) as pool:
        for axis_set in axis_sets:
            specs = scenario_grid_specs(
                scenario,
                duration_ps=duration_ps,
                traffic_scale=args.traffic_scale,
                plugin_modules=args.plugin_modules,
                axis_set=axis_set,
            )
            ordered, stats = run_sweep(
                specs, jobs=args.jobs, cache_dir=args.cache_dir, pool=pool
            )
            results = dict(zip((spec.label or "" for spec in specs), ordered))
            set_label = axis_set or "declared axes"
            table = format_points_table(results, cores=critical)
            # Both renderings are built every run (they are string
            # formatting over in-memory results): the requested one prints,
            # and the store records both so either format serves warm later.
            payload["axis_sets"][set_label] = {
                "rows": points_payload(results, cores=critical),
                "stats": {
                    "total": stats.total,
                    "cache_hits": stats.cache_hits,
                    "executed": stats.executed,
                    "phases": stats.phases(),
                },
            }
            section = [
                stats.summary(),
                f"Grid over {scenario.name}'s {set_label} ({len(results)} points)",
                table,
                "",
            ]
            lines.extend(section)
            if args.format != "json":
                # Markdown streams per axis set as it always did — a long
                # multi-set grid shows progress, not silence until the end.
                print("\n".join(section))
            if store is not None:
                sections.append(
                    GridSection(
                        label=set_label,
                        scenario_name=scenario.name,
                        critical_cores=tuple(critical),
                        points=tuple(
                            (dict(spec.settings), spec.label or "", result)
                            for spec, result in zip(specs, ordered)
                        ),
                        cache_keys=tuple(spec.key() for spec in specs),
                        rendered_md=table,
                    )
                )
    report_md = "\n".join(lines)
    report_json = json.dumps(payload, indent=2)
    if args.format == "json":
        print(report_json)
    if store is not None:
        store.record_grid(
            sections,
            fingerprint=fingerprint,
            provenance=Provenance(
                kind="grid",
                name=scenario.name,
                spec_hash=spec_hash(scenario.to_dict()),
                created_at=_utc_stamp(),
                duration_ms=args.duration_ms,
                traffic_scale=args.traffic_scale,
                selection=(args.axis_set,) if args.axis_set is not None else None,
                plugin_modules=tuple(args.plugin_modules),
            ),
            report_md=report_md,
            report_json=report_json,
        )
    return 0


def _cmd_dvfs(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    duration_ps = int(args.duration_ms * MS)
    governor = make_governor(args.governor)
    result = run_with_governor(
        governor,
        scenario=scenario,
        policy=args.policy,
        duration_ps=duration_ps,
        traffic_scale=args.traffic_scale,
        interval_ps=int(args.interval_us * 1_000_000),
    )
    print(f"governor: {result.governor}")
    print(f"mean DRAM frequency: {result.mean_freq_mhz:.0f} MHz")
    print(f"operating-point transitions: {result.transitions}")
    print("residency:")
    for freq, share in sorted(result.residency.items(), reverse=True):
        print(f"  {freq:6.0f} MHz  {share * 100:5.1f}%")
    print(f"memory-system energy: {result.total_energy_mj:.2f} mJ")
    print(f"failing cores: {result.failing_cores() or 'none'}")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    _check_policy(args.policy)
    scenario = _resolved_scenario(args)
    duration_ps = int(args.duration_ms * MS)
    system = build_system(
        scenario=scenario, policy=args.policy, traffic_scale=args.traffic_scale
    )
    system.run(duration_ps=duration_ps)
    print(format_energy_report(estimate_system_energy(system)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    args = build_parser().parse_args(argv)
    try:
        load_plugins(getattr(args, "plugin_modules", ()))
        if args.command == "scenarios":
            if args.scenarios_command == "list":
                return _cmd_scenarios_list()
            if args.scenarios_command == "show":
                return _cmd_scenarios_show(args)
            if args.scenarios_command == "validate":
                return _cmd_scenarios_validate(args)
        if args.command == "campaign":
            if args.campaign_command == "list":
                return _cmd_campaign_list()
            if args.campaign_command == "show":
                return _cmd_campaign_show(args)
            if args.campaign_command == "run":
                return _cmd_campaign_run(args, report_only=False)
            if args.campaign_command == "report":
                return _cmd_campaign_run(args, report_only=True)
            if args.campaign_command == "narrative":
                return _cmd_campaign_narrative(args)
            if args.campaign_command == "validate":
                return _cmd_campaign_validate(args)
        if args.command == "store":
            if args.store_command == "list":
                return _cmd_store_list(args)
            if args.store_command == "show":
                return _cmd_store_show(args)
            if args.store_command == "verify":
                return _cmd_store_verify(args)
            if args.store_command == "gc":
                return _cmd_store_gc(args)
            if args.store_command == "index":
                return _cmd_store_index(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "policies":
            return _cmd_policies()
        if args.command == "governors":
            return _cmd_governors()
        if args.command == "settings":
            return _cmd_settings(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "grid":
            return _cmd_grid(args)
        if args.command == "dvfs":
            return _cmd_dvfs(args)
        if args.command == "energy":
            return _cmd_energy(args)
    except (ScenarioError, ImportError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
