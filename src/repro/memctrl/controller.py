"""The memory-controller front-end driving the DRAM device."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dram.device import DramDevice
from repro.memctrl.aging import AgingTracker
from repro.memctrl.columnar import ColumnarStore, make_selector
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import QueueClass, Transaction
from repro.sim.config import MemoryControllerConfig
from repro.sim.engine import Engine
from repro.sim.stats import RunningMean

CompletionHandler = Callable[[Transaction], None]


class MemoryController:
    """Queues transactions per class and issues them to DRAM channels.

    Each DRAM channel is scheduled independently: whenever a channel's data
    bus becomes free the controller asks its scheduling policy to choose among
    the visible transactions destined to that channel and issues the winner.
    Completions are delivered to per-DMA handlers registered by the system
    builder, which is how read data and write acknowledgements find their way
    back to the cores' performance meters.
    """

    def __init__(
        self,
        engine: Engine,
        dram: DramDevice,
        policy: SchedulingPolicy,
        config: Optional[MemoryControllerConfig] = None,
    ) -> None:
        self.engine = engine
        self.dram = dram
        self.policy = policy
        self.config = config or MemoryControllerConfig()
        # The scheduler window bounds how many pending transactions per queue
        # the policy may reorder among.  By default it is effectively
        # unbounded: the controller is work-conserving over everything the
        # DMAs' outstanding-request windows allow in flight, which stands in
        # for the credit-based flow control a real front-end uses to keep its
        # 42 entries fed with the most urgent traffic.
        window = self.config.scheduler_window_entries or 1_000_000
        self.queues: Dict[QueueClass, TransactionQueue] = {
            queue_class: TransactionQueue(queue_class.value, window)
            for queue_class in QueueClass
        }
        # Incrementally maintained per-channel candidate index: for each
        # channel, an insertion-ordered map per queue class.  With the default
        # (unbounded) scheduler window this lets _candidates_for_channel hand
        # the policy its candidate list without rescanning every queue on
        # every scheduling decision; a bounded window falls back to the
        # windowed scan.
        self._pending_by_channel: List[Dict[QueueClass, Dict[int, Transaction]]] = [
            {queue_class: {} for queue_class in QueueClass}
            for _ in range(dram.config.channels)
        ]
        self._unbounded_window = self.config.scheduler_window_entries is None
        # Incrementally maintained count of queued transactions; has_space()
        # runs on every NoC forward attempt, so it must not sum queue lengths.
        self._pending_count = 0
        self.aging = AgingTracker(
            self.config.aging_threshold_cycles, dram.timing.clock_period_ps
        )
        self._channel_busy: List[bool] = [False] * dram.config.channels
        self._channel_of: Dict[int, int] = {}
        self._completion_handlers: Dict[str, CompletionHandler] = {}
        self._global_handlers: List[CompletionHandler] = []
        self._space_listeners: List[Callable[[], None]] = []

        self.served_transactions = 0
        self.served_bytes = 0
        self.latency_stats = RunningMean()
        self.per_source_bytes: Dict[str, int] = {}
        self.per_source_served: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_dma(self, dma_name: str, handler: CompletionHandler) -> None:
        """Route completions of transactions issued by ``dma_name`` to a handler."""
        if dma_name in self._completion_handlers:
            raise ValueError(f"DMA '{dma_name}' is already registered")
        self._completion_handlers[dma_name] = handler

    def add_completion_listener(self, handler: CompletionHandler) -> None:
        """Add a handler invoked for every completed transaction."""
        self._global_handlers.append(handler)

    def add_space_listener(self, handler: Callable[[], None]) -> None:
        """Register a callback fired whenever a controller entry frees up.

        The NoC uses this for back-pressure: the root router stalls while the
        controller's entries (42 in Table 1) are occupied and resumes — with a
        fresh priority arbitration — as soon as space becomes available.
        """
        self._space_listeners.append(handler)

    def has_space(self) -> bool:
        """Whether the front-end can accept another transaction right now."""
        return self._pending_count < self.config.total_entries

    # ------------------------------------------------------------------ #
    # Transaction flow
    # ------------------------------------------------------------------ #
    def enqueue(self, transaction: Transaction) -> None:
        """Accept a transaction from the NoC into its class queue."""
        now = self.engine.now_ps
        queue = self.queues[transaction.queue_class]
        queue.push(transaction, now)
        self._pending_count += 1
        channel = self.dram.channel_of(transaction.address)
        self._channel_of[transaction.uid] = channel
        if self._unbounded_window:
            self._pending_by_channel[channel][transaction.queue_class][
                transaction.uid
            ] = transaction
        self._try_schedule(channel)

    def pending_transactions(self) -> int:
        """Total transactions waiting in all class queues."""
        return self._pending_count

    def _candidates_for_channel(self, channel: int) -> List[Transaction]:
        if self._unbounded_window:
            # Fast path: the per-channel index already holds exactly the
            # pending transactions of this channel, in the same order the
            # windowed scan would produce (queue-class order, FIFO within a
            # class).
            candidates: List[Transaction] = []
            for bucket in self._pending_by_channel[channel].values():
                if bucket:
                    candidates.extend(bucket.values())
            return candidates
        candidates = []
        for queue in self.queues.values():
            for transaction in queue.visible():
                if self._channel_of[transaction.uid] == channel:
                    candidates.append(transaction)
        return candidates

    def _is_row_hit(self, transaction: Transaction) -> bool:
        return self.dram.is_row_hit(transaction.address)

    def _try_schedule(self, channel: int) -> None:
        if self._channel_busy[channel]:
            return
        candidates = self._candidates_for_channel(channel)
        if not candidates:
            return
        context = SchedulingContext(
            now_ps=self.engine.now_ps,
            is_row_hit=self._is_row_hit,
            aging=self.aging,
            row_buffer_delta=self.config.row_buffer_delta,
        )
        chosen = self.policy.select(candidates, context)
        self.queues[chosen.queue_class].remove(chosen)
        if self._unbounded_window:
            self._pending_by_channel[channel][chosen.queue_class].pop(chosen.uid)
        self._pending_count -= 1
        self._issue(chosen, channel)

    def _issue(self, transaction: Transaction, channel: int) -> None:
        now = self.engine.now_ps
        transaction.issued_ps = now
        result = self.dram.service(
            transaction.address, transaction.size_bytes, transaction.is_write, now
        )
        transaction.row_hit = result.row_hit
        transaction.completed_ps = result.completion_ps
        self._channel_busy[channel] = True
        self.engine.schedule_at(result.completion_ps, self._on_complete, transaction, channel)

    def _on_complete(self, transaction: Transaction, channel: int) -> None:
        self._channel_busy[channel] = False
        self._channel_of.pop(transaction.uid, None)
        self.served_transactions += 1
        self.served_bytes += transaction.size_bytes
        self.per_source_bytes[transaction.source] = (
            self.per_source_bytes.get(transaction.source, 0) + transaction.size_bytes
        )
        self.per_source_served[transaction.source] = (
            self.per_source_served.get(transaction.source, 0) + 1
        )
        if transaction.latency_ps is not None:
            self.latency_stats.add(transaction.latency_ps)

        handler = self._completion_handlers.get(transaction.dma)
        if handler is not None:
            handler(transaction)
        for listener in self._global_handlers:
            listener(transaction)
        self._try_schedule(channel)
        for space_listener in self._space_listeners:
            space_listener()

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def average_latency_ps(self) -> float:
        return self.latency_stats.mean

    def queue_occupancy(self) -> Dict[str, int]:
        return {queue.name: len(queue) for queue in self.queues.values()}


class BatchedMemoryController(MemoryController):
    """The batched kernel's controller: columnar candidate stores per channel.

    Behaviour is bit-identical to :class:`MemoryController` — same queues,
    counters, completion routing and policy decisions — but the per-channel
    candidate sets live in :class:`~repro.memctrl.columnar.ColumnarStore`
    columns so scheduling decisions are vectorized, and each address is
    decoded exactly once at enqueue (the scalar path decodes at enqueue, per
    row-hit probe and again at issue).  Row-buffer-aware policies read a
    per-channel open-row mirror instead of probing the banks per candidate;
    the mirror is valid because the transaction-level :class:`Bank` latches
    the accessed row on every access and nothing else closes rows (the
    builder never pairs this controller with the command-level DRAM backend,
    whose refresh logic does precharge banks).

    Policies without a vectorized selector (ATLAS, TCM, SMS, EDF,
    user-registered ones) receive a scalar candidate list rebuilt in exactly
    the order the scalar controller would produce.
    """

    def __init__(
        self,
        engine: Engine,
        dram: DramDevice,
        policy: SchedulingPolicy,
        config: Optional[MemoryControllerConfig] = None,
    ) -> None:
        super().__init__(engine, dram, policy, config)
        if not self._unbounded_window:
            raise ValueError(
                "BatchedMemoryController requires the unbounded scheduler window; "
                "use the scalar MemoryController for bounded-window configs"
            )
        if not hasattr(dram, "service_prepared"):
            raise ValueError(
                "BatchedMemoryController requires the transaction-level DRAM device"
            )
        channels = dram.config.channels
        banks_per_rank = dram.config.banks_per_rank
        bank_count = dram.config.ranks_per_channel * banks_per_rank
        self._banks_per_rank = banks_per_rank
        # Per-channel open-row mirror, indexed by flat bank slot
        # (rank * banks_per_rank + bank); -1 marks a precharged bank.  Plain
        # lists: the selectors gather a handful of entries per decision, and
        # Python-int reads keep the small-window loops allocation-free.
        self._open_rows: List[List[int]] = [
            [-1] * bank_count for _ in range(channels)
        ]
        self._codebook: Dict[str, int] = {}
        self._selector = make_selector(
            policy,
            aging=self.aging,
            row_buffer_delta=self.config.row_buffer_delta,
            open_rows=self._open_rows,
        )
        self._stores = [
            ColumnarStore.for_selector(
                self._selector, self._codebook, sorted_mode=True, track_rows=True
            )
            for _ in range(channels)
        ]
        self._mapper = dram.mapper
        # Per-class occupancy counters replace the scalar TransactionQueue
        # bookkeeping: the columnar stores already hold the pending
        # transactions, so the queues would only duplicate membership for
        # the occupancy report.
        self._class_occupancy: Dict[QueueClass, int] = {
            queue_class: 0 for queue_class in QueueClass
        }
        self._serve_direct = getattr(self._selector, "serve_direct", None)

    def enqueue(self, transaction: Transaction) -> None:
        """Accept a transaction from the NoC into its class queue."""
        now = self.engine._now_ps
        # Inlined TransactionQueue.push stamping (see queue.py): the sort key
        # is refreshed explicitly because BatchTransaction has no __setattr__
        # coherency hook.
        transaction.enqueued_ps = now
        transaction.sort_key = (now, transaction.uid)
        decoded = self._mapper.decode(transaction.address)
        channel = decoded.channel
        store = self._stores[channel]
        serve_direct = self._serve_direct
        if serve_direct is not None and not store.live and not self._channel_busy[channel]:
            # Empty-idle bypass: an idle channel with an empty store issues
            # the arriving transaction immediately, so the store round-trip
            # (and the transient occupancy counts, net zero within this
            # synchronous call) can be skipped; only the selector's policy
            # state is committed.  This is _schedule_from's issue tail with
            # the decoded coordinates used directly.
            bank_slot = decoded.rank * self._banks_per_rank + decoded.bank
            if serve_direct(store, transaction, now, channel, bank_slot, decoded.row):
                transaction.issued_ps = now
                completion_ps, row_hit = self.dram.service_prepared(
                    channel,
                    decoded.rank,
                    decoded.bank,
                    decoded.row,
                    transaction.size_bytes,
                    transaction.is_write,
                    now,
                )
                transaction.row_hit = row_hit
                transaction.completed_ps = completion_ps
                self._open_rows[channel][bank_slot] = decoded.row
                self._channel_busy[channel] = True
                self.engine.schedule_call(
                    completion_ps, self._on_complete, (transaction, channel)
                )
                return
        self._class_occupancy[transaction.queue_class] += 1
        self._pending_count += 1
        store.push(
            transaction,
            decoded.rank * self._banks_per_rank + decoded.bank,
            decoded.row,
        )
        if not self._channel_busy[channel]:
            self._schedule_from(channel)

    def _try_schedule(self, channel: int) -> None:
        if not self._channel_busy[channel]:
            self._schedule_from(channel)

    def _schedule_from(self, channel: int) -> None:
        """Pick, dequeue and issue the next transaction for an idle channel."""
        store = self._stores[channel]
        if not store.live:
            return
        now = self.engine._now_ps
        selector = self._selector
        if selector is not None:
            index = selector.select(store, now, channel)
            chosen = store.objs[index]
        else:
            context = SchedulingContext(
                now_ps=now,
                is_row_hit=self._is_row_hit,
                aging=self.aging,
                row_buffer_delta=self.config.row_buffer_delta,
            )
            chosen = self.policy.select(store.fallback_candidates_by_class(), context)
            index = store.index_of_uid(chosen.uid)
        bank_slot = store.bank[index]
        row = store.row[index]
        store.remove_index(index)
        self._class_occupancy[chosen.queue_class] -= 1
        self._pending_count -= 1

        chosen.issued_ps = now
        rank_index = bank_slot // self._banks_per_rank
        completion_ps, row_hit = self.dram.service_prepared(
            channel,
            rank_index,
            bank_slot - rank_index * self._banks_per_rank,
            row,
            chosen.size_bytes,
            chosen.is_write,
            now,
        )
        chosen.row_hit = row_hit
        chosen.completed_ps = completion_ps
        self._open_rows[channel][bank_slot] = row
        self._channel_busy[channel] = True
        # Completions are never cancelled; skip the Event handle.
        self.engine.schedule_call(completion_ps, self._on_complete, (chosen, channel))

    def _on_complete(self, transaction: Transaction, channel: int) -> None:
        self._channel_busy[channel] = False
        size = transaction.size_bytes
        source = transaction.source
        self.served_transactions += 1
        self.served_bytes += size
        per_bytes = self.per_source_bytes
        per_bytes[source] = per_bytes.get(source, 0) + size
        per_served = self.per_source_served
        per_served[source] = per_served.get(source, 0) + 1
        # completed_ps is always stamped at issue on this path; RunningMean.add
        # is inlined (one call per completion on the hottest chain).
        latency = transaction.completed_ps - transaction.created_ps
        stats = self.latency_stats
        stats.count += 1
        stats.total += latency
        if stats.minimum is None or latency < stats.minimum:
            stats.minimum = latency
        if stats.maximum is None or latency > stats.maximum:
            stats.maximum = latency

        handler = self._completion_handlers.get(transaction.dma)
        if handler is not None:
            handler(transaction)
        for listener in self._global_handlers:
            listener(transaction)
        self._schedule_from(channel)
        for space_listener in self._space_listeners:
            space_listener()

    def queue_occupancy(self) -> Dict[str, int]:
        return {
            queue_class.value: count
            for queue_class, count in self._class_occupancy.items()
        }
