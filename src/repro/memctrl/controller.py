"""The memory-controller front-end driving the DRAM device."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dram.device import DramDevice
from repro.memctrl.aging import AgingTracker
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import QueueClass, Transaction
from repro.sim.config import MemoryControllerConfig
from repro.sim.engine import Engine
from repro.sim.stats import RunningMean

CompletionHandler = Callable[[Transaction], None]


class MemoryController:
    """Queues transactions per class and issues them to DRAM channels.

    Each DRAM channel is scheduled independently: whenever a channel's data
    bus becomes free the controller asks its scheduling policy to choose among
    the visible transactions destined to that channel and issues the winner.
    Completions are delivered to per-DMA handlers registered by the system
    builder, which is how read data and write acknowledgements find their way
    back to the cores' performance meters.
    """

    def __init__(
        self,
        engine: Engine,
        dram: DramDevice,
        policy: SchedulingPolicy,
        config: Optional[MemoryControllerConfig] = None,
    ) -> None:
        self.engine = engine
        self.dram = dram
        self.policy = policy
        self.config = config or MemoryControllerConfig()
        # The scheduler window bounds how many pending transactions per queue
        # the policy may reorder among.  By default it is effectively
        # unbounded: the controller is work-conserving over everything the
        # DMAs' outstanding-request windows allow in flight, which stands in
        # for the credit-based flow control a real front-end uses to keep its
        # 42 entries fed with the most urgent traffic.
        window = self.config.scheduler_window_entries or 1_000_000
        self.queues: Dict[QueueClass, TransactionQueue] = {
            queue_class: TransactionQueue(queue_class.value, window)
            for queue_class in QueueClass
        }
        # Incrementally maintained per-channel candidate index: for each
        # channel, an insertion-ordered map per queue class.  With the default
        # (unbounded) scheduler window this lets _candidates_for_channel hand
        # the policy its candidate list without rescanning every queue on
        # every scheduling decision; a bounded window falls back to the
        # windowed scan.
        self._pending_by_channel: List[Dict[QueueClass, Dict[int, Transaction]]] = [
            {queue_class: {} for queue_class in QueueClass}
            for _ in range(dram.config.channels)
        ]
        self._unbounded_window = self.config.scheduler_window_entries is None
        # Incrementally maintained count of queued transactions; has_space()
        # runs on every NoC forward attempt, so it must not sum queue lengths.
        self._pending_count = 0
        self.aging = AgingTracker(
            self.config.aging_threshold_cycles, dram.timing.clock_period_ps
        )
        self._channel_busy: List[bool] = [False] * dram.config.channels
        self._channel_of: Dict[int, int] = {}
        self._completion_handlers: Dict[str, CompletionHandler] = {}
        self._global_handlers: List[CompletionHandler] = []
        self._space_listeners: List[Callable[[], None]] = []

        self.served_transactions = 0
        self.served_bytes = 0
        self.latency_stats = RunningMean()
        self.per_source_bytes: Dict[str, int] = {}
        self.per_source_served: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_dma(self, dma_name: str, handler: CompletionHandler) -> None:
        """Route completions of transactions issued by ``dma_name`` to a handler."""
        if dma_name in self._completion_handlers:
            raise ValueError(f"DMA '{dma_name}' is already registered")
        self._completion_handlers[dma_name] = handler

    def add_completion_listener(self, handler: CompletionHandler) -> None:
        """Add a handler invoked for every completed transaction."""
        self._global_handlers.append(handler)

    def add_space_listener(self, handler: Callable[[], None]) -> None:
        """Register a callback fired whenever a controller entry frees up.

        The NoC uses this for back-pressure: the root router stalls while the
        controller's entries (42 in Table 1) are occupied and resumes — with a
        fresh priority arbitration — as soon as space becomes available.
        """
        self._space_listeners.append(handler)

    def has_space(self) -> bool:
        """Whether the front-end can accept another transaction right now."""
        return self._pending_count < self.config.total_entries

    # ------------------------------------------------------------------ #
    # Transaction flow
    # ------------------------------------------------------------------ #
    def enqueue(self, transaction: Transaction) -> None:
        """Accept a transaction from the NoC into its class queue."""
        now = self.engine.now_ps
        queue = self.queues[transaction.queue_class]
        queue.push(transaction, now)
        self._pending_count += 1
        channel = self.dram.channel_of(transaction.address)
        self._channel_of[transaction.uid] = channel
        if self._unbounded_window:
            self._pending_by_channel[channel][transaction.queue_class][
                transaction.uid
            ] = transaction
        self._try_schedule(channel)

    def pending_transactions(self) -> int:
        """Total transactions waiting in all class queues."""
        return self._pending_count

    def _candidates_for_channel(self, channel: int) -> List[Transaction]:
        if self._unbounded_window:
            # Fast path: the per-channel index already holds exactly the
            # pending transactions of this channel, in the same order the
            # windowed scan would produce (queue-class order, FIFO within a
            # class).
            candidates: List[Transaction] = []
            for bucket in self._pending_by_channel[channel].values():
                if bucket:
                    candidates.extend(bucket.values())
            return candidates
        candidates = []
        for queue in self.queues.values():
            for transaction in queue.visible():
                if self._channel_of[transaction.uid] == channel:
                    candidates.append(transaction)
        return candidates

    def _is_row_hit(self, transaction: Transaction) -> bool:
        return self.dram.is_row_hit(transaction.address)

    def _try_schedule(self, channel: int) -> None:
        if self._channel_busy[channel]:
            return
        candidates = self._candidates_for_channel(channel)
        if not candidates:
            return
        context = SchedulingContext(
            now_ps=self.engine.now_ps,
            is_row_hit=self._is_row_hit,
            aging=self.aging,
            row_buffer_delta=self.config.row_buffer_delta,
        )
        chosen = self.policy.select(candidates, context)
        self.queues[chosen.queue_class].remove(chosen)
        if self._unbounded_window:
            self._pending_by_channel[channel][chosen.queue_class].pop(chosen.uid)
        self._pending_count -= 1
        self._issue(chosen, channel)

    def _issue(self, transaction: Transaction, channel: int) -> None:
        now = self.engine.now_ps
        transaction.issued_ps = now
        result = self.dram.service(
            transaction.address, transaction.size_bytes, transaction.is_write, now
        )
        transaction.row_hit = result.row_hit
        transaction.completed_ps = result.completion_ps
        self._channel_busy[channel] = True
        self.engine.schedule_at(result.completion_ps, self._on_complete, transaction, channel)

    def _on_complete(self, transaction: Transaction, channel: int) -> None:
        self._channel_busy[channel] = False
        self._channel_of.pop(transaction.uid, None)
        self.served_transactions += 1
        self.served_bytes += transaction.size_bytes
        self.per_source_bytes[transaction.source] = (
            self.per_source_bytes.get(transaction.source, 0) + transaction.size_bytes
        )
        self.per_source_served[transaction.source] = (
            self.per_source_served.get(transaction.source, 0) + 1
        )
        if transaction.latency_ps is not None:
            self.latency_stats.add(transaction.latency_ps)

        handler = self._completion_handlers.get(transaction.dma)
        if handler is not None:
            handler(transaction)
        for listener in self._global_handlers:
            listener(transaction)
        self._try_schedule(channel)
        for space_listener in self._space_listeners:
            space_listener()

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def average_latency_ps(self) -> float:
        return self.latency_stats.mean

    def queue_occupancy(self) -> Dict[str, int]:
        return {queue.name: len(queue) for queue in self.queues.values()}
