"""Memory-controller front-end: transaction queues and scheduling policies.

The controller implements the paper's "distributed system response" stage at
the DRAM boundary: it holds per-class transaction queues (Table 1 lists five
of them) and arbitrates among pending transactions with a pluggable policy —
FCFS, round-robin, FR-FCFS, the frame-rate-based QoS baseline, Policy 1
(priority-based round-robin) and Policy 2 (QoS-RB, priority-based round-robin
with row-buffer-hit optimisation below the delta threshold).
"""

from repro.memctrl.aging import AgingTracker
from repro.memctrl.controller import MemoryController
from repro.memctrl.policies import (
    FcfsPolicy,
    FrFcfsPolicy,
    FrameRateQosPolicy,
    PriorityQosPolicy,
    PriorityRowBufferPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import QueueClass, Transaction

__all__ = [
    "AgingTracker",
    "FcfsPolicy",
    "FrFcfsPolicy",
    "FrameRateQosPolicy",
    "MemoryController",
    "PriorityQosPolicy",
    "PriorityRowBufferPolicy",
    "QueueClass",
    "RoundRobinPolicy",
    "SchedulingContext",
    "SchedulingPolicy",
    "Transaction",
    "TransactionQueue",
    "make_policy",
]
