"""Columnar candidate stores and batched policy selectors (batched kernel).

The scalar kernel hands every scheduling decision a freshly built Python list
of transaction objects and lets the policy scan it (``min`` over attribute
tuples, list-comprehension filters, per-candidate aging probes).  The batched
kernel instead keeps each candidate set — one per DRAM channel in the memory
controller, one per NoC router — as a :class:`ColumnarStore`: parallel
columns (age key, priority, queue class, DMA code, realtime-behind flag,
bank slot, row) plus the owning transaction objects.  A scheduling decision
reduces the columns directly instead of walking an object graph, and a store
only maintains the columns its policy's selector actually reads (an FCFS
router push is three list appends).

Column reductions are adaptive: small windows (the common case — candidate
sets here are bounded by the controller's 42 entries and the DMAs'
outstanding windows) use tight Python loops over the list columns, while
windows above :data:`VECTOR_MIN` switch to numpy reductions (masked min /
argmin chains, :meth:`~repro.memctrl.aging.AgingTracker.aged_mask`), which is
where vectorization actually beats loop overhead.  Both paths compute the
same result: all policies break ties on total per-transaction keys
(``(age, uid)`` with unique uids), so there are no ties for iteration order
to resolve.

Selectors replicate the scalar policies *exactly*:

* the same transaction is chosen for every candidate set;
* the same mutable policy state evolves identically (round-robin rotation
  index, priority round-robin turn counter and per-DMA last-served turns,
  aged-service accounting), so a scalar and a batched run can be stopped at
  any point with equal observable state.

Two store flavours share one class:

* **sorted mode** (memory controller and leaf routers): the NoC delivers
  transactions to the controller at strictly increasing timestamps (the root
  router serialises them over one link) and DMAs inject synchronously at
  creation, so insertion order *is* age order and "oldest" is the store's
  head pointer — O(1).  The store verifies the invariant on every push and
  silently degrades to the scan paths if violated — which is exactly what
  happens at interior routers merging links of different speeds.
* **unsorted mode**: "oldest" is a minimum over the ``skey`` column.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memctrl.aging import AgingTracker
from repro.memctrl.policies import (
    FcfsPolicy,
    FrameRateQosPolicy,
    FrFcfsPolicy,
    PriorityQosPolicy,
    PriorityRowBufferPolicy,
    RoundRobinPolicy,
)
from repro.memctrl.scheduler import SchedulingPolicy
from repro.memctrl.transaction import QueueClass, Transaction

#: Queue classes in enum order; the codes double as round-robin rotation
#: positions because the scalar policy's rotation order equals enum order.
_CLASS_CODE: Dict[QueueClass, int] = {qc: i for i, qc in enumerate(QueueClass)}
_NUM_CLASSES = len(_CLASS_CODE)

#: Precomputed rotation orders: _ROTATIONS[base] is the class-code visit
#: order starting at ``base``, and _NEXT_CLASS[code] is the rotation position
#: after serving ``code``.  Replaces per-step modulo in the arbitration loop.
_ROTATIONS = tuple(
    tuple((base + step) % _NUM_CLASSES for step in range(_NUM_CLASSES))
    for base in range(_NUM_CLASSES)
)
_NEXT_CLASS = tuple((code + 1) % _NUM_CLASSES for code in range(_NUM_CLASSES))

_INT64_MAX = np.iinfo(np.int64).max

#: The sentinel age key greater than every real ``(time, uid)`` key.
_SKEY_MAX: Tuple[int, int] = (1 << 62, 1 << 62)

#: Window size above which selectors switch from Python loops to numpy
#: reductions.  Below this, fixed per-ufunc overhead (plus lifting the list
#: columns into arrays) exceeds the cost of the whole loop.
VECTOR_MIN = 64

#: Dead entries tolerated before a store compacts its columns in place.
_COMPACT_SLACK = 64


class ColumnarStore:
    """A candidate set as parallel columns plus the owning objects.

    Columns are plain Python lists (cheap to append and to scan for the
    small windows that dominate); selectors lift them into numpy arrays
    only when the live window is large enough for vector reductions to win.

    The ``track_*`` flags disable columns (and their counters) that the
    owning selector never reads, shrinking the per-push work: a disabled
    column stays an empty list.  ``track_rows`` is owner-driven rather than
    selector-driven — the batched controller always needs the decoded
    ``bank``/``row`` for issuing, NoC routers never do.
    """

    __slots__ = (
        "codebook",
        "sorted_mode",
        "skey",
        "prio",
        "cls",
        "dma",
        "behind",
        "bank",
        "row",
        "alive",
        "objs",
        "track_cls",
        "track_prio",
        "track_dma",
        "track_behind",
        "track_rows",
        "use_heap",
        "_heap",
        "_columns",
        "head",
        "live",
        "class_count",
        "prio_count",
        "behind_count",
        "_last_skey",
    )

    def __init__(
        self,
        codebook: Dict[str, int],
        sorted_mode: bool,
        track_cls: bool = True,
        track_prio: bool = True,
        track_dma: bool = True,
        track_behind: bool = True,
        track_rows: bool = True,
        use_heap: bool = False,
    ) -> None:
        self.codebook = codebook
        self.sorted_mode = sorted_mode
        #: Age key column: the transactions' ``sort_key`` tuples, shared with
        #: the objects themselves (one append, tuple comparisons — exactly
        #: the scalar policies' ordering).
        self.skey: List[Tuple[int, int]] = []
        self.prio: List[int] = []
        self.cls: List[int] = []
        self.dma: List[int] = []
        self.behind: List[bool] = []
        self.bank: List[int] = []
        self.row: List[int] = []
        self.alive: List[bool] = []
        self.objs: List[Optional[Transaction]] = []
        self.track_cls = track_cls
        self.track_prio = track_prio
        self.track_dma = track_dma
        self.track_behind = track_behind
        self.track_rows = track_rows
        columns = ["skey", "objs"]
        if track_cls:
            columns.append("cls")
        if track_prio:
            columns.append("prio")
        if track_dma:
            columns.append("dma")
        if track_behind:
            columns.append("behind")
        if track_rows:
            columns.extend(("bank", "row"))
        self._columns = tuple(columns)
        #: Lazy min-heap over ``(skey, index)`` maintained only while the
        #: store is unsorted *and* its selector leans on :meth:`oldest_index`
        #: (FCFS-style policies): the oldest pop is then O(log n) instead of
        #: an O(n) scan.  Entries of removed candidates go stale and are
        #: discarded on pop; unique sort keys make the heap minimum identical
        #: to the scan minimum.
        self.use_heap = use_heap
        self._heap: List[Tuple[Tuple[int, int], int]] = []
        self.head = 0  # lowest index that may still be alive
        self.live = 0
        self.class_count = [0] * _NUM_CLASSES
        #: Live candidates per priority level, grown on demand (the paper's
        #: k = 3 priority bits give 8 levels); makes "highest live priority"
        #: an O(levels) lookup instead of an O(window) scan.
        self.prio_count = [0] * 8
        self.behind_count = 0
        self._last_skey: Tuple[int, int] = (-1, -1)

    @classmethod
    def for_selector(
        cls,
        selector,
        codebook: Dict[str, int],
        sorted_mode: bool,
        track_rows: bool,
    ) -> "ColumnarStore":
        """A store maintaining exactly the columns ``selector`` reads.

        ``selector=None`` (fallback to a scalar policy) keeps every column:
        the store must then rebuild full scalar candidate lists in class
        order and cannot know what the policy will look at.
        """
        needs = getattr(selector, "NEEDS", None)
        if needs is None:
            return cls(codebook, sorted_mode, track_rows=track_rows)
        return cls(
            codebook,
            sorted_mode,
            track_cls="cls" in needs,
            track_prio="prio" in needs,
            track_dma="dma" in needs,
            track_behind="behind" in needs,
            track_rows=track_rows,
            use_heap=getattr(selector, "USES_OLDEST", False),
        )

    @property
    def size(self) -> int:
        """The append cursor: columns are valid on ``[0, size)``."""
        return len(self.skey)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def push(self, transaction: Transaction, bank_slot: int = 0, row: int = -1) -> int:
        """Append a candidate; returns its store index.

        The age key is the transaction's cached ``sort_key`` (enqueue time in
        the controller, creation time inside the NoC).
        """
        skey = transaction.sort_key
        index = len(self.skey)
        self.skey.append(skey)
        self.objs.append(transaction)
        self.alive.append(True)
        self.live += 1
        if self.track_cls:
            cls_code = _CLASS_CODE[transaction.queue_class]
            self.cls.append(cls_code)
            self.class_count[cls_code] += 1
        if self.track_prio:
            prio = transaction.priority
            self.prio.append(prio)
            prio_count = self.prio_count
            if prio >= len(prio_count):
                prio_count.extend([0] * (prio + 1 - len(prio_count)))
            prio_count[prio] += 1
        if self.track_dma:
            codebook = self.codebook
            code = codebook.get(transaction.dma)
            if code is None:
                code = len(codebook)
                codebook[transaction.dma] = code
            self.dma.append(code)
        if self.track_behind:
            behind = transaction.realtime_behind
            self.behind.append(behind)
            if behind:
                self.behind_count += 1
        if self.track_rows:
            self.bank.append(bank_slot)
            self.row.append(row)
        if self.sorted_mode:
            if skey < self._last_skey:
                # Out-of-order insertion: age order no longer equals index
                # order.  Degrade permanently to the scan-based paths (and
                # seed the oldest-heap with everything currently live).
                self.sorted_mode = False
                if self.use_heap:
                    skeys = self.skey
                    alive = self.alive
                    heap = [
                        (skeys[i], i)
                        for i in range(self.head, len(skeys))
                        if alive[i]
                    ]
                    heapq.heapify(heap)
                    self._heap = heap
            else:
                self._last_skey = skey
        elif self.use_heap:
            heapq.heappush(self._heap, (skey, index))
        return index

    def remove_index(self, index: int) -> None:
        """Kill the candidate at a store index (columns keep their values)."""
        self.alive[index] = False
        live = self.live - 1
        self.live = live
        if self.track_cls:
            self.class_count[self.cls[index]] -= 1
        if self.track_prio:
            self.prio_count[self.prio[index]] -= 1
        if self.track_behind and self.behind[index]:
            self.behind_count -= 1
        self.objs[index] = None
        if index == self.head:
            head = index + 1
            alive = self.alive
            size = len(alive)
            while head < size and not alive[head]:
                head += 1
            self.head = head
        if len(self.skey) - live > _COMPACT_SLACK:
            self._compact()

    def index_of_uid(self, uid: int) -> int:
        """Store index of a live candidate by transaction uid (fallback path)."""
        skeys = self.skey
        alive = self.alive
        for i in range(self.head, len(skeys)):
            if alive[i] and skeys[i][1] == uid:
                return i
        raise KeyError(f"uid {uid} is not a live candidate")

    def _compact(self) -> None:
        """Drop dead entries in place; index order (and thus any sortedness
        and FIFO/insertion order) is preserved."""
        alive = self.alive
        keep = [i for i in range(self.head, len(alive)) if alive[i]]
        for name in self._columns:
            col = getattr(self, name)
            col[:] = [col[i] for i in keep]
        self.alive = [True] * len(keep)
        self.head = 0
        if self.use_heap and not self.sorted_mode:
            # Store indices changed: rebuild the oldest-heap over survivors.
            heap = list(enumerate(self.skey))
            heap = [(skey, i) for i, skey in heap]
            heapq.heapify(heap)
            self._heap = heap

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def window_array(self, column: str) -> np.ndarray:
        """The ``[head:size)`` slice of a column as an int64 numpy array."""
        data = getattr(self, column)[self.head :]
        return np.array(data, dtype=np.int64)

    def window_key_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``skey`` window split into (enqueue-time, uid) int64 arrays."""
        window = self.skey[self.head :]
        keys = np.array([k for k, _ in window], dtype=np.int64)
        uids = np.array([u for _, u in window], dtype=np.int64)
        return keys, uids

    def window_alive(self) -> np.ndarray:
        """The ``[head:size)`` slice of the liveness flags as a bool array."""
        return np.array(self.alive[self.head :], dtype=bool)

    def top_priority(self) -> int:
        """Highest priority among live candidates (-1 when empty)."""
        counts = self.prio_count
        for level in range(len(counts) - 1, -1, -1):
            if counts[level]:
                return level
        return -1

    def oldest_index(self) -> int:
        """Store index of the oldest live candidate: minimal ``sort_key``."""
        if self.sorted_mode or self.live == 1:
            return self.head
        skeys = self.skey
        alive = self.alive
        if self.use_heap:
            heap = self._heap
            while heap:
                index = heap[0][1]
                if alive[index]:
                    return index
                heapq.heappop(heap)  # stale entry of a removed candidate
            return -1
        best = -1
        best_key = _SKEY_MAX
        for i in range(self.head, len(skeys)):
            if alive[i]:
                k = skeys[i]
                if k < best_key:
                    best = i
                    best_key = k
        return best

    def fallback_candidates(self) -> List[Transaction]:
        """Live candidates in insertion order (the scalar router's order)."""
        return [obj for obj in self.objs[self.head :] if obj is not None]

    def fallback_candidates_by_class(self) -> List[Transaction]:
        """Live candidates grouped by queue class in enum order, FIFO within a
        class — exactly the scalar controller's ``_candidates_for_channel``
        order, so an unvectorized policy sees an identical list."""
        groups: List[List[Transaction]] = [[] for _ in range(_NUM_CLASSES)]
        alive = self.alive
        cls = self.cls
        objs = self.objs
        for i in range(self.head, len(alive)):
            if alive[i]:
                groups[cls[i]].append(objs[i])
        out: List[Transaction] = []
        for group in groups:
            out.extend(group)
        return out


def _oldest_masked(store: ColumnarStore, mask_ok) -> int:
    """Oldest live candidate satisfying a per-index predicate.

    In sorted mode the first match is the oldest; otherwise track the
    minimal ``sort_key``.  The caller guarantees at least one match.
    """
    alive = store.alive
    size = len(alive)
    if store.sorted_mode:
        for i in range(store.head, size):
            if alive[i] and mask_ok(i):
                return i
        raise ValueError("no candidate satisfies the selection mask")
    skeys = store.skey
    best = -1
    best_key = _SKEY_MAX
    for i in range(store.head, size):
        if alive[i] and mask_ok(i):
            k = skeys[i]
            if k < best_key:
                best = i
                best_key = k
    if best < 0:
        raise ValueError("no candidate satisfies the selection mask")
    return best


def _vector_oldest(store: ColumnarStore, mask: np.ndarray) -> int:
    """Vectorized oldest within a boolean window mask (argmin picks the first
    on ties — but keys are unique, so first-occurrence semantics are never
    load-bearing)."""
    if store.sorted_mode:
        return store.head + int(np.argmax(mask))
    key_arr, uid_arr = store.window_key_arrays()
    keys = np.where(mask, key_arr, _INT64_MAX)
    lowest = keys.min()
    tied = keys == lowest
    uids = np.where(tied, uid_arr, _INT64_MAX)
    return store.head + int(np.argmin(uids))


# ---------------------------------------------------------------------- #
# Batched selectors
# ---------------------------------------------------------------------- #
class FcfsSelector:
    """FCFS and (row-state-blind) FR-FCFS: plain oldest."""

    NEEDS = frozenset()
    USES_OLDEST = True

    def __init__(self, policy: SchedulingPolicy) -> None:
        self.policy = policy

    def select(self, store: ColumnarStore, now_ps: int, channel: int = 0) -> int:
        # oldest_index() with its sorted-mode head fast path inlined.
        if store.sorted_mode or store.live == 1:
            return store.head
        return store.oldest_index()

    def serve_direct(
        self,
        store: ColumnarStore,
        transaction,
        now_ps: int,
        channel: int = 0,
        bank_slot: int = 0,
        row: int = -1,
    ) -> bool:
        """Commit a trivial single-candidate arbitration (empty-store bypass).

        FCFS keeps no per-serve state, so there is nothing to commit.
        """
        return True


class RoundRobinSelector:
    """Round-robin over queue classes; rotation state shared with the policy."""

    NEEDS = frozenset(("cls",))
    USES_OLDEST = True

    def __init__(self, policy: RoundRobinPolicy) -> None:
        self.policy = policy

    def select(self, store: ColumnarStore, now_ps: int, channel: int = 0) -> int:
        policy = self.policy
        counts = store.class_count
        for code in _ROTATIONS[policy._next_class_index]:
            count = counts[code]
            if count:
                policy._next_class_index = _NEXT_CLASS[code]
                if count == store.live:
                    if store.sorted_mode:
                        return store.head
                    return store.oldest_index()
                if store.live > VECTOR_MIN:
                    mask = (store.window_array("cls") == code) & store.window_alive()
                    return _vector_oldest(store, mask)
                # Inlined masked-oldest scan (a predicate lambda per candidate
                # is measurably slower on this per-arbitration path).
                cls = store.cls
                alive = store.alive
                if store.sorted_mode:
                    for i in range(store.head, len(alive)):
                        if alive[i] and cls[i] == code:
                            return i
                    raise ValueError("class_count is out of sync with the store")
                skeys = store.skey
                best = -1
                best_key = _SKEY_MAX
                remaining = count
                for i in range(store.head, len(alive)):
                    if alive[i] and cls[i] == code:
                        k = skeys[i]
                        if k < best_key:
                            best = i
                            best_key = k
                        remaining -= 1
                        if not remaining:
                            break
                return best
        raise ValueError("round-robin selector asked to select from an empty store")

    def serve_direct(
        self,
        store: ColumnarStore,
        transaction,
        now_ps: int,
        channel: int = 0,
        bank_slot: int = 0,
        row: int = -1,
    ) -> bool:
        """Commit a trivial single-candidate arbitration (empty-store bypass).

        With one candidate the rotation scan always lands on its class (the
        only non-empty one) and leaves the rotation pointing just past it.
        """
        self.policy._next_class_index = _NEXT_CLASS[_CLASS_CODE[transaction.queue_class]]
        return True


class FrameRateSelector:
    """Frame-rate QoS: oldest realtime-behind candidate, else oldest."""

    NEEDS = frozenset(("behind",))
    USES_OLDEST = True

    def __init__(self, policy: FrameRateQosPolicy) -> None:
        self.policy = policy

    def select(self, store: ColumnarStore, now_ps: int, channel: int = 0) -> int:
        behind_count = store.behind_count
        if behind_count == 0 or behind_count == store.live:
            if store.sorted_mode:
                return store.head
            return store.oldest_index()
        if store.live > VECTOR_MIN:
            mask = np.array(store.behind[store.head :]) & store.window_alive()
            return _vector_oldest(store, mask)
        # Inlined masked-oldest scan, bounded by the live behind-count.
        behind = store.behind
        alive = store.alive
        if store.sorted_mode:
            for i in range(store.head, len(alive)):
                if alive[i] and behind[i]:
                    return i
            raise ValueError("behind_count is out of sync with the store")
        skeys = store.skey
        best = -1
        best_key = _SKEY_MAX
        remaining = behind_count
        for i in range(store.head, len(alive)):
            if alive[i] and behind[i]:
                k = skeys[i]
                if k < best_key:
                    best = i
                    best_key = k
                remaining -= 1
                if not remaining:
                    break
        return best

    def serve_direct(
        self,
        store: ColumnarStore,
        transaction,
        now_ps: int,
        channel: int = 0,
        bank_slot: int = 0,
        row: int = -1,
    ) -> bool:
        """Commit a trivial single-candidate arbitration (empty-store bypass).

        Frame-rate QoS keeps no per-serve state, so there is nothing to
        commit.
        """
        return True


class PriorityQosSelector:
    """Policy 1: priority round-robin with an aging backstop, batched.

    Owns the round-robin state of one :class:`PriorityQosPolicy` instance
    (the scalar ``_turn`` counter plus last-served turns indexed by the
    shared DMA codebook).  In batched runs the policy's own
    ``_last_served_turn`` dict stays untouched — this selector *is* the
    authoritative state, and it evolves turn-for-turn like the scalar dict.
    """

    NEEDS = frozenset(("prio", "dma"))

    def __init__(self, policy: PriorityQosPolicy, aging: Optional[AgingTracker]) -> None:
        self.policy = policy
        self.aging = aging
        self.turn = 0
        self.turns: List[int] = []

    def _turns_for(self, store: ColumnarStore) -> List[int]:
        turns = self.turns
        missing = len(store.codebook) - len(turns)
        if missing > 0:
            turns.extend([-1] * missing)
        return turns

    def _serve(self, store: ColumnarStore, index: int, now_ps: int) -> int:
        """Commit a pick: advance the turn, stamp the DMA, account aging."""
        self.turn += 1
        code = store.dma[index]
        turns = self.turns
        if code >= len(turns):
            turns = self._turns_for(store)
        turns[code] = self.turn
        aging = self.aging
        if aging is not None and store.skey[index][0] <= now_ps - aging.threshold_ps:
            aging.record_aged_service()
        return index

    def pick_urgent(
        self, store: ColumnarStore, top: int, cutoff: Optional[int], now_ps: int
    ) -> int:
        """Round-robin pick within the urgent group (priority == ``top`` or
        enqueued at/before ``cutoff``): least recently served DMA first,
        oldest transaction within it — the scalar ``_round_robin_pick``
        ordering over the scalar ``_urgent_group`` membership."""
        turns = self.turns
        if len(turns) < len(store.codebook):
            turns = self._turns_for(store)
        alive = store.alive
        prio = store.prio
        skeys = store.skey
        if store.live > VECTOR_MIN:
            head = store.head
            alive_arr = store.window_alive()
            prio_arr = store.window_array("prio")
            key_arr, uid_arr = store.window_key_arrays()
            group = alive_arr & (prio_arr == top)
            if cutoff is not None:
                group |= alive_arr & (key_arr <= cutoff)
            turn_arr = np.array(turns, dtype=np.int64)[store.window_array("dma")]
            turn_arr = np.where(group, turn_arr, _INT64_MAX)
            least = turn_arr.min()
            tied = turn_arr == least
            if store.sorted_mode:
                index = head + int(np.argmax(tied))
            else:
                key_arr = np.where(tied, key_arr, _INT64_MAX)
                lowest = key_arr.min()
                tied &= key_arr == lowest
                uids = np.where(tied, uid_arr, _INT64_MAX)
                index = head + int(np.argmin(uids))
            return self._serve(store, index, now_ps)
        dma = store.dma
        sorted_mode = store.sorted_mode
        head = store.head
        if sorted_mode and (cutoff is None or skeys[head][0] > cutoff):
            # The head is the oldest live entry of a sorted store, so if it
            # is not aged nothing is, and the urgent group is exactly the
            # top-priority class.  prio_count bounds the scan (stop after the
            # group's last member) and a never-served DMA wins outright:
            # -1 is the smallest turn value and ties keep the earlier (older)
            # entry, which is the one we are standing on.
            remaining = store.prio_count[top]
            best = -1
            best_turn = _INT64_MAX
            for i in range(head, len(alive)):
                if not alive[i] or prio[i] != top:
                    continue
                turn = turns[dma[i]]
                if turn < best_turn:
                    best = i
                    best_turn = turn
                    if turn == -1:
                        break
                remaining -= 1
                if not remaining:
                    break
            return self._serve(store, best, now_ps)
        best = -1
        best_turn = _INT64_MAX
        best_key = _SKEY_MAX
        for i in range(head, len(alive)):
            if not alive[i]:
                continue
            if prio[i] != top and (cutoff is None or skeys[i][0] > cutoff):
                continue
            turn = turns[dma[i]]
            if turn > best_turn:
                continue
            if turn == best_turn:
                if sorted_mode:
                    continue  # earlier index == older transaction
                if skeys[i] > best_key:
                    continue
            best = i
            best_turn = turn
            best_key = skeys[i]
        return self._serve(store, best, now_ps)

    def select(self, store: ColumnarStore, now_ps: int, channel: int = 0) -> int:
        if store.live == 1:
            return self._serve(store, store.head, now_ps)
        aging = self.aging
        cutoff = None if aging is None else now_ps - aging.threshold_ps
        # top_priority() inlined: highest non-empty prio_count level.
        counts = store.prio_count
        top = len(counts) - 1
        while not counts[top]:
            top -= 1
        return self.pick_urgent(store, top, cutoff, now_ps)

    def serve_direct(
        self,
        store: ColumnarStore,
        transaction,
        now_ps: int,
        channel: int = 0,
        bank_slot: int = 0,
        row: int = -1,
    ) -> bool:
        """Commit a trivial single-candidate arbitration (empty-store bypass).

        Mirrors :meth:`_serve` for a transaction that never entered the
        store: advance the turn, stamp the DMA's code (allocating it in the
        store's codebook exactly as ``push`` would have), and account aging
        against the transaction's cached sort key — the same key ``push``
        would have stored.
        """
        self.turn += 1
        codebook = store.codebook
        code = codebook.get(transaction.dma)
        if code is None:
            code = len(codebook)
            codebook[transaction.dma] = code
        turns = self.turns
        if code >= len(turns):
            turns.extend([-1] * (len(codebook) - len(turns)))
        turns[code] = self.turn
        aging = self.aging
        if aging is not None and transaction.sort_key[0] <= now_ps - aging.threshold_ps:
            aging.record_aged_service()
        return True


class FrFcfsSelector:
    """FR-FCFS with row state: oldest row hit, else oldest (controller only)."""

    NEEDS = frozenset()

    def __init__(self, policy: FrFcfsPolicy, open_rows: List[List[int]]) -> None:
        self.policy = policy
        self.open_rows = open_rows

    def select(self, store: ColumnarStore, now_ps: int, channel: int = 0) -> int:
        if store.live == 1:
            return store.head
        open_rows = self.open_rows[channel]
        alive = store.alive
        bank = store.bank
        row = store.row
        for i in range(store.head, len(alive)):
            if alive[i] and open_rows[bank[i]] == row[i]:
                # At least one hit exists; serve the oldest among them.
                if store.sorted_mode:
                    return i
                return _oldest_masked(store, lambda j: open_rows[bank[j]] == row[j])
        return store.oldest_index()

    def serve_direct(
        self,
        store: ColumnarStore,
        transaction,
        now_ps: int,
        channel: int = 0,
        bank_slot: int = 0,
        row: int = -1,
    ) -> bool:
        """Commit a trivial single-candidate arbitration (empty-store bypass).

        FR-FCFS keeps no per-serve state (row state lives in the open-row
        mirror, updated by the controller at issue), so nothing to commit.
        """
        return True


class PriorityRowBufferSelector:
    """Policy 2 (QoS-RB): Policy 1 plus row-buffer-hit optimisation.

    Requires row state (controller only): the store's ``bank``/``row``
    columns are compared against the channel's open-row table, which the
    batched controller mirrors from the DRAM banks.  Both row-hit branches
    return without touching the inner round-robin state, exactly like the
    scalar policy's early ``oldest(row_hits)`` returns.
    """

    NEEDS = frozenset(("prio", "dma"))

    def __init__(
        self,
        policy: PriorityRowBufferPolicy,
        aging: Optional[AgingTracker],
        row_buffer_delta: int,
        open_rows: List[List[int]],
    ) -> None:
        self.policy = policy
        self.delta = row_buffer_delta
        #: Per-channel open-row tables, indexed by the store's channel index.
        self.open_rows = open_rows
        self.inner = PriorityQosSelector(policy._priority_rr, aging)

    def select(self, store: ColumnarStore, now_ps: int, channel: int = 0) -> int:
        open_rows = self.open_rows[channel]
        inner = self.inner
        if store.live == 1:
            index = store.head
            if open_rows[store.bank[index]] == store.row[index]:
                return index  # row hit: served for efficiency, no RR state
            return inner._serve(store, index, now_ps)
        top = store.top_priority()
        aging = inner.aging
        cutoff = None if aging is None else now_ps - aging.threshold_ps
        alive = store.alive
        prio = store.prio
        skeys = store.skey
        bank = store.bank
        row = store.row
        if top < self.delta:
            # No transaction is urgent: spend the slot on DRAM efficiency.
            for i in range(store.head, len(alive)):
                if alive[i] and open_rows[bank[i]] == row[i]:
                    if store.sorted_mode:
                        return i
                    return _oldest_masked(
                        store, lambda j: open_rows[bank[j]] == row[j]
                    )
            return inner.pick_urgent(store, top, cutoff, now_ps)
        # Urgent traffic exists: a row hit *within* the urgent group wins,
        # otherwise round-robin over the group.
        for i in range(store.head, len(alive)):
            if (
                alive[i]
                and (prio[i] == top or (cutoff is not None and skeys[i][0] <= cutoff))
                and open_rows[bank[i]] == row[i]
            ):
                if store.sorted_mode:
                    return i
                return _oldest_masked(
                    store,
                    lambda j: (
                        prio[j] == top
                        or (cutoff is not None and skeys[j][0] <= cutoff)
                    )
                    and open_rows[bank[j]] == row[j],
                )
        return inner.pick_urgent(store, top, cutoff, now_ps)

    def serve_direct(
        self,
        store: ColumnarStore,
        transaction,
        now_ps: int,
        channel: int = 0,
        bank_slot: int = 0,
        row: int = -1,
    ) -> bool:
        """Commit a trivial single-candidate arbitration (empty-store bypass).

        Mirrors the ``live == 1`` branch of :meth:`select`: a row hit is
        served for efficiency without touching the inner round-robin state,
        anything else commits the inner serve.
        """
        if self.open_rows[channel][bank_slot] == row:
            return True
        return self.inner.serve_direct(store, transaction, now_ps)


def make_selector(
    policy: SchedulingPolicy,
    aging: Optional[AgingTracker] = None,
    row_buffer_delta: int = 6,
    open_rows: Optional[List[List[int]]] = None,
):
    """Build the batched selector for a policy instance, or ``None``.

    ``None`` means "no batched path for this policy" — the batched controller
    and routers then fall back to handing the policy a scalar candidate list
    in the exact order the scalar kernel would have built, so unknown or
    user-registered policies keep bit-identical behaviour (just without the
    speedup).  Matching is on exact policy class: a subclass overriding
    ``select`` must not be silently routed through its parent's batched path.
    """
    cls = type(policy)
    if cls is FcfsPolicy:
        return FcfsSelector(policy)
    if cls is RoundRobinPolicy:
        return RoundRobinSelector(policy)
    if cls is FrameRateQosPolicy:
        return FrameRateSelector(policy)
    if cls is PriorityQosPolicy:
        return PriorityQosSelector(policy, aging)
    if cls is PriorityRowBufferPolicy:
        if open_rows is None:
            # No row state (NoC router): every is_row_hit is False, so the
            # policy degenerates to Policy 1 driven by its inner round-robin
            # instance — share that instance's state exactly.
            return PriorityQosSelector(policy._priority_rr, aging)
        return PriorityRowBufferSelector(policy, aging, row_buffer_delta, open_rows)
    if cls is FrFcfsPolicy:
        if open_rows is None:
            # Row-state-blind FR-FCFS (NoC router) degenerates to FCFS.
            return FcfsSelector(policy)
        return FrFcfsSelector(policy, open_rows)
    return None
