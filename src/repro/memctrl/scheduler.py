"""Scheduling-policy interface shared by the memory controller and NoC arbiters."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, List, Optional

from repro.memctrl.aging import AgingTracker
from repro.memctrl.transaction import Transaction

_SORT_KEY = attrgetter("sort_key")


@dataclass
class SchedulingContext:
    """Everything a policy may consult when choosing the next transaction.

    ``is_row_hit`` maps a transaction to whether it would hit an open DRAM
    row right now; policies that do not care about row state (FCFS, RR,
    Policy 1) simply ignore it.  ``aging`` is optional because the baseline
    policies in the paper have no starvation backstop.
    """

    now_ps: int
    is_row_hit: Callable[[Transaction], bool]
    aging: Optional[AgingTracker] = None
    row_buffer_delta: int = 6


class SchedulingPolicy(abc.ABC):
    """Base class for memory-controller scheduling policies."""

    #: Short identifier used in configs, reports and benchmark tables.
    name: str = "base"

    @abc.abstractmethod
    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        """Pick the next transaction to issue from a non-empty candidate list."""

    def _check_candidates(self, candidates: List[Transaction]) -> None:
        if not candidates:
            raise ValueError(f"policy '{self.name}' asked to select from no candidates")

    @staticmethod
    def oldest(candidates: List[Transaction]) -> Transaction:
        """Oldest candidate by enqueue time (stable on transaction id).

        ``Transaction.sort_key`` caches the ``(enqueued_ps, uid)`` tuple
        (falling back to creation time before enqueue), so the scan reads one
        attribute per element instead of building a tuple per comparison.
        """
        return min(candidates, key=_SORT_KEY)
