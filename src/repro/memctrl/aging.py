"""Starvation protection: the aging backstop of Policies 1 and 2.

The paper's schedulers periodically clear the backlog of transactions that
have waited at least T cycles (T = 10 000 in the evaluation) so that
low-priority traffic is never starved indefinitely by high-priority cores.

Aging is a hot-path predicate — the priority policies evaluate it for every
candidate on every scheduling decision — so the tracker exposes a
precomputed *cutoff* timestamp: a transaction is aged iff it was enqueued at
or before ``now_ps - threshold_ps``.  Policies compare ``enqueued_ps``
against the cutoff directly instead of recomputing waiting times per
transaction.
"""

from __future__ import annotations

from operator import attrgetter
from typing import List

import numpy as np

from repro.memctrl.transaction import Transaction

_SORT_KEY = attrgetter("sort_key")


class AgingTracker:
    """Identifies transactions whose waiting time exceeds the aging threshold."""

    def __init__(self, threshold_cycles: int, clock_period_ps: int) -> None:
        if threshold_cycles <= 0:
            raise ValueError("aging threshold must be positive")
        if clock_period_ps <= 0:
            raise ValueError("clock period must be positive")
        self.threshold_cycles = threshold_cycles
        self.clock_period_ps = clock_period_ps
        self.aged_served = 0

    @property
    def threshold_ps(self) -> int:
        return self.threshold_cycles * self.clock_period_ps

    def cutoff_ps(self, now_ps: int) -> int:
        """Latest enqueue time that already counts as aged at ``now_ps``."""
        return now_ps - self.threshold_ps

    def is_aged(self, transaction: Transaction, now_ps: int) -> bool:
        """Has this transaction waited at least T cycles in the controller?"""
        enqueued = transaction.enqueued_ps
        return enqueued is not None and enqueued <= now_ps - self.threshold_ps

    def aged_backlog(self, candidates: List[Transaction], now_ps: int) -> List[Transaction]:
        """All candidates past the threshold, oldest first."""
        cutoff = now_ps - self.threshold_ps
        aged = [
            t
            for t in candidates
            if t.enqueued_ps is not None and t.enqueued_ps <= cutoff
        ]
        aged.sort(key=_SORT_KEY)
        return aged

    def aged_mask(self, enqueued_ps: np.ndarray, now_ps: int) -> np.ndarray:
        """Vectorized aging predicate over a column of enqueue timestamps.

        The batched kernel's counterpart of :meth:`is_aged`: one comparison
        over the whole candidate column instead of a Python loop.  Every
        entry in a controller-side columnar store carries a real enqueue
        timestamp (the store stamps it on insert), so the scalar policies'
        ``enqueued_ps is not None`` guard has no vector counterpart here;
        the caller combines the result with the store's alive mask.
        """
        return enqueued_ps <= now_ps - self.threshold_ps

    def record_aged_service(self) -> None:
        self.aged_served += 1
