"""Starvation protection: the aging backstop of Policies 1 and 2.

The paper's schedulers periodically clear the backlog of transactions that
have waited at least T cycles (T = 10 000 in the evaluation) so that
low-priority traffic is never starved indefinitely by high-priority cores.
"""

from __future__ import annotations

from typing import List

from repro.memctrl.transaction import Transaction


class AgingTracker:
    """Identifies transactions whose waiting time exceeds the aging threshold."""

    def __init__(self, threshold_cycles: int, clock_period_ps: int) -> None:
        if threshold_cycles <= 0:
            raise ValueError("aging threshold must be positive")
        if clock_period_ps <= 0:
            raise ValueError("clock period must be positive")
        self.threshold_cycles = threshold_cycles
        self.clock_period_ps = clock_period_ps
        self.aged_served = 0

    @property
    def threshold_ps(self) -> int:
        return self.threshold_cycles * self.clock_period_ps

    def is_aged(self, transaction: Transaction, now_ps: int) -> bool:
        """Has this transaction waited at least T cycles in the controller?"""
        return transaction.waiting_time_ps(now_ps) >= self.threshold_ps

    def aged_backlog(self, candidates: List[Transaction], now_ps: int) -> List[Transaction]:
        """All candidates past the threshold, oldest first."""
        aged = [t for t in candidates if self.is_aged(t, now_ps)]
        aged.sort(key=lambda t: (t.enqueued_ps if t.enqueued_ps is not None else 0, t.uid))
        return aged

    def record_aged_service(self) -> None:
        self.aged_served += 1
