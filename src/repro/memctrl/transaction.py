"""Memory transactions exchanged between DMAs, the NoC and the controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class QueueClass(Enum):
    """The five memory-controller transaction queues of Table 1."""

    CPU = "cpu"
    GPU = "gpu"
    DSP = "dsp"
    MEDIA = "media"
    SYSTEM = "system"

    # Enum's default __hash__ hashes the member *name* through a Python-level
    # method; queue classes key several per-transaction dict lookups, and
    # identity hashing (members are singletons) makes those lookups C-level.
    __hash__ = object.__hash__


_transaction_ids = itertools.count()


@dataclass(eq=False)
class Transaction:
    """A single memory transaction.

    Priorities follow the paper's convention: higher values mean more urgent
    (level 7 is the most urgent with k = 3 priority bits).  ``realtime_behind``
    is the hint the frame-rate-based QoS baseline uses: the issuing core sets
    it when its frame progress lags the real-time deadline.

    Transactions compare by identity (``eq=False``): every instance carries a
    unique ``uid``, so the generated field-by-field ``__eq__`` could never
    find two equal instances anyway — it only made every queue membership
    test compare a dozen fields per element on the scheduler's hot path.
    """

    source: str
    dma: str
    queue_class: QueueClass
    address: int
    size_bytes: int
    is_write: bool
    priority: int = 0
    realtime_behind: bool = False
    created_ps: int = 0
    enqueued_ps: Optional[int] = None
    issued_ps: Optional[int] = None
    completed_ps: Optional[int] = None
    row_hit: Optional[bool] = None
    uid: int = field(default_factory=lambda: next(_transaction_ids))
    #: Age-ordering key used by the schedulers: ``(enqueued_ps, uid)`` once
    #: the transaction enters a controller queue, ``(created_ps, uid)``
    #: before that.  Cached here so hot-path ``min()``/``sort()`` calls read
    #: an attribute instead of rebuilding tuples per comparison.
    sort_key: Tuple[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"transaction size must be positive, got {self.size_bytes}")
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.priority < 0:
            raise ValueError(f"priority must be non-negative, got {self.priority}")
        self.sort_key = (
            self.enqueued_ps if self.enqueued_ps is not None else self.created_ps,
            self.uid,
        )

    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        if name == "enqueued_ps":
            # Keep the cached ordering key coherent for callers that assign
            # enqueued_ps directly instead of going through TransactionQueue.
            uid = getattr(self, "uid", None)  # unset mid-__init__
            if uid is not None:
                object.__setattr__(
                    self,
                    "sort_key",
                    (value if value is not None else self.created_ps, uid),
                )

    @property
    def latency_ps(self) -> Optional[int]:
        """End-to-end latency from creation to completion, if completed."""
        if self.completed_ps is None:
            return None
        return self.completed_ps - self.created_ps

    def waiting_time_ps(self, now_ps: int) -> int:
        """Time spent waiting in the memory controller so far."""
        if self.enqueued_ps is None:
            return 0
        return max(0, now_ps - self.enqueued_ps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"Transaction(#{self.uid} {self.source}/{self.dma} {kind}"
            f" {self.size_bytes}B @0x{self.address:x} prio={self.priority})"
        )


class BatchTransaction:
    """Hot-path transaction used by the batched kernel.

    Attribute-compatible with :class:`Transaction` (same fields, same
    ``latency_ps`` / ``waiting_time_ps`` accessors, uids drawn from the same
    global counter so a run may mix both types), but built for speed:

    * plain ``__slots__`` class — no dataclass machinery, no per-field
      validation on the per-transaction fast path (the batched DMA already
      guarantees positive sizes and addresses by construction);
    * no ``__setattr__`` coherency hook.  The scalar ``Transaction`` refreshes
      its cached ``sort_key`` on every ``enqueued_ps`` assignment; batch
      transactions have their key refreshed explicitly at the single enqueue
      point (:meth:`~repro.memctrl.queue.TransactionQueue.push`).  Code that
      assigns ``enqueued_ps`` directly elsewhere must refresh ``sort_key``
      itself.
    """

    __slots__ = (
        "source",
        "dma",
        "queue_class",
        "address",
        "size_bytes",
        "is_write",
        "priority",
        "realtime_behind",
        "created_ps",
        "enqueued_ps",
        "issued_ps",
        "completed_ps",
        "row_hit",
        "uid",
        "sort_key",
    )

    def __init__(
        self,
        source: str,
        dma: str,
        queue_class: QueueClass,
        address: int,
        size_bytes: int,
        is_write: bool,
        priority: int,
        realtime_behind: bool,
        created_ps: int,
    ) -> None:
        self.source = source
        self.dma = dma
        self.queue_class = queue_class
        self.address = address
        self.size_bytes = size_bytes
        self.is_write = is_write
        self.priority = priority
        self.realtime_behind = realtime_behind
        self.created_ps = created_ps
        self.enqueued_ps: Optional[int] = None
        self.issued_ps: Optional[int] = None
        self.completed_ps: Optional[int] = None
        self.row_hit: Optional[bool] = None
        uid = next(_transaction_ids)
        self.uid = uid
        self.sort_key = (created_ps, uid)

    @property
    def latency_ps(self) -> Optional[int]:
        """End-to-end latency from creation to completion, if completed."""
        if self.completed_ps is None:
            return None
        return self.completed_ps - self.created_ps

    def waiting_time_ps(self, now_ps: int) -> int:
        """Time spent waiting in the memory controller so far."""
        if self.enqueued_ps is None:
            return 0
        return max(0, now_ps - self.enqueued_ps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"BatchTransaction(#{self.uid} {self.source}/{self.dma} {kind}"
            f" {self.size_bytes}B @0x{self.address:x} prio={self.priority})"
        )
