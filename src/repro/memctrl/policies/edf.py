"""Earliest-deadline-first scheduling with per-class latency budgets.

A classic real-time baseline: every transaction inherits a latency budget
from its queue class (tight for the DSP, one frame period for media, relaxed
for the CPU and system cores) and the scheduler always serves the transaction
whose deadline expires first.  EDF is optimal when deadlines are the whole
story, but the camcorder's QoS targets are *not* all deadlines — buffer
occupancy and average bandwidth targets do not map onto a single per-request
deadline — which is exactly the heterogeneity argument of the paper's
Section 1.  The static budgets below are therefore a best-effort translation,
and EDF serves as a strong but QoS-agnostic baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import QueueClass, Transaction
from repro.sim.clock import MS, US

#: Default per-class latency budgets (picoseconds from transaction creation).
DEFAULT_BUDGETS_PS: Dict[QueueClass, int] = {
    QueueClass.DSP: 2 * US,
    QueueClass.GPU: 8 * MS,
    QueueClass.CPU: 100 * US,
    QueueClass.MEDIA: 4 * MS,
    QueueClass.SYSTEM: 500 * US,
}


class EdfPolicy(SchedulingPolicy):
    """Serve the transaction with the earliest class-derived deadline."""

    name = "edf"

    def __init__(self, budgets_ps: Optional[Dict[QueueClass, int]] = None) -> None:
        budgets = dict(DEFAULT_BUDGETS_PS)
        if budgets_ps:
            budgets.update(budgets_ps)
        for queue_class, budget in budgets.items():
            if budget <= 0:
                raise ValueError(f"latency budget for {queue_class} must be positive")
        self.budgets_ps = budgets

    def deadline_ps(self, transaction: Transaction) -> int:
        """Absolute deadline of a transaction under the class budgets."""
        budget = self.budgets_ps.get(transaction.queue_class, max(self.budgets_ps.values()))
        return transaction.created_ps + budget

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        return min(
            candidates,
            key=lambda t: (
                self.deadline_ps(t),
                t.enqueued_ps if t.enqueued_ps is not None else t.created_ps,
                t.uid,
            ),
        )
