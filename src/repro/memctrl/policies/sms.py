"""Staged-Memory-Scheduler-style batching (Ausavarungnirun et al., ISCA 2012).

SMS — reference [4] of the paper — decouples scheduling into batch formation
(per-source groups of row-local requests) and a batch scheduler that
alternates between shortest-job-first (favouring latency-sensitive sources
with small batches) and round-robin (guaranteeing bandwidth-heavy sources
forward progress).  This reproduction keeps that two-stage structure at the
transaction level:

* a *batch* is everything a source currently has visible to the scheduler;
* the batch scheduler serves the source with the smallest batch for
  ``sjf_weight`` out of every ``sjf_weight + 1`` decisions and round-robins
  over sources otherwise, a deterministic stand-in for the probabilistic
  alternation of the original design.

SMS was designed for CPU+GPU systems; it has no channel for the diverse QoS
targets of Table 2, which is why it appears here only as a baseline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class SmsPolicy(SchedulingPolicy):
    """Batch-based scheduling alternating shortest-job-first and round-robin."""

    name = "sms"

    def __init__(self, sjf_weight: int = 9) -> None:
        if sjf_weight < 1:
            raise ValueError("sjf_weight must be at least 1")
        self.sjf_weight = sjf_weight
        self._decision = 0
        self._last_served_turn: Dict[str, int] = {}
        self._turn = 0

    def _batches(self, candidates: List[Transaction]) -> Dict[str, List[Transaction]]:
        batches: Dict[str, List[Transaction]] = {}
        for transaction in candidates:
            batches.setdefault(transaction.dma, []).append(transaction)
        return batches

    def _serve_source(self, batch: List[Transaction]) -> Transaction:
        chosen = self.oldest(batch)
        self._turn += 1
        self._last_served_turn[chosen.dma] = self._turn
        return chosen

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        batches = self._batches(candidates)
        self._decision += 1
        use_round_robin = self._decision % (self.sjf_weight + 1) == 0
        if use_round_robin:
            source = min(
                batches,
                key=lambda name: (self._last_served_turn.get(name, -1), name),
            )
        else:
            source = min(
                batches,
                key=lambda name: (len(batches[name]), self._last_served_turn.get(name, -1), name),
            )
        return self._serve_source(batches[source])
