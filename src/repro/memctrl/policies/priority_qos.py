"""Policy 1: priority-based round-robin with an aging backstop.

From the paper: *"Suppose PA and PB are priorities for transactions A and B;
if PA > PB choose A; if PA < PB choose B; otherwise choose between A and B in
round-robin manners."*  To avoid starving low-priority traffic the scheduler
also clears the backlog of transactions that have waited at least T cycles.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class PriorityQosPolicy(SchedulingPolicy):
    """The paper's Policy 1."""

    name = "priority_qos"

    def __init__(self) -> None:
        # Round-robin state: the scheduler "turn" at which each source (DMA)
        # was last served.  Among equal-priority candidates the least recently
        # served source wins, which realises round-robin over sources without
        # needing a fixed source ordering.
        self._last_served_turn: Dict[str, int] = {}
        self._turn = 0

    def _round_robin_pick(self, candidates: List[Transaction]) -> Transaction:
        chosen = min(
            candidates,
            key=lambda t: (
                self._last_served_turn.get(t.dma, -1),
                t.enqueued_ps if t.enqueued_ps is not None else t.created_ps,
                t.uid,
            ),
        )
        self._turn += 1
        self._last_served_turn[chosen.dma] = self._turn
        return chosen

    @staticmethod
    def effective_priorities(
        candidates: List[Transaction], context: SchedulingContext
    ) -> Dict[int, int]:
        """Per-transaction priority after the aging backstop.

        Transactions that have waited at least T cycles are promoted into the
        most urgent group currently present (but still compete round-robin
        within it), which is how the scheduler "periodically clears the
        backlog" without letting stale low-priority traffic pre-empt genuinely
        urgent transactions.
        """
        top = max(t.priority for t in candidates)
        effective: Dict[int, int] = {}
        for transaction in candidates:
            if context.aging is not None and context.aging.is_aged(
                transaction, context.now_ps
            ):
                effective[transaction.uid] = max(transaction.priority, top)
            else:
                effective[transaction.uid] = transaction.priority
        return effective

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        effective = self.effective_priorities(candidates, context)
        top_priority = max(effective.values())
        top = [t for t in candidates if effective[t.uid] == top_priority]
        chosen = self._round_robin_pick(top)
        if context.aging is not None and context.aging.is_aged(chosen, context.now_ps):
            context.aging.record_aged_service()
        return chosen
