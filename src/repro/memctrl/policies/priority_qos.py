"""Policy 1: priority-based round-robin with an aging backstop.

From the paper: *"Suppose PA and PB are priorities for transactions A and B;
if PA > PB choose A; if PA < PB choose B; otherwise choose between A and B in
round-robin manners."*  To avoid starving low-priority traffic the scheduler
also clears the backlog of transactions that have waited at least T cycles.
"""

from __future__ import annotations

from typing import List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


def urgent_group(
    candidates: List[Transaction], context: SchedulingContext
) -> List[Transaction]:
    """The candidates competing at the top effective priority.

    A transaction's effective priority is its own priority, except that
    transactions past the aging threshold are promoted *to* the most urgent
    level currently present (never beyond), which is how the scheduler
    "periodically clears the backlog" without letting stale low-priority
    traffic pre-empt genuinely urgent transactions.  The top effective
    priority therefore always equals the top raw priority, and the urgent
    group is "top raw priority or aged".

    This runs for every scheduling decision of every channel (and every NoC
    switch allocation), so the aging predicate is evaluated against a cutoff
    timestamp computed once per decision, not per candidate.
    """
    top = -1
    for transaction in candidates:
        priority = transaction.priority
        if priority > top:
            top = priority
    aging = context.aging
    if aging is None:
        return [t for t in candidates if t.priority == top]
    cutoff = aging.cutoff_ps(context.now_ps)
    return [
        t
        for t in candidates
        if t.priority == top
        or (t.enqueued_ps is not None and t.enqueued_ps <= cutoff)
    ]


class PriorityQosPolicy(SchedulingPolicy):
    """The paper's Policy 1."""

    name = "priority_qos"

    def __init__(self) -> None:
        # Round-robin state: the scheduler "turn" at which each source (DMA)
        # was last served.  Among equal-priority candidates the least recently
        # served source wins, which realises round-robin over sources without
        # needing a fixed source ordering.
        self._last_served_turn: Dict[str, int] = {}
        self._turn = 0

    def _round_robin_pick(self, candidates: List[Transaction]) -> Transaction:
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            last_served = self._last_served_turn.get
            # Transaction.sort_key caches (enqueued-or-created time, uid), so
            # the tie-break tuple is two lookups instead of three attributes.
            chosen = min(
                candidates, key=lambda t: (last_served(t.dma, -1), t.sort_key)
            )
        self._turn += 1
        self._last_served_turn[chosen.dma] = self._turn
        return chosen

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        group = urgent_group(candidates, context)
        chosen = self._round_robin_pick(group)
        aging = context.aging
        if aging is not None and aging.is_aged(chosen, context.now_ps):
            aging.record_aged_service()
        return chosen
