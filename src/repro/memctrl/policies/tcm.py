"""TCM-style clustered scheduling (Kim et al., MICRO 2010), simplified.

Thread Cluster Memory scheduling splits the request sources into a
latency-sensitive cluster (low bandwidth demand) and a bandwidth-intensive
cluster, always prioritises the former, and shuffles the ranking inside the
bandwidth cluster to spread interference.  This reproduction keeps the
structure — per-epoch bandwidth accounting, clustering by share of total
demand, strict preference for the light cluster, rotating rank in the heavy
cluster — while dropping the niceness metric of the original, which needs
per-thread row-locality statistics that do not exist for fixed-function DMAs.

Like ATLAS it is a CPU-centric baseline: clustering by bandwidth intensity
helps the DSP and GPS, but the display (high bandwidth *and* hard QoS) lands
in the bandwidth cluster and still misses its target under contention.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class TcmPolicy(SchedulingPolicy):
    """Two-cluster scheduling: latency-sensitive sources first."""

    name = "tcm"

    def __init__(
        self,
        epoch_ps: int = 10_000_000,
        light_cluster_share: float = 0.15,
    ) -> None:
        if epoch_ps <= 0:
            raise ValueError("epoch_ps must be positive")
        if not 0.0 < light_cluster_share < 1.0:
            raise ValueError("light_cluster_share must be within (0, 1)")
        self.epoch_ps = epoch_ps
        self.light_cluster_share = light_cluster_share
        self._epoch_bytes: Dict[str, int] = {}
        self._light_cluster: Set[str] = set()
        self._epoch_start_ps = 0
        self._epoch_index = 0
        self._rank_offset = 0

    # ------------------------------------------------------------------ #
    # Clustering
    # ------------------------------------------------------------------ #
    def _roll_epoch(self, now_ps: int) -> None:
        while now_ps - self._epoch_start_ps >= self.epoch_ps:
            self._epoch_start_ps += self.epoch_ps
            self._epoch_index += 1
            self._recluster()
            self._epoch_bytes.clear()
            # Rotate the heavy-cluster ranking every epoch (TCM's shuffling).
            self._rank_offset = self._epoch_index

    def _recluster(self) -> None:
        """Sources consuming the smallest share of traffic form the light cluster."""
        total = sum(self._epoch_bytes.values())
        if total <= 0:
            self._light_cluster = set()
            return
        threshold = total * self.light_cluster_share
        light: Set[str] = set()
        consumed = 0
        for source, amount in sorted(self._epoch_bytes.items(), key=lambda item: item[1]):
            if consumed + amount > threshold:
                break
            light.add(source)
            consumed += amount
        self._light_cluster = light

    def is_latency_sensitive(self, dma: str) -> bool:
        """Whether a DMA is currently classified into the light cluster."""
        return dma in self._light_cluster

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def _heavy_rank(self, dma: str) -> int:
        """Deterministic per-epoch rotation of heavy-cluster sources."""
        return (hash(dma) + self._rank_offset) % 1024

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        self._roll_epoch(context.now_ps)
        light = [t for t in candidates if t.dma in self._light_cluster]
        if light:
            chosen = self.oldest(light)
        else:
            chosen = min(
                candidates,
                key=lambda t: (
                    self._heavy_rank(t.dma),
                    t.enqueued_ps if t.enqueued_ps is not None else t.created_ps,
                    t.uid,
                ),
            )
        self._epoch_bytes[chosen.dma] = (
            self._epoch_bytes.get(chosen.dma, 0) + chosen.size_bytes
        )
        return chosen
