"""Frame-rate-based QoS baseline [Jeong et al., DAC 2012].

Media cores advertise (through ``Transaction.realtime_behind``) whether their
frame progress is behind the real-time reference.  The policy prioritises
those lagging media transactions and otherwise provides best-effort FCFS
service.  Cores whose QoS target is not a frame rate (DSP, display buffer,
GPS, WiFi, ...) receive no adaptation at all, which is why all system cores
fail under this baseline in Fig. 5(c)/6(c).
"""

from __future__ import annotations

from typing import List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class FrameRateQosPolicy(SchedulingPolicy):
    """Prioritise media cores that are missing their frame-rate deadline."""

    name = "frame_rate_qos"

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        behind = [t for t in candidates if t.realtime_behind]
        if behind:
            return self.oldest(behind)
        return self.oldest(candidates)
