"""First-come-first-serve scheduling (the paper's weakest baseline)."""

from __future__ import annotations

from typing import List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class FcfsPolicy(SchedulingPolicy):
    """Serve transactions strictly in arrival order.

    FCFS lets bandwidth-heavy cores monopolise the memory system: whoever
    enqueues the most transactions gets served the most, which is exactly the
    starvation of latency-sensitive cores shown in Fig. 5(a)/6(a).
    """

    name = "fcfs"

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        return self.oldest(candidates)
