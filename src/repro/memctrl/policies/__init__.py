"""Memory-controller scheduling policies evaluated in the paper.

* :class:`FcfsPolicy` — first-come-first-serve.
* :class:`RoundRobinPolicy` — round-robin over the five transaction queues.
* :class:`FrFcfsPolicy` — first-ready FCFS (row hits first), the bandwidth
  upper bound of Fig. 8.
* :class:`FrameRateQosPolicy` — the frame-rate-based QoS baseline [Jeong et
  al., DAC 2012]: media cores are prioritised while they miss real-time
  deadlines, everyone else is served best-effort.
* :class:`PriorityQosPolicy` — the paper's Policy 1, priority-based
  round-robin with an aging backstop.
* :class:`PriorityRowBufferPolicy` — the paper's Policy 2 (QoS-RB), Policy 1
  extended with row-buffer-hit optimisation below the delta threshold.

Additional baselines from the related-work literature (not part of the
paper's own comparison, used by the extended benchmarks):

* :class:`AtlasPolicy` — least-attained-service scheduling.
* :class:`TcmPolicy` — two-cluster (latency vs. bandwidth) scheduling.
* :class:`SmsPolicy` — staged-memory-scheduler-style batching (the paper's
  reference [4]).
* :class:`EdfPolicy` — earliest-deadline-first with per-class budgets.
"""

from typing import Dict, Type

from repro.memctrl.policies.atlas import AtlasPolicy
from repro.memctrl.policies.edf import EdfPolicy
from repro.memctrl.policies.fcfs import FcfsPolicy
from repro.memctrl.policies.frame_rate_qos import FrameRateQosPolicy
from repro.memctrl.policies.frfcfs import FrFcfsPolicy
from repro.memctrl.policies.priority_qos import PriorityQosPolicy
from repro.memctrl.policies.priority_rowbuffer import PriorityRowBufferPolicy
from repro.memctrl.policies.round_robin import RoundRobinPolicy
from repro.memctrl.policies.sms import SmsPolicy
from repro.memctrl.policies.tcm import TcmPolicy
from repro.memctrl.scheduler import SchedulingPolicy

_POLICY_REGISTRY: Dict[str, Type[SchedulingPolicy]] = {
    FcfsPolicy.name: FcfsPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    FrFcfsPolicy.name: FrFcfsPolicy,
    FrameRateQosPolicy.name: FrameRateQosPolicy,
    PriorityQosPolicy.name: PriorityQosPolicy,
    PriorityRowBufferPolicy.name: PriorityRowBufferPolicy,
    AtlasPolicy.name: AtlasPolicy,
    TcmPolicy.name: TcmPolicy,
    SmsPolicy.name: SmsPolicy,
    EdfPolicy.name: EdfPolicy,
}


def available_policies() -> Dict[str, Type[SchedulingPolicy]]:
    """Mapping from policy name to policy class."""
    return dict(_POLICY_REGISTRY)


def register_policy(policy_cls: Type[SchedulingPolicy], replace: bool = False) -> None:
    """Register a user-defined scheduling policy under its ``name`` attribute.

    Registered policies become available to :func:`make_policy`, the system
    builder and the CLI, so downstream users can evaluate their own scheduler
    against the paper's workloads without modifying the package (see
    ``examples/custom_policy.py``).  Note that the NoC configuration validates
    arbitration names against :data:`repro.sim.config.KNOWN_ARBITRATIONS`;
    custom policies are accepted in the memory controller and, when passed as
    instances, in :class:`~repro.noc.arbiter.NocArbiter`.
    """
    if not issubclass(policy_cls, SchedulingPolicy):
        raise TypeError("policy_cls must subclass SchedulingPolicy")
    name = policy_cls.name
    if not name or name == SchedulingPolicy.name:
        raise ValueError("policy_cls must define a unique 'name' attribute")
    if name in _POLICY_REGISTRY and not replace:
        raise ValueError(f"policy '{name}' is already registered (pass replace=True)")
    _POLICY_REGISTRY[name] = policy_cls


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a scheduling policy by its registry name."""
    try:
        policy_cls = _POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_POLICY_REGISTRY))
        raise ValueError(f"unknown scheduling policy '{name}' (known: {known})") from None
    return policy_cls()


__all__ = [
    "AtlasPolicy",
    "EdfPolicy",
    "FcfsPolicy",
    "FrFcfsPolicy",
    "FrameRateQosPolicy",
    "PriorityQosPolicy",
    "PriorityRowBufferPolicy",
    "RoundRobinPolicy",
    "SmsPolicy",
    "TcmPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
]
