"""Round-robin over the memory controller's transaction queues."""

from __future__ import annotations

from typing import List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import QueueClass, Transaction

#: Fixed rotation order over the five Table-1 queues.
_CLASS_ORDER = [
    QueueClass.CPU,
    QueueClass.GPU,
    QueueClass.DSP,
    QueueClass.MEDIA,
    QueueClass.SYSTEM,
]


class RoundRobinPolicy(SchedulingPolicy):
    """Serve the five transaction queues in turn, oldest-first within a queue.

    Round-robin isolates queue classes from each other (the DSP no longer
    competes with media traffic), but every media core shares the single MEDIA
    queue, so the display and camera still lose to bursty media cores — the
    failure shown in Fig. 5(b).
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._next_class_index = 0

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        by_class = {}
        for transaction in candidates:
            by_class.setdefault(transaction.queue_class, []).append(transaction)

        for step in range(len(_CLASS_ORDER)):
            queue_class = _CLASS_ORDER[(self._next_class_index + step) % len(_CLASS_ORDER)]
            if queue_class in by_class:
                self._next_class_index = (
                    self._next_class_index + step + 1
                ) % len(_CLASS_ORDER)
                return self.oldest(by_class[queue_class])
        # Candidates only contain classes outside the rotation order (cannot
        # happen with QueueClass, but keeps the policy total).
        return self.oldest(candidates)
