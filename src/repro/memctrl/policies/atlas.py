"""ATLAS-style least-attained-service scheduling (Kim et al., HPCA 2010).

A well-known CPU-centric baseline: sources that have received the least
memory service so far are ranked highest, with the attained service decayed
at epoch boundaries so that long-running streaming cores cannot permanently
monopolise the ranking.  It is included here as an additional comparison
point: ATLAS improves fairness over FCFS but, like the other CPU-centric
schedulers the paper discusses in Section 2, it has no notion of the
heterogeneous QoS targets of an MPSoC, so a latency-sensitive core with tiny
bandwidth needs and a display about to underflow look identical to it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class AtlasPolicy(SchedulingPolicy):
    """Least-attained-service first with periodic epoch decay."""

    name = "atlas"

    def __init__(self, epoch_ps: int = 10_000_000, decay: float = 0.5) -> None:
        if epoch_ps <= 0:
            raise ValueError("epoch_ps must be positive")
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be within [0, 1)")
        self.epoch_ps = epoch_ps
        self.decay = decay
        self._attained_bytes: Dict[str, float] = {}
        self._epoch_start_ps = 0

    def _roll_epoch(self, now_ps: int) -> None:
        """Decay attained service once per elapsed epoch."""
        while now_ps - self._epoch_start_ps >= self.epoch_ps:
            self._epoch_start_ps += self.epoch_ps
            for source in self._attained_bytes:
                self._attained_bytes[source] *= self.decay

    def attained_bytes(self, dma: str) -> float:
        """Attained (decayed) service of a DMA, for tests and reports."""
        return self._attained_bytes.get(dma, 0.0)

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        self._roll_epoch(context.now_ps)
        chosen = min(
            candidates,
            key=lambda t: (
                self._attained_bytes.get(t.dma, 0.0),
                t.enqueued_ps if t.enqueued_ps is not None else t.created_ps,
                t.uid,
            ),
        )
        self._attained_bytes[chosen.dma] = (
            self._attained_bytes.get(chosen.dma, 0.0) + chosen.size_bytes
        )
        return chosen
