"""Policy 2 (QoS-RB): Policy 1 plus row-buffer-hit optimisation.

From the paper: *"Suppose transaction A is going to an active row-buffer and
B is not.  If PA, PB < delta or PA = PB, choose A.  Otherwise, perform
priority-based round-robin."*  The delta threshold trades DRAM efficiency
against QoS responsiveness; the paper uses delta = 6.
"""

from __future__ import annotations

from typing import List

from repro.memctrl.policies.priority_qos import PriorityQosPolicy, urgent_group
from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class PriorityRowBufferPolicy(SchedulingPolicy):
    """The paper's Policy 2: QoS-aware scheduling with row-buffer optimisation."""

    name = "priority_rowbuffer"

    def __init__(self) -> None:
        self._priority_rr = PriorityQosPolicy()

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        is_row_hit = context.is_row_hit

        if max(t.priority for t in candidates) < context.row_buffer_delta:
            # No transaction is urgent: spend the slot on DRAM efficiency.
            row_hits = [t for t in candidates if is_row_hit(t)]
            if row_hits:
                return self.oldest(row_hits)
            return self._priority_rr.select(candidates, context)

        # At least one urgent transaction: QoS comes first.  Within the most
        # urgent group a row hit is still preferred (the "PA = PB, choose A"
        # clause), because it costs nothing in QoS terms.
        top = urgent_group(candidates, context)
        top_hits = [t for t in top if is_row_hit(t)]
        if top_hits:
            return self.oldest(top_hits)
        return self._priority_rr.select(top, context)
