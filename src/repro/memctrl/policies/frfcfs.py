"""First-ready FCFS: maximise row-buffer hits regardless of QoS."""

from __future__ import annotations

from typing import List

from repro.memctrl.scheduler import SchedulingContext, SchedulingPolicy
from repro.memctrl.transaction import Transaction


class FrFcfsPolicy(SchedulingPolicy):
    """Prefer transactions that hit an open row; otherwise serve oldest first.

    FR-FCFS is the bandwidth upper bound in Fig. 8, but because it is blind to
    QoS it postpones urgent transactions whenever a streaming core keeps a row
    open — the GPS/display degradation shown in Fig. 9.
    """

    name = "fr_fcfs"

    def select(
        self, candidates: List[Transaction], context: SchedulingContext
    ) -> Transaction:
        self._check_candidates(candidates)
        row_hits = [t for t in candidates if context.is_row_hit(t)]
        if row_hits:
            return self.oldest(row_hits)
        return self.oldest(candidates)
