"""Per-class transaction queues with a bounded scheduler-visible window."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List

from repro.memctrl.transaction import Transaction


class TransactionQueue:
    """A FIFO of pending transactions for one queue class.

    The memory controller in the paper has a finite number of entries (42
    split over 5 queues).  Rather than exerting back-pressure on the NoC, the
    model accepts every transaction but only exposes the oldest
    ``visible_entries`` to the scheduler, which is what bounds the reordering
    window exactly as a finite command queue would.
    """

    def __init__(self, name: str, visible_entries: int) -> None:
        if visible_entries <= 0:
            raise ValueError("visible_entries must be positive")
        self.name = name
        self.visible_entries = visible_entries
        self._pending: Deque[Transaction] = deque()
        self.peak_occupancy = 0
        self.total_enqueued = 0

    def push(self, transaction: Transaction, now_ps: int) -> None:
        transaction.enqueued_ps = now_ps
        self._pending.append(transaction)
        self.total_enqueued += 1
        if len(self._pending) > self.peak_occupancy:
            self.peak_occupancy = len(self._pending)

    def visible(self) -> List[Transaction]:
        """The transactions the scheduler may currently reorder among."""
        window: List[Transaction] = []
        for transaction in self._pending:
            window.append(transaction)
            if len(window) >= self.visible_entries:
                break
        return window

    def remove(self, transaction: Transaction) -> None:
        """Remove a transaction that the scheduler selected for issue."""
        try:
            self._pending.remove(transaction)
        except ValueError:
            raise KeyError(
                f"transaction #{transaction.uid} is not in queue '{self.name}'"
            ) from None

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterable[Transaction]:
        return iter(self._pending)

    @property
    def is_empty(self) -> bool:
        return not self._pending
