"""Per-class transaction queues with a bounded scheduler-visible window."""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterator, List

from repro.memctrl.transaction import Transaction


class TransactionQueue:
    """A FIFO of pending transactions for one queue class.

    The memory controller in the paper has a finite number of entries (42
    split over 5 queues).  Rather than exerting back-pressure on the NoC, the
    model accepts every transaction but only exposes the oldest
    ``visible_entries`` to the scheduler, which is what bounds the reordering
    window exactly as a finite command queue would.

    Storage is an insertion-ordered ``uid -> transaction`` map: iteration
    order is FIFO (matching the old deque) while the scheduler's arbitrary
    removals are O(1) instead of an equality scan per issue.
    """

    def __init__(self, name: str, visible_entries: int) -> None:
        if visible_entries <= 0:
            raise ValueError("visible_entries must be positive")
        self.name = name
        self.visible_entries = visible_entries
        self._pending: Dict[int, Transaction] = {}
        self.peak_occupancy = 0
        self.total_enqueued = 0

    def push(self, transaction: Transaction, now_ps: int) -> None:
        # The sort key is refreshed explicitly so the push works for both
        # transaction types: the batched kernel's BatchTransaction has no
        # __setattr__ coherency hook (the scalar Transaction's hook makes the
        # second assignment a harmless no-op).
        transaction.enqueued_ps = now_ps
        transaction.sort_key = (now_ps, transaction.uid)
        pending = self._pending
        pending[transaction.uid] = transaction
        self.total_enqueued += 1
        if len(pending) > self.peak_occupancy:
            self.peak_occupancy = len(pending)

    def visible(self) -> List[Transaction]:
        """The transactions the scheduler may currently reorder among."""
        pending = self._pending
        if len(pending) <= self.visible_entries:
            return list(pending.values())
        return list(islice(pending.values(), self.visible_entries))

    def remove(self, transaction: Transaction) -> None:
        """Remove a transaction that the scheduler selected for issue."""
        if self._pending.pop(transaction.uid, None) is None:
            raise KeyError(
                f"transaction #{transaction.uid} is not in queue '{self.name}'"
            )

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._pending.values())

    @property
    def is_empty(self) -> bool:
        return not self._pending
