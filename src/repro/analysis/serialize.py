"""JSON serialisation of configurations and experiment results.

Long benchmark runs are expensive (tens of seconds each), so being able to
save an :class:`~repro.system.experiment.ExperimentResult` to disk and reload
it later — for re-plotting, regression comparison or EXPERIMENTS.md updates —
is worth a small amount of serialisation code.  Traces are included
optionally because the full NPI time series of a 33 ms run is large.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.sim.config import (
    DramConfig,
    DramTimingConfig,
    MemoryControllerConfig,
    NocConfig,
    SimulationConfig,
)
from repro.sim.trace import TraceRecorder
from repro.system.experiment import ExperimentResult

PathLike = Union[str, Path]


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
def simulation_config_to_dict(config: SimulationConfig) -> Dict[str, object]:
    """Flatten a :class:`SimulationConfig` (and its nested configs) to a dict."""
    return {
        "duration_ps": config.duration_ps,
        "seed": config.seed,
        "sim_scale": config.sim_scale,
        "priority_bits": config.priority_bits,
        "adaptation_interval_ps": config.adaptation_interval_ps,
        "warmup_ps": config.warmup_ps,
        "dram": {
            "io_freq_mhz": config.dram.io_freq_mhz,
            "channels": config.dram.channels,
            "ranks_per_channel": config.dram.ranks_per_channel,
            "banks_per_rank": config.dram.banks_per_rank,
            "row_size_bytes": config.dram.row_size_bytes,
            "bus_bytes_per_cycle": config.dram.bus_bytes_per_cycle,
            "capacity_bytes": config.dram.capacity_bytes,
            "timing": dict(config.dram.timing.__dict__),
        },
        "memory_controller": dict(config.memory_controller.__dict__),
        "noc": dict(config.noc.__dict__),
    }


def simulation_config_from_dict(data: Dict[str, object]) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`simulation_config_to_dict`."""
    dram_data = dict(data["dram"])  # type: ignore[arg-type]
    timing = DramTimingConfig(**dram_data.pop("timing"))
    dram = DramConfig(timing=timing, **dram_data)
    controller = MemoryControllerConfig(**data["memory_controller"])  # type: ignore[arg-type]
    noc = NocConfig(**data["noc"])  # type: ignore[arg-type]
    return SimulationConfig(
        duration_ps=int(data["duration_ps"]),
        seed=int(data["seed"]),
        sim_scale=float(data["sim_scale"]),
        priority_bits=int(data["priority_bits"]),
        adaptation_interval_ps=int(data["adaptation_interval_ps"]),
        warmup_ps=int(data["warmup_ps"]),
        dram=dram,
        memory_controller=controller,
        noc=noc,
    )


# --------------------------------------------------------------------------- #
# Experiment results
# --------------------------------------------------------------------------- #
def _trace_to_dict(trace: TraceRecorder) -> Dict[str, Dict[str, list]]:
    return {
        name: {"times_ps": list(series.times_ps), "values": list(series.values)}
        for name, series in ((name, trace.get(name)) for name in trace.names())
        if series is not None
    }


def _trace_from_dict(data: Dict[str, Dict[str, list]]) -> TraceRecorder:
    trace = TraceRecorder()
    for name, payload in data.items():
        series = trace.series(name)
        for time_ps, value in zip(payload["times_ps"], payload["values"]):
            series.append(int(time_ps), float(value))
    return trace


def experiment_result_to_dict(
    result: ExperimentResult, include_trace: bool = False
) -> Dict[str, object]:
    """Convert an :class:`ExperimentResult` into a JSON-compatible dict."""
    payload: Dict[str, object] = {
        "case": result.case,
        "policy": result.policy,
        "adaptation_enabled": result.adaptation_enabled,
        "duration_ps": result.duration_ps,
        "dram_freq_mhz": result.dram_freq_mhz,
        "min_core_npi": dict(result.min_core_npi),
        "mean_core_npi": dict(result.mean_core_npi),
        "dram_bandwidth_bytes_per_s": result.dram_bandwidth_bytes_per_s,
        "dram_row_hit_rate": result.dram_row_hit_rate,
        "served_transactions": result.served_transactions,
        "average_latency_ps": result.average_latency_ps,
        "priority_distributions": {
            dma: {str(level): share for level, share in distribution.items()}
            for dma, distribution in result.priority_distributions.items()
        },
    }
    if include_trace and result.trace is not None:
        payload["trace"] = _trace_to_dict(result.trace)
    return payload


def experiment_result_from_dict(data: Dict[str, object]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its dictionary form."""
    trace: Optional[TraceRecorder] = None
    if "trace" in data:
        trace = _trace_from_dict(data["trace"])  # type: ignore[arg-type]
    return ExperimentResult(
        case=str(data["case"]),
        policy=str(data["policy"]),
        adaptation_enabled=bool(data["adaptation_enabled"]),
        duration_ps=int(data["duration_ps"]),
        dram_freq_mhz=float(data["dram_freq_mhz"]),
        min_core_npi={k: float(v) for k, v in data["min_core_npi"].items()},  # type: ignore[union-attr]
        mean_core_npi={k: float(v) for k, v in data["mean_core_npi"].items()},  # type: ignore[union-attr]
        dram_bandwidth_bytes_per_s=float(data["dram_bandwidth_bytes_per_s"]),
        dram_row_hit_rate=float(data["dram_row_hit_rate"]),
        served_transactions=int(data["served_transactions"]),
        average_latency_ps=float(data["average_latency_ps"]),
        priority_distributions={
            dma: {int(level): float(share) for level, share in distribution.items()}
            for dma, distribution in data.get("priority_distributions", {}).items()  # type: ignore[union-attr]
        },
        trace=trace,
    )


def save_result(
    result: ExperimentResult, path: PathLike, include_trace: bool = False
) -> Path:
    """Serialise a result to a JSON file and return the written path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload = experiment_result_to_dict(result, include_trace=include_trace)
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def load_result(path: PathLike) -> ExperimentResult:
    """Load a result previously written by :func:`save_result`."""
    data = json.loads(Path(path).read_text())
    return experiment_result_from_dict(data)


def save_config(config: SimulationConfig, path: PathLike) -> Path:
    """Serialise a simulation configuration to a JSON file."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(simulation_config_to_dict(config), indent=2, sort_keys=True)
    )
    return destination


def load_config(path: PathLike) -> SimulationConfig:
    """Load a configuration previously written by :func:`save_config`."""
    return simulation_config_from_dict(json.loads(Path(path).read_text()))
