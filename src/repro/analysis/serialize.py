"""JSON serialisation of configurations and experiment results.

Long benchmark runs are expensive (tens of seconds each), so being able to
save an :class:`~repro.system.experiment.ExperimentResult` to disk and reload
it later — for re-plotting, regression comparison or EXPERIMENTS.md updates —
is worth a small amount of serialisation code.

Traces are stored in a compact columnar form: most series of one run are
sampled on the same time axis (every adaptation interval), so the axes are
deduplicated into a pool and uniform axes collapse to ``start/step/count``
instead of one integer per sample.  Decoding also accepts the legacy
per-series ``times_ps``/``values`` layout, so old result files stay
readable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.config import SimulationConfig
from repro.sim.trace import TraceRecorder
from repro.system.experiment import ExperimentResult

PathLike = Union[str, Path]

#: Marker of the compact columnar trace layout.
TRACE_FORMAT_COLUMNAR = "columnar/1"


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
def simulation_config_to_dict(config: SimulationConfig) -> Dict[str, object]:
    """Flatten a :class:`SimulationConfig` (and its nested configs) to a dict."""
    return config.to_dict()


def simulation_config_from_dict(data: Dict[str, object]) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`simulation_config_to_dict`."""
    return SimulationConfig.from_dict(data)


# --------------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------------- #
def _encode_axis(times_ps: List[int]) -> Dict[str, object]:
    """Encode one time axis: uniform axes as start/step/count, else deltas."""
    if len(times_ps) >= 2:
        step = times_ps[1] - times_ps[0]
        if all(
            times_ps[i + 1] - times_ps[i] == step for i in range(1, len(times_ps) - 1)
        ):
            return {"start": times_ps[0], "step": step, "count": len(times_ps)}
    deltas = [times_ps[0]] if times_ps else []
    for previous, current in zip(times_ps, times_ps[1:]):
        deltas.append(current - previous)
    return {"deltas": deltas}


def _decode_axis(data: Dict[str, object]) -> List[int]:
    if "deltas" in data:
        times: List[int] = []
        position = 0
        for index, delta in enumerate(data["deltas"]):  # type: ignore[union-attr]
            position = int(delta) if index == 0 else position + int(delta)
            times.append(position)
        return times
    start, step, count = int(data["start"]), int(data["step"]), int(data["count"])
    return [start + step * index for index in range(count)]


def _trace_to_dict(trace: TraceRecorder) -> Dict[str, object]:
    axes: List[Dict[str, object]] = []
    axis_index: Dict[Tuple[int, ...], int] = {}
    series_payload: Dict[str, Dict[str, object]] = {}
    for name in trace.names():
        series = trace.get(name)
        if series is None:
            continue
        key = tuple(series.times_ps)
        index = axis_index.get(key)
        if index is None:
            index = len(axes)
            axis_index[key] = index
            axes.append(_encode_axis(list(series.times_ps)))
        series_payload[name] = {"axis": index, "values": list(series.values)}
    return {"format": TRACE_FORMAT_COLUMNAR, "axes": axes, "series": series_payload}


def _trace_from_dict(data: Dict[str, object]) -> TraceRecorder:
    trace = TraceRecorder()
    if data.get("format") == TRACE_FORMAT_COLUMNAR:
        axes = [_decode_axis(axis) for axis in data["axes"]]  # type: ignore[union-attr]
        for name, payload in data["series"].items():  # type: ignore[union-attr]
            series = trace.series(name)
            for time_ps, value in zip(axes[int(payload["axis"])], payload["values"]):
                series.append(int(time_ps), float(value))
        return trace
    # Legacy layout: one times/values pair per series.
    for name, payload in data.items():
        series = trace.series(name)
        for time_ps, value in zip(payload["times_ps"], payload["values"]):
            series.append(int(time_ps), float(value))
    return trace


# --------------------------------------------------------------------------- #
# Experiment results
# --------------------------------------------------------------------------- #
def experiment_result_to_dict(
    result: ExperimentResult, include_trace: bool = False
) -> Dict[str, object]:
    """Convert an :class:`ExperimentResult` into a JSON-compatible dict."""
    payload: Dict[str, object] = {
        "scenario": result.scenario,
        "policy": result.policy,
        "adaptation_enabled": result.adaptation_enabled,
        "duration_ps": result.duration_ps,
        "dram_freq_mhz": result.dram_freq_mhz,
        "min_core_npi": dict(result.min_core_npi),
        "mean_core_npi": dict(result.mean_core_npi),
        "dram_bandwidth_bytes_per_s": result.dram_bandwidth_bytes_per_s,
        "dram_row_hit_rate": result.dram_row_hit_rate,
        "served_transactions": result.served_transactions,
        "average_latency_ps": result.average_latency_ps,
        "priority_distributions": {
            dma: {str(level): share for level, share in distribution.items()}
            for dma, distribution in result.priority_distributions.items()
        },
    }
    if include_trace and result.trace is not None:
        payload["trace"] = _trace_to_dict(result.trace)
    return payload


def experiment_result_from_dict(data: Dict[str, object]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its dictionary form."""
    trace: Optional[TraceRecorder] = None
    if "trace" in data:
        trace = _trace_from_dict(data["trace"])  # type: ignore[arg-type]
    scenario = data.get("scenario", data.get("case"))  # "case": pre-scenario files
    return ExperimentResult(
        scenario=str(scenario),
        policy=str(data["policy"]),
        adaptation_enabled=bool(data["adaptation_enabled"]),
        duration_ps=int(data["duration_ps"]),
        dram_freq_mhz=float(data["dram_freq_mhz"]),
        min_core_npi={k: float(v) for k, v in data["min_core_npi"].items()},  # type: ignore[union-attr]
        mean_core_npi={k: float(v) for k, v in data["mean_core_npi"].items()},  # type: ignore[union-attr]
        dram_bandwidth_bytes_per_s=float(data["dram_bandwidth_bytes_per_s"]),
        dram_row_hit_rate=float(data["dram_row_hit_rate"]),
        served_transactions=int(data["served_transactions"]),
        average_latency_ps=float(data["average_latency_ps"]),
        priority_distributions={
            dma: {int(level): float(share) for level, share in distribution.items()}
            for dma, distribution in data.get("priority_distributions", {}).items()  # type: ignore[union-attr]
        },
        trace=trace,
    )


def save_result(
    result: ExperimentResult, path: PathLike, include_trace: bool = False
) -> Path:
    """Serialise a result to a JSON file and return the written path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload = experiment_result_to_dict(result, include_trace=include_trace)
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def load_result(path: PathLike) -> ExperimentResult:
    """Load a result previously written by :func:`save_result`."""
    data = json.loads(Path(path).read_text())
    return experiment_result_from_dict(data)


def save_config(config: SimulationConfig, path: PathLike) -> Path:
    """Serialise a simulation configuration to a JSON file."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(simulation_config_to_dict(config), indent=2, sort_keys=True)
    )
    return destination


def load_config(path: PathLike) -> SimulationConfig:
    """Load a configuration previously written by :func:`save_config`."""
    return simulation_config_from_dict(json.loads(Path(path).read_text()))
