"""The paper's quantitative claims and qualitative shape checks.

EXPERIMENTS.md compares this reproduction against the paper figure by
figure.  This module keeps the paper's reported numbers in one place
(:data:`PAPER_CLAIMS`) and provides the *shape checks* — who fails under
which policy, who wins on bandwidth — that the reproduction is expected to
match even though its absolute numbers come from a different (simulated)
substrate.

Each check returns a :class:`ClaimCheck` rather than asserting, so the same
functions serve the benchmark assertions, EXPERIMENTS.md generation and the
CLI's ``report`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.analysis.metrics import bandwidth_gain, bandwidth_ordering, qos_satisfied
from repro.scenario import critical_cores_for
from repro.system.experiment import ExperimentResult


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative statement made in the paper's evaluation section."""

    experiment: str
    claim: str
    value: Optional[float] = None


#: The paper's headline numbers, indexed by the figure they belong to.
PAPER_CLAIMS: List[PaperClaim] = [
    PaperClaim("fig5", "FCFS: display NPI drops as low as 0.13 (13 % of target)", 0.13),
    PaperClaim("fig5", "FCFS: GPS NPI drops below 1 (starved by system cores)", 1.0),
    PaperClaim("fig5", "RR: display and camera achieve <10 % of target in the worst case", 0.10),
    PaperClaim("fig5", "Frame-rate QoS: all media cores pass, all system cores fail", None),
    PaperClaim("fig5", "Priority QoS (Policy 1): every core reaches its target", None),
    PaperClaim("fig6", "FCFS: the latency-sensitive DSP fails in case B", None),
    PaperClaim("fig6", "Priority QoS: every case-B core reaches its target", None),
    PaperClaim("fig7", "At 1700 MHz the image processor holds priority 0 ~90 % of the time", 0.90),
    PaperClaim("fig7", "At 1300 MHz the image processor holds priority 7 ~60 % of the time", 0.60),
    PaperClaim("fig8", "QoS-RB bandwidth is within ~1 % of FR-FCFS", 0.01),
    PaperClaim("fig8", "QoS-RB gains ~24 % bandwidth over RR", 0.24),
    PaperClaim("fig8", "QoS-RB gains ~12 % bandwidth over FCFS", 0.12),
    PaperClaim("fig8", "QoS-RB gains ~10 % bandwidth over QoS (Policy 1)", 0.10),
    PaperClaim("fig9", "FR-FCFS degrades the GPS and the display; QoS-RB degrades nobody", None),
]


def claims_for(experiment: str) -> List[PaperClaim]:
    """All recorded paper claims belonging to one experiment id (e.g. "fig8")."""
    return [claim for claim in PAPER_CLAIMS if claim.experiment == experiment]


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of checking one qualitative claim against measured results."""

    experiment: str
    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.experiment}: {self.description} ({self.detail})"


# --------------------------------------------------------------------------- #
# Shape checks per figure
# --------------------------------------------------------------------------- #
def check_policy_failures(
    results: Mapping[str, ExperimentResult], scenario
) -> List[ClaimCheck]:
    """Figs. 5/6 shape: which policies fail which critical cores.

    The reproduction target is the *pattern*: the baselines each leave at
    least one critical core below target while the priority-based policy
    satisfies every core.  For scenarios beyond the paper's two cases the
    same structural check applies under the scenario's own experiment label.

    ``scenario`` may be a catalog name or a :class:`~repro.scenario.Scenario`
    object — pass the object for file-based scenarios whose names are not in
    the catalog.
    """
    critical = critical_cores_for(scenario)
    name = getattr(scenario, "name", scenario)
    checks: List[ClaimCheck] = []
    experiment = {"case_a": "fig5", "case_b": "fig6"}.get(name, name)

    for baseline in ("fcfs", "round_robin", "frame_rate_qos"):
        if baseline not in results:
            continue
        failing = results[baseline].failing_cores()
        failing_critical = [core for core in failing if core in critical]
        checks.append(
            ClaimCheck(
                experiment=experiment,
                description=f"{baseline} leaves at least one critical core below target",
                passed=bool(failing_critical),
                detail=f"failing critical cores: {failing_critical or 'none'}",
            )
        )

    if "priority_qos" in results:
        satisfied = qos_satisfied(results["priority_qos"], cores=critical)
        checks.append(
            ClaimCheck(
                experiment=experiment,
                description="priority_qos (Policy 1) meets every critical core's target",
                passed=satisfied,
                detail=f"failing: {results['priority_qos'].failing_cores() or 'none'}",
            )
        )
    return checks


def check_fig7_priority_escalation(
    sweep: Mapping[float, ExperimentResult], dma_name: str
) -> List[ClaimCheck]:
    """Fig. 7 shape: priority levels escalate as DRAM frequency drops."""
    from repro.analysis.metrics import mean_priority, priority_distribution_table

    table = priority_distribution_table(sweep, dma_name)
    frequencies = sorted(table)
    means = {freq: mean_priority(table[freq]) for freq in frequencies}
    lowest, highest = frequencies[0], frequencies[-1]
    checks = [
        ClaimCheck(
            experiment="fig7",
            description="mean priority rises as DRAM frequency decreases",
            passed=means[lowest] > means[highest],
            detail=f"mean priority {means[lowest]:.2f} @ {lowest:.0f} MHz vs "
            f"{means[highest]:.2f} @ {highest:.0f} MHz",
        ),
        ClaimCheck(
            experiment="fig7",
            description="at the highest frequency the DMA mostly rests at low priorities",
            passed=sum(table[highest].get(level, 0.0) for level in (0, 1)) > 0.5,
            detail=f"time at priority 0-1: "
            f"{sum(table[highest].get(level, 0.0) for level in (0, 1)) * 100:.0f}%",
        ),
        ClaimCheck(
            experiment="fig7",
            description="at the lowest frequency the DMA escalates to high priorities",
            passed=sum(table[lowest].get(level, 0.0) for level in (6, 7))
            > sum(table[highest].get(level, 0.0) for level in (6, 7)),
            detail=f"time at priority 6-7 grows from "
            f"{sum(table[highest].get(level, 0.0) for level in (6, 7)) * 100:.0f}% to "
            f"{sum(table[lowest].get(level, 0.0) for level in (6, 7)) * 100:.0f}%",
        ),
    ]
    return checks


def check_fig8_bandwidth_ordering(
    results: Mapping[str, ExperimentResult],
    frfcfs_margin: float = 0.05,
) -> List[ClaimCheck]:
    """Fig. 8 shape: FR-FCFS >= QoS-RB > QoS, and QoS-RB close to FR-FCFS."""
    checks: List[ClaimCheck] = []
    ordering = bandwidth_ordering(results)
    if {"priority_rowbuffer", "priority_qos"}.issubset(results):
        gain = bandwidth_gain(results, "priority_rowbuffer", "priority_qos")
        checks.append(
            ClaimCheck(
                experiment="fig8",
                description="QoS-RB (Policy 2) delivers more bandwidth than QoS (Policy 1)",
                passed=gain > 0.0,
                detail=f"gain = {gain * 100:.1f}%",
            )
        )
    if {"priority_rowbuffer", "fr_fcfs"}.issubset(results):
        shortfall = bandwidth_gain(results, "fr_fcfs", "priority_rowbuffer")
        checks.append(
            ClaimCheck(
                experiment="fig8",
                description="QoS-RB bandwidth is close to the FR-FCFS upper bound",
                passed=shortfall <= frfcfs_margin,
                detail=f"FR-FCFS ahead by {shortfall * 100:.1f}% "
                f"(allowed {frfcfs_margin * 100:.0f}%)",
            )
        )
    if ordering:
        checks.append(
            ClaimCheck(
                experiment="fig8",
                description="row-buffer-aware policies sit at the top of the bandwidth ordering",
                passed=ordering[-1] in ("fr_fcfs", "priority_rowbuffer"),
                detail=f"ordering: {ordering}",
            )
        )
    return checks


def check_fig9_qos_preserved(results: Mapping[str, ExperimentResult]) -> List[ClaimCheck]:
    """Fig. 9 shape: QoS-RB keeps every core passing, FR-FCFS does not."""
    checks: List[ClaimCheck] = []
    critical = critical_cores_for("case_a")
    if "priority_rowbuffer" in results:
        checks.append(
            ClaimCheck(
                experiment="fig9",
                description="QoS-RB causes no QoS degradation",
                passed=qos_satisfied(results["priority_rowbuffer"], cores=critical),
                detail=f"failing: {results['priority_rowbuffer'].failing_cores() or 'none'}",
            )
        )
    if "fr_fcfs" in results:
        failing = [
            core for core in results["fr_fcfs"].failing_cores() if core in critical
        ]
        checks.append(
            ClaimCheck(
                experiment="fig9",
                description="FR-FCFS degrades at least one critical core",
                passed=bool(failing),
                detail=f"failing critical cores: {failing or 'none'}",
            )
        )
    return checks


def summarize_checks(checks: List[ClaimCheck]) -> Dict[str, int]:
    """Count passed/failed checks (used by the CLI report command)."""
    return {
        "passed": sum(1 for check in checks if check.passed),
        "failed": sum(1 for check in checks if not check.passed),
    }
