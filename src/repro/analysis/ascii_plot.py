"""Dependency-free ASCII charts for terminal-side inspection of results.

The repository deliberately has no plotting dependency; these helpers give a
quick visual impression of the NPI-versus-time curves (Figs. 5/6/9), the
bandwidth bars (Fig. 8) and the priority-residency bars (Fig. 7) directly in
a terminal or a log file.  They are used by the example scripts and the CLI.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Tuple

from repro.sim.trace import TimeSeries

#: Symbols assigned to successive series of a line chart.
_SERIES_MARKS = "ox+*#@%&"


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart (one row per label), like Fig. 8's bandwidth bars."""
    if not values:
        raise ValueError("no values to plot")
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        length = 0 if peak <= 0 else int(round(width * value / peak))
        bar = "#" * length
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_stacked_bar(
    shares: Mapping[int, float],
    width: int = 50,
    symbols: str = "01234567",
) -> str:
    """One stacked bar of fractional shares, like one row of Fig. 7."""
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    total = sum(shares.values())
    if total <= 0:
        return "." * width
    cells: List[str] = []
    for level in sorted(shares):
        share = shares[level] / total
        count = int(round(share * width))
        symbol = symbols[level % len(symbols)]
        cells.append(symbol * count)
    bar = "".join(cells)
    # Rounding may leave the bar a character short or long; normalise.
    if len(bar) < width:
        bar += bar[-1] if bar else "."
    return bar[:width]


def ascii_line_chart(
    series: Mapping[str, TimeSeries],
    width: int = 72,
    height: int = 16,
    log_y: bool = True,
    y_floor: float = 0.05,
    reference: Optional[float] = 1.0,
) -> str:
    """Multi-series line chart over time, like the NPI plots of Figs. 5/6/9.

    ``log_y`` mirrors the paper's log-scale NPI axis; ``reference`` draws a
    horizontal guide (the NPI = 1 target line by default).
    """
    populated = {name: s for name, s in series.items() if len(s)}
    if not populated:
        raise ValueError("no non-empty series to plot")
    if width < 20 or height < 5:
        raise ValueError("chart must be at least 20x5 characters")

    start = min(s.times_ps[0] for s in populated.values())
    end = max(s.times_ps[-1] for s in populated.values())
    span = max(1, end - start)

    def transform(value: float) -> float:
        if log_y:
            return math.log10(max(value, y_floor))
        return value

    values = [transform(v) for s in populated.values() for v in s.values]
    if reference is not None:
        values.append(transform(reference))
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell_for(time_ps: int, value: float) -> Tuple[int, int]:
        x = int((time_ps - start) / span * (width - 1))
        y_fraction = (transform(value) - low) / (high - low)
        y = height - 1 - int(y_fraction * (height - 1))
        return max(0, min(height - 1, y)), max(0, min(width - 1, x))

    if reference is not None:
        ref_row, _ = cell_for(start, reference)
        for x in range(width):
            grid[ref_row][x] = "-"

    legend: List[str] = []
    for index, (name, current) in enumerate(sorted(populated.items())):
        mark = _SERIES_MARKS[index % len(_SERIES_MARKS)]
        legend.append(f"{mark} = {name}")
        for time_ps, value in current.as_pairs():
            row, column = cell_for(time_ps, value)
            grid[row][column] = mark

    lines = ["|" + "".join(row) + "|" for row in grid]
    lines.append("+" + "-" * width + "+")
    lines.append("  ".join(legend))
    return "\n".join(lines)
