"""Metrics derived from experiment results.

These helpers encode the success criteria the paper states in prose: whether
every core met its target (NPI >= 1 throughout), how long a core spent below
target, and how the policies order in delivered DRAM bandwidth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.system.experiment import ExperimentResult


def qos_satisfied(
    result: ExperimentResult,
    cores: Optional[Iterable[str]] = None,
    threshold: float = 1.0,
) -> bool:
    """True when every (selected) core kept its NPI at or above the threshold."""
    selected = list(cores) if cores is not None else list(result.min_core_npi)
    return all(result.min_core_npi.get(core, 0.0) >= threshold for core in selected)


def npi_summary(
    result: ExperimentResult, cores: Optional[Iterable[str]] = None
) -> Dict[str, Dict[str, float]]:
    """Per-core minimum and mean NPI (restricted to ``cores`` if given)."""
    selected = list(cores) if cores is not None else sorted(result.min_core_npi)
    summary: Dict[str, Dict[str, float]] = {}
    for core in selected:
        if core not in result.min_core_npi:
            continue
        summary[core] = {
            "min": result.min_core_npi[core],
            "mean": result.mean_core_npi.get(core, 0.0),
        }
    return summary


def fraction_of_time_failing(
    result: ExperimentResult, core: str, threshold: float = 1.0
) -> float:
    """Fraction of NPI samples during which a core was below its target."""
    series = result.npi_series(core)
    return series.fraction_below(threshold)


def bandwidth_ordering(results: Mapping[str, ExperimentResult]) -> List[str]:
    """Policy names sorted by increasing delivered DRAM bandwidth (Fig. 8)."""
    return sorted(results, key=lambda policy: results[policy].dram_bandwidth_bytes_per_s)


def bandwidth_gain(
    results: Mapping[str, ExperimentResult], better: str, worse: str
) -> float:
    """Relative bandwidth advantage of one policy over another (e.g. 0.24 = +24 %)."""
    if better not in results or worse not in results:
        raise KeyError("both policies must be present in the result mapping")
    baseline = results[worse].dram_bandwidth_bytes_per_s
    if baseline <= 0:
        raise ValueError(f"policy '{worse}' delivered no bandwidth")
    return results[better].dram_bandwidth_bytes_per_s / baseline - 1.0


def priority_distribution_table(
    results: Mapping[float, ExperimentResult], dma_name: str
) -> Dict[float, Dict[int, float]]:
    """Frequency -> (priority level -> fraction of time) for one DMA (Fig. 7)."""
    table: Dict[float, Dict[int, float]] = {}
    for freq, result in results.items():
        if dma_name not in result.priority_distributions:
            raise KeyError(f"no priority distribution recorded for DMA '{dma_name}'")
        table[freq] = dict(result.priority_distributions[dma_name])
    return table


def mean_priority(distribution: Mapping[int, float]) -> float:
    """Time-weighted mean priority level of one distribution row."""
    total = sum(distribution.values())
    if total <= 0:
        return 0.0
    return sum(level * share for level, share in distribution.items()) / total
