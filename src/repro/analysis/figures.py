"""Structured data behind every figure of the paper's evaluation section.

The benchmark harness prints text tables; this module exposes the underlying
numbers in plain data structures (lists of rows) so they can be exported to
CSV, replotted with any external tool, or compared programmatically against
the paper's claims in :mod:`repro.analysis.paper`.

* :func:`npi_time_rows` / :func:`fig5_rows` / :func:`fig6_rows` /
  :func:`fig9_rows` — NPI-versus-time series per core and policy.
* :func:`fig7_rows` — priority-level residency per DRAM frequency.
* :func:`fig8_rows` — average DRAM bandwidth per policy.
* :func:`export_csv` — write any of the above to a CSV file.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence, Union

from repro.analysis.metrics import priority_distribution_table
from repro.scenario import critical_cores_for
from repro.sim.clock import MS
from repro.system.experiment import ExperimentResult

Row = List[Union[str, float, int]]


def npi_time_rows(
    results: Mapping[str, ExperimentResult],
    cores: Optional[Iterable[str]] = None,
) -> List[Row]:
    """Long-format rows ``[policy, core, time_ms, npi]`` for NPI time series.

    This is the data behind Figs. 5, 6 and 9: one curve per (policy, core)
    pair over the simulated frame window.
    """
    rows: List[Row] = [["policy", "core", "time_ms", "npi"]]
    for policy, result in results.items():
        if result.trace is None:
            raise ValueError(
                f"result for policy '{policy}' was produced without trace recording"
            )
        selected = list(cores) if cores is not None else sorted(result.min_core_npi)
        for core in selected:
            if f"npi.core.{core}" not in result.trace:
                continue
            series = result.npi_series(core)
            for time_ps, value in series.as_pairs():
                rows.append([policy, core, time_ps / MS, value])
    return rows


def fig5_rows(results: Mapping[str, ExperimentResult]) -> List[Row]:
    """Fig. 5 — NPI of case A's critical cores under each arbitration policy."""
    return npi_time_rows(results, cores=critical_cores_for("case_a"))


def fig6_rows(results: Mapping[str, ExperimentResult]) -> List[Row]:
    """Fig. 6 — NPI of case B's critical cores under each arbitration policy."""
    return npi_time_rows(results, cores=critical_cores_for("case_b"))


def fig7_rows(
    sweep: Mapping[float, ExperimentResult], dma_name: str, levels: int = 8
) -> List[Row]:
    """Fig. 7 — priority-level time shares of one DMA per DRAM frequency."""
    table = priority_distribution_table(sweep, dma_name)
    rows: List[Row] = [["dram_freq_mhz"] + [f"priority_{level}" for level in range(levels)]]
    for freq in sorted(table, reverse=True):
        row: Row = [freq]
        for level in range(levels):
            row.append(table[freq].get(level, 0.0))
        rows.append(row)
    return rows


def fig8_rows(results: Mapping[str, ExperimentResult]) -> List[Row]:
    """Fig. 8 — average DRAM bandwidth (GB/s) and row-hit rate per policy."""
    rows: List[Row] = [["policy", "bandwidth_gb_per_s", "row_hit_rate"]]
    for policy in sorted(results, key=lambda p: results[p].dram_bandwidth_bytes_per_s):
        result = results[policy]
        rows.append([policy, result.dram_bandwidth_gb_per_s(), result.dram_row_hit_rate])
    return rows


def fig9_rows(results: Mapping[str, ExperimentResult]) -> List[Row]:
    """Fig. 9 — NPI traces for the row-buffer-optimisation comparison (case A)."""
    return npi_time_rows(results, cores=critical_cores_for("case_a"))


def min_npi_rows(
    results: Mapping[str, ExperimentResult],
    cores: Optional[Iterable[str]] = None,
) -> List[Row]:
    """Compact summary rows ``[policy, core, min_npi, mean_npi]``."""
    rows: List[Row] = [["policy", "core", "min_npi", "mean_npi"]]
    for policy, result in results.items():
        selected = list(cores) if cores is not None else sorted(result.min_core_npi)
        for core in selected:
            if core not in result.min_core_npi:
                continue
            rows.append(
                [
                    policy,
                    core,
                    result.min_core_npi[core],
                    result.mean_core_npi.get(core, 0.0),
                ]
            )
    return rows


def export_csv(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Write rows (first row = header) to ``path`` and return the path."""
    if not rows:
        raise ValueError("cannot export an empty row set")
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerows(rows)
    return destination
