"""Plain-text reports mirroring the paper's tables and figures.

The reproduction has no plotting dependency, so every figure is rendered as a
text table: the NPI-versus-policy tables of Figs. 5/6/9, the bandwidth
summary of Fig. 8, the priority-distribution rows of Fig. 7 and the settings
of Tables 1/2.  The benchmark harness prints these so that a run's output can
be compared side by side with the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.analysis.metrics import npi_summary
from repro.system.experiment import ExperimentResult


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def format_npi_table(
    results: Mapping[str, ExperimentResult],
    cores: Iterable[str],
    threshold: float = 1.0,
) -> str:
    """Minimum NPI per core and policy, flagging failures with an asterisk."""
    cores = list(cores)
    policies = list(results)
    header = ["core"] + policies
    rows = [header]
    for core in cores:
        row = [core]
        for policy in policies:
            value = results[policy].min_core_npi.get(core)
            if value is None:
                row.append("-")
            else:
                flag = "*" if value < threshold else ""
                row.append(f"{value:.2f}{flag}")
        rows.append(row)
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [_format_row(row, widths) for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    lines.append("(* = minimum NPI below target)")
    return "\n".join(lines)


def format_bandwidth_table(results: Mapping[str, ExperimentResult]) -> str:
    """Average DRAM bandwidth per policy (Fig. 8), sorted like the figure."""
    rows = [["policy", "bandwidth (GB/s)", "row-hit rate"]]
    for policy in sorted(results, key=lambda p: results[p].dram_bandwidth_bytes_per_s):
        result = results[policy]
        rows.append(
            [
                policy,
                f"{result.dram_bandwidth_gb_per_s():.2f}",
                f"{result.dram_row_hit_rate * 100:.1f}%",
            ]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    lines = [_format_row(row, widths) for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)


def format_priority_distribution(
    table: Mapping[float, Mapping[int, float]], levels: int = 8
) -> str:
    """Priority-level time shares per DRAM frequency (Fig. 7)."""
    header = ["freq (MHz)"] + [f"p{level}" for level in range(levels)]
    rows = [header]
    for freq in sorted(table, reverse=True):
        distribution = table[freq]
        row = [f"{freq:.0f}"]
        for level in range(levels):
            row.append(f"{distribution.get(level, 0.0) * 100:.0f}%")
        rows.append(row)
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [_format_row(row, widths) for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)


def format_settings_table(settings: Mapping[str, object]) -> str:
    """Key/value rendering of the Table-1 simulation settings."""
    rows = [["setting", "value"]]
    for key in sorted(settings):
        rows.append([key, str(settings[key])])
    widths = [max(len(row[col]) for row in rows) for col in range(2)]
    lines = [_format_row(row, widths) for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)


def format_core_summary(result: ExperimentResult, cores: Optional[Iterable[str]] = None) -> str:
    """One-result summary: min/mean NPI per core plus aggregate bandwidth."""
    summary = npi_summary(result, cores)
    rows = [["core", "min NPI", "mean NPI"]]
    for core, values in summary.items():
        rows.append([core, f"{values['min']:.2f}", f"{values['mean']:.2f}"])
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    lines = [_format_row(row, widths) for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    lines.append(
        f"policy={result.policy}  scenario={result.scenario}  "
        f"bandwidth={result.dram_bandwidth_gb_per_s():.2f} GB/s  "
        f"row-hit={result.dram_row_hit_rate * 100:.1f}%"
    )
    return "\n".join(lines)
