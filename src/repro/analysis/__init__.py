"""Post-processing of experiment results.

* :mod:`repro.analysis.metrics` — QoS pass/fail, bandwidth orderings and
  priority distributions derived from results.
* :mod:`repro.analysis.report` — the paper-style text tables the benchmark
  harness prints.
* :mod:`repro.analysis.figures` — the raw rows behind every figure, plus CSV
  export.
* :mod:`repro.analysis.ascii_plot` — dependency-free terminal charts.
* :mod:`repro.analysis.paper` — the paper's claims and qualitative shape
  checks used by EXPERIMENTS.md and the benchmarks.
* :mod:`repro.analysis.serialize` — JSON round-tripping of configurations and
  results.
"""

from repro.analysis.ascii_plot import ascii_bar_chart, ascii_line_chart, ascii_stacked_bar
from repro.analysis.figures import (
    export_csv,
    fig5_rows,
    fig6_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    min_npi_rows,
    npi_time_rows,
)
from repro.analysis.metrics import (
    bandwidth_gain,
    bandwidth_ordering,
    fraction_of_time_failing,
    mean_priority,
    npi_summary,
    priority_distribution_table,
    qos_satisfied,
)
from repro.analysis.paper import (
    PAPER_CLAIMS,
    ClaimCheck,
    PaperClaim,
    check_fig7_priority_escalation,
    check_fig8_bandwidth_ordering,
    check_fig9_qos_preserved,
    check_policy_failures,
    claims_for,
    summarize_checks,
)
from repro.analysis.report import (
    format_bandwidth_table,
    format_core_summary,
    format_npi_table,
    format_priority_distribution,
    format_settings_table,
)
from repro.analysis.serialize import (
    experiment_result_from_dict,
    experiment_result_to_dict,
    load_config,
    load_result,
    save_config,
    save_result,
    simulation_config_from_dict,
    simulation_config_to_dict,
)

__all__ = [
    "PAPER_CLAIMS",
    "ClaimCheck",
    "PaperClaim",
    "ascii_bar_chart",
    "ascii_line_chart",
    "ascii_stacked_bar",
    "bandwidth_gain",
    "bandwidth_ordering",
    "check_fig7_priority_escalation",
    "check_fig8_bandwidth_ordering",
    "check_fig9_qos_preserved",
    "check_policy_failures",
    "claims_for",
    "experiment_result_from_dict",
    "experiment_result_to_dict",
    "export_csv",
    "fig5_rows",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_rows",
    "format_bandwidth_table",
    "format_core_summary",
    "format_npi_table",
    "format_priority_distribution",
    "format_settings_table",
    "fraction_of_time_failing",
    "load_config",
    "load_result",
    "mean_priority",
    "min_npi_rows",
    "npi_summary",
    "npi_time_rows",
    "priority_distribution_table",
    "qos_satisfied",
    "save_config",
    "save_result",
    "simulation_config_from_dict",
    "simulation_config_to_dict",
    "summarize_checks",
]
