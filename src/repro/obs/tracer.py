"""Span tracer: nestable spans journaled per process as JSONL.

The tracer is the write side of the observability layer.  Each process that
wants to be traced installs one :class:`Tracer` pointing at its own journal
file; instrumented code then calls the module-level :func:`span` /
:func:`instant` helpers, which are a single global read plus a comparison
when tracing is disabled — the *no-op fast path* that lets the
instrumentation live permanently in hot orchestration code.  The campaign
driver merges every process's journal into one timeline after the run
(:mod:`repro.obs.export`).

Design constraints, in order:

* **Off by default, near-zero disabled cost.**  ``_TRACER`` is ``None``
  unless something installed a tracer; ``span()`` then returns a cached
  singleton no-op context manager without allocating.
* **Non-perturbing.**  Nothing here touches results, cache keys or
  fingerprints; journals live outside the results store until the driver
  explicitly records the merged trace as store artifacts referenced only
  from the manifest's free-form ``stats`` field.
* **Cross-process by environment.**  Worker processes are ``spawn``-started
  and cannot inherit the parent's tracer object, so the driver exports
  :data:`TRACE_ENV_VAR` (the journal directory) and workers call
  :func:`install_from_env` at startup.  Durations are monotonic
  (``perf_counter_ns``) per process; each journal carries one wall-clock
  anchor so the merge step can place processes on a shared timeline — the
  anchor stays inside trace artifacts and never reaches any fingerprint.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Journal directory exported by a tracing driver; workers install from it.
TRACE_ENV_VAR = "REPRO_TRACE_DIR"

#: Journal format version, written into each journal's leading meta event.
JOURNAL_VERSION = 1


class _NoopSpan:
    """The disabled-tracing span: enters, exits, and absorbs attributes."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs: Any) -> None:
        """Accept (and drop) late attributes, mirroring :class:`Span`."""


#: The singleton returned by :func:`span` while tracing is disabled.
NOOP_SPAN = _NoopSpan()


class Span:
    """One live span: a context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start_ns = 0

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._record_span(self.name, self._start_ns, end_ns, self.attrs)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. fired-event counts)."""
        self.attrs.update(attrs)


class Tracer:
    """Per-process span recorder appending JSONL events to one journal file.

    Events are buffered in memory and written by :meth:`flush` — workers
    flush at task boundaries so the driver sees every completed span even
    though worker processes outlive the sweep.  The first line of every
    journal is a ``meta`` event naming the process and carrying the
    wall-clock anchor used to align journals at merge time.
    """

    def __init__(self, journal_path: Union[str, Path], proc: str) -> None:
        self.journal_path = Path(journal_path)
        self.proc = proc
        self.pid = os.getpid()
        self._t0_ns = time.perf_counter_ns()
        self._seq = 0
        self._lock = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._events: List[dict] = [
            {
                "ev": "meta",
                "version": JOURNAL_VERSION,
                "proc": proc,
                "pid": self.pid,
                "wall_ns": time.time_ns(),
            }
        ]

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """A zero-duration event (lease claims, steals, point metadata)."""
        now_ns = time.perf_counter_ns()
        self._record(
            {
                "ev": "instant",
                "name": name,
                "t_us": round((now_ns - self._t0_ns) / 1e3, 3),
                **({"attrs": attrs} if attrs else {}),
            }
        )

    def complete(self, name: str, dur_s: float, **attrs: Any) -> None:
        """Record a span whose duration was measured elsewhere, ending now.

        The driver uses this to attribute worker-side execution time (the
        timings a :class:`~repro.runner.executor.Landed` event carries) to
        spans that also know the point *indices* — the join key for
        per-sub-grid aggregation.
        """
        end_ns = time.perf_counter_ns()
        self._record_span(name, end_ns - max(0, int(dur_s * 1e9)), end_ns, attrs)

    def _record_span(
        self, name: str, start_ns: int, end_ns: int, attrs: Dict[str, Any]
    ) -> None:
        self._record(
            {
                "ev": "span",
                "name": name,
                "t_us": round((start_ns - self._t0_ns) / 1e3, 3),
                "dur_us": round((end_ns - start_ns) / 1e3, 3),
                **({"attrs": attrs} if attrs else {}),
            }
        )

    def _record(self, event: dict) -> None:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.setdefault(ident, len(self._tids))
            event["proc"] = self.proc
            event["pid"] = self.pid
            event["tid"] = tid
            event["seq"] = self._seq
            self._seq += 1
            self._events.append(event)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Append buffered events to the journal (JSONL, one event/line)."""
        with self._lock:
            events, self._events = self._events, []
        if not events:
            return
        lines = "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in events
        )
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(lines)

    def close(self) -> None:
        self.flush()


# --------------------------------------------------------------------------- #
# Module-level guarded API — the surface instrumented code actually calls.
# --------------------------------------------------------------------------- #
_TRACER: Optional[Tracer] = None


def tracing() -> bool:
    """Whether a tracer is installed (the guard for non-trivial attr work)."""
    return _TRACER is not None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """A span context manager, or the shared no-op when tracing is off."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record a zero-duration event when tracing is on; no-op otherwise."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, **attrs)


def complete(name: str, dur_s: float, **attrs: Any) -> None:
    """Record an externally measured span when tracing is on; else no-op."""
    tracer = _TRACER
    if tracer is not None:
        tracer.complete(name, dur_s, **attrs)


def flush() -> None:
    """Flush the installed tracer's buffer, if any (task boundaries)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.flush()


def install_tracer(journal_path: Union[str, Path], proc: str) -> Tracer:
    """Install a process-wide tracer; replaces (and flushes) any previous one."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(journal_path, proc=proc)
    return _TRACER


def uninstall_tracer() -> None:
    """Flush and remove the process-wide tracer (idempotent)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def install_from_env(role: str) -> Optional[Tracer]:
    """Worker-process activation: install a tracer when the driver traces.

    Spawned workers call this once at startup with their role name
    (``pool-worker`` / ``queue-worker``); when :data:`TRACE_ENV_VAR` is
    unset — every untraced run — this is a single environment lookup.
    """
    directory = os.environ.get(TRACE_ENV_VAR)
    if not directory:
        return None
    pid = os.getpid()
    return install_tracer(
        Path(directory) / f"{role}-{pid}.jsonl", proc=f"{role}-{pid}"
    )
